//! Security views (Example 1.1 / Example 4.1 of the paper).
//!
//! An organization exposes XMark auction data to user groups under
//! different access-control policies. Each group's *security view* is a
//! virtual document defined by a transform query; user queries against
//! the view are answered by composing them with the view definition —
//! the view is never materialized.
//!
//! Run with: `cargo run --example security_view`

use xust::compose::{compose, naive_composition, UserQuery};
use xust::core::parse_transform;
use xust::xmark::{generate, XmarkConfig};

fn main() {
    let doc = generate(XmarkConfig::new(0.003));
    println!(
        "generated XMark document: {} nodes, {} bytes serialized",
        doc.node_count(),
        doc.serialize().len()
    );

    // Policy: this user group must not see sellers' credit cards or any
    // profile income figures.
    let view_def = parse_transform(
        r#"transform copy $a := doc("xmark") modify do delete $a//creditcard return $a"#,
    )
    .expect("valid transform query");

    // A user of the group asks for the people watching auctions.
    let user_query = UserQuery::parse(
        "<result>{ for $x in doc(\"xmark\")/site/people/person[profile/age > 60] return $x }</result>",
    )
    .expect("valid user query");

    // Compose view definition and user query into one query.
    let qc = compose(&view_def, &user_query).expect("composable");
    println!(
        "composed query: size {}, {} inlined topDown site(s), {} fallback site(s)",
        qc.size(),
        qc.transform_sites(),
        qc.fallback_sites
    );

    let via_compose = qc.execute(&doc).expect("composed evaluation");
    let via_sequential =
        naive_composition(&doc, &view_def, &user_query).expect("sequential evaluation");

    assert_eq!(
        via_compose.serialize(),
        via_sequential.serialize(),
        "Qc(T) must equal Q(Qt(T))"
    );

    let answer = via_compose.serialize();
    println!(
        "\nanswer ({} persons over 60, {} bytes) contains no credit cards: {}",
        answer.matches("<person ").count(),
        answer.len(),
        !answer.contains("creditcard"),
    );
    assert!(!answer.contains("creditcard"));
    // The underlying store still holds them — the view is virtual.
    assert!(doc.serialize().contains("creditcard"));
    println!("underlying store still holds credit cards: the view is virtual.");
}
