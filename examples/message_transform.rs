//! XML message transformation: "create a modified version of the
//! original XML message without destroying it" — the application an
//! anonymous reviewer suggested to the authors (Section 1).
//!
//! A payment gateway receives order messages, and each downstream
//! consumer needs its own shape: the shipping service must not see card
//! data, the fraud service needs an added routing flag, and the archive
//! wants card numbers masked. One immutable inbound message, three
//! transform queries — streamed, because gateways do not build DOMs of
//! every message.
//!
//! Run with: `cargo run --example message_transform`

use xust::core::{parse_transform, two_pass_sax_str};

fn main() {
    let inbound = "<order id=\"o-7781\">\
                     <customer><name>Ada</name><tier>gold</tier></customer>\
                     <card><number>4111111111111111</number><expiry>12/27</expiry></card>\
                     <items><item sku=\"K1\"><qty>2</qty></item></items>\
                   </order>";

    // Shipping: the whole card element is dropped.
    let for_shipping =
        parse_transform(r#"transform copy $a := doc("msg") modify do delete $a//card return $a"#)
            .unwrap();

    // Fraud scoring: a routing flag is prepended so the scorer can
    // short-circuit on gold-tier customers.
    let for_fraud = parse_transform(
        r#"transform copy $a := doc("msg") modify
           do insert <route queue="fast"/> as first into $a/order[customer/tier = 'gold']
           return $a"#,
    )
    .unwrap();

    // Archive: the number is masked but the element remains, so schema
    // validation downstream still passes.
    let for_archive = parse_transform(
        r#"transform copy $a := doc("msg") modify
           do replace $a//card/number with <number>****</number> return $a"#,
    )
    .unwrap();

    println!("inbound:\n  {inbound}\n");
    for (tag, q) in [
        ("shipping", &for_shipping),
        ("fraud", &for_fraud),
        ("archive", &for_archive),
    ] {
        // Streamed: the message is transformed event-by-event.
        let out = two_pass_sax_str(inbound, q).expect("transform succeeds");
        println!("{tag:<9} -> {out}");
    }

    // The inbound message was never modified — every consumer saw a
    // fresh non-destructive transform of the same bytes.
    assert!(inbound.contains("4111111111111111"));
}
