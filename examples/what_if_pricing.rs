//! Hypothetical ("what-if") queries: `Q when {U}` — find what a query
//! *would* return after an update, without performing the update.
//!
//! The paper traces transform queries back to hypothetical queries in
//! decision support. Here a purchasing analyst asks: "if supplier HP
//! raised every price to 15, which parts would still have a supplier
//! under 18?" — answered by composing the user query with an update
//! that never touches the catalog.
//!
//! Run with: `cargo run --example what_if_pricing`

use xust::compose::{compose, naive_composition_to_string, UserQuery};
use xust::core::{parse_transform, top_down};
use xust::tree::Document;

fn main() {
    let catalog = Document::parse(
        "<db>\
           <part><pname>keyboard</pname>\
             <supplier><sname>HP</sname><price>12</price></supplier>\
             <supplier><sname>IBM</sname><price>21</price></supplier>\
           </part>\
           <part><pname>mouse</pname>\
             <supplier><sname>HP</sname><price>9</price></supplier>\
           </part>\
           <part><pname>screen</pname>\
             <supplier><sname>Dell</sname><price>17</price></supplier>\
           </part>\
         </db>",
    )
    .expect("well-formed XML");

    // U: HP's price cards all become 15 (replace is the `U` of
    // `Q when {U}`).
    let what_if = parse_transform(
        r#"transform copy $a := doc("db") modify
           do replace $a//supplier[sname = 'HP']/price with <price>15</price>
           return $a"#,
    )
    .expect("valid transform query");

    // Q: parts with a supplier under 18 in the hypothetical state.
    let q = UserQuery::parse(
        "<answer>{ for $x in doc(\"db\")/db/part[supplier/price < 18]/pname return $x }</answer>",
    )
    .expect("valid user query");

    // The Compose Method folds U into Q: one query, one pass, no copy
    // of the catalog, no materialized hypothetical state.
    let qc = compose(&what_if, &q).expect("composable");
    let answer = qc.execute_to_string(&catalog).expect("evaluates");
    println!("hypothetical answer: {answer}");

    // Cross-check against the conceptual semantics (copy, update, query).
    let sequential = naive_composition_to_string(&catalog, &what_if, &q).unwrap();
    assert_eq!(answer, sequential);

    // What the hypothetical state itself looks like (never stored):
    println!(
        "\nhypothetical catalog (for illustration only):\n  {}",
        top_down(&catalog, &what_if).serialize()
    );
    // And the real catalog is untouched.
    assert!(catalog.serialize().contains("<price>12</price>"));
    println!("\nreal catalog untouched: HP keyboard price is still 12.");
}
