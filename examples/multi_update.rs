//! Multi-update transform queries: `modify do (u1, u2, …)` with
//! snapshot semantics, contrasted with sequential chaining.
//!
//! Run with: `cargo run --example multi_update`

use xust::core::{
    apply_chain, conflicting_targets, multi_snapshot, multi_top_down, parse_multi_transform,
    parse_transform,
};
use xust::tree::{docs_eq, Document};

fn main() {
    let doc = Document::parse(
        "<db>\
           <part><pname>keyboard</pname>\
             <supplier><sname>HP</sname><price>12</price></supplier>\
           </part>\
           <part><pname>mouse</pname>\
             <supplier><sname>IBM</sname><price>20</price></supplier>\
           </part>\
         </db>",
    )
    .expect("well-formed XML");

    // One compound transform: strip prices, stamp each part as audited,
    // and expose suppliers under a neutral label — all in a single
    // query with snapshot semantics (every path reads the original).
    let q = parse_multi_transform(
        r#"transform copy $a := doc("db") modify do (
             delete $a//price,
             insert <audited/> as first into $a/db/part,
             rename $a//supplier as source
           ) return $a"#,
    )
    .expect("valid multi-update transform");

    println!("source:\n  {}\n", doc.serialize());

    // Overlap report: which nodes are touched by more than one update?
    let overlaps = conflicting_targets(&doc, &q);
    println!("nodes targeted by >1 update: {}", overlaps.len());

    // The fused automaton plan and the reference snapshot plan agree.
    let fused = multi_top_down(&doc, &q);
    let reference = multi_snapshot(&doc, &q);
    assert!(docs_eq(&fused, &reference));
    println!("view (one fused pass):\n  {}\n", fused.serialize());

    // Snapshot vs. chaining: rename x→y then delete y. Snapshot: the
    // delete's path sees no `y` in the ORIGINAL document, so the renamed
    // node survives. Chained: the second update sees the first's result.
    let d2 = Document::parse("<db><x>v</x></db>").unwrap();
    let snap = parse_multi_transform(
        r#"transform copy $a := doc("d") modify do (
             rename $a//x as y,
             delete $a//y
           ) return $a"#,
    )
    .unwrap();
    let chained = [
        parse_transform(r#"transform copy $a := doc("d") modify do rename $a//x as y return $a"#)
            .unwrap(),
        parse_transform(r#"transform copy $a := doc("d") modify do delete $a//y return $a"#)
            .unwrap(),
    ];
    println!("rename x→y, delete y over {}:", d2.serialize());
    println!(
        "  snapshot semantics: {}",
        multi_top_down(&d2, &snap).serialize()
    );
    println!(
        "  chained semantics:  {}",
        apply_chain(&d2, &chained).serialize()
    );
}
