//! Quickstart: evaluate a transform query with every method.
//!
//! Run with: `cargo run --example quickstart`

use xust::core::{evaluate_str, Method};
use xust::tree::Document;

fn main() {
    // The document of the paper's Fig. 1: parts with suppliers.
    let doc = Document::parse(
        "<db>\
           <part><pname>keyboard</pname>\
             <supplier><sname>HP</sname><price>12</price><country>c1</country></supplier>\
             <part><pname>key</pname></part>\
           </part>\
           <part><pname>mouse</pname>\
             <supplier><sname>IBM</sname><price>20</price><country>c2</country></supplier>\
           </part>\
         </db>",
    )
    .expect("well-formed XML");

    // Example 1.1: "all the information in T0 except price" — awkward in
    // plain XQuery, a one-liner as a transform query.
    let query = r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;

    println!("source document:\n  {}\n", doc.serialize());
    println!("transform query:\n  {query}\n");

    for method in Method::ALL {
        let result = evaluate_str(&doc, query, method).expect("evaluation succeeds");
        println!("{method:<14} -> {}", result.serialize());
    }

    // The source is untouched — transform queries are non-updating.
    assert!(doc.serialize().contains("<price>"));
    println!("\nsource still contains prices: transform queries have no side effects.");
}
