//! Streaming transforms on documents larger than you'd want in a DOM —
//! the Section 6 / Fig. 14 scenario.
//!
//! Generates an XMark file on disk, runs `twoPassSAX` file-to-file, and
//! reports the stats that witness the bounded-memory claim: the working
//! set is the element stack (bounded by document depth) plus the
//! qualifier-truth list `Ld`.
//!
//! Run with: `cargo run --release --example large_stream [factor]`

use std::time::Instant;

use xust::core::{parse_transform, two_pass_sax_files, LdStorage};
use xust::xmark::{generate_to_file, XmarkConfig};

fn main() {
    let factor: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);

    let dir = std::env::temp_dir();
    let input = dir.join("xust_large_stream_in.xml");
    let output = dir.join("xust_large_stream_out.xml");

    println!("generating XMark factor {factor} …");
    let t = Instant::now();
    generate_to_file(XmarkConfig::new(factor), &input).expect("generation");
    let input_bytes = std::fs::metadata(&input).expect("stat").len();
    println!(
        "  {} MB in {:.2}s",
        input_bytes / 1_000_000,
        t.elapsed().as_secs_f64()
    );

    // U7: a qualifier-heavy path over open auctions.
    let q = parse_transform(
        r#"transform copy $a := doc("xmark") modify do delete $a/site/open_auctions/open_auction[bidder/increase > 5]/annotation[happiness < 20]/description//text return $a"#,
    )
    .expect("valid transform");

    println!("streaming twoPassSAX transform (Ld spilled to disk) …");
    let t = Instant::now();
    let stats =
        two_pass_sax_files(&input, &q, &output, LdStorage::TempFile).expect("streaming transform");
    let secs = t.elapsed().as_secs_f64();
    let output_bytes = std::fs::metadata(&output).expect("stat").len();

    println!("  input   : {:>12} bytes", input_bytes);
    println!("  output  : {:>12} bytes", output_bytes);
    println!("  elements: {:>12}", stats.elements);
    println!(
        "  Ld size : {:>12} entries (qualifier occurrences)",
        stats.ld_entries
    );
    println!(
        "  stack   : {:>12} frames at peak (= document depth)",
        stats.max_depth
    );
    println!(
        "  time    : {secs:>12.2} s  ({:.1} MB/s over two passes)",
        2.0 * input_bytes as f64 / 1e6 / secs
    );
    println!(
        "\nworking set ≈ depth × |p| + |Ld| — independent of the {} MB input.",
        input_bytes / 1_000_000
    );

    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&output).ok();
}
