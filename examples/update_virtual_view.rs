//! Updating a virtual view (the third application of Section 1).
//!
//! A virtual view hides some data; a user "updates" the view; another
//! query reads the updated view. Neither the view nor the update is ever
//! materialized over the base data: both are transform queries, composed
//! with the user query step by step (Q ∘ Qt ∘ Qv).
//!
//! Run with: `cargo run --example update_virtual_view`

use xust::compose::{compose, UserQuery};
use xust::core::{evaluate, parse_transform, Method};
use xust::tree::Document;

fn main() {
    let base = Document::parse(
        "<db>\
           <part><pname>keyboard</pname>\
             <supplier><sname>HP</sname><price>12</price><internal>secret</internal></supplier>\
           </part>\
           <part><pname>mouse</pname>\
             <supplier><sname>IBM</sname><price>20</price><internal>secret</internal></supplier>\
           </part>\
         </db>",
    )
    .expect("well-formed XML");

    // Qv — the view: internal notes are hidden from this tenant.
    let view = parse_transform(
        r#"transform copy $a := doc("db") modify do delete $a//internal return $a"#,
    )
    .unwrap();

    // Qt — the user's update *on the view*: tag every supplier as reviewed.
    let update = parse_transform(
        r#"transform copy $a := doc("db") modify do insert <reviewed/> into $a//supplier return $a"#,
    )
    .unwrap();

    // Q — a query over the updated view.
    let q = UserQuery::parse(
        "<out>{ for $x in doc(\"db\")/db/part/supplier[reviewed] return $x/sname }</out>",
    )
    .unwrap();

    // Step (b)+(c) of the paper's recipe: compose Q with Qt, then conceptually
    // with Qv. Our composition operates pairwise, so we fold the view by
    // evaluating it with the linear-time two-pass method and compose the
    // update with the user query — the expensive (update) half stays virtual.
    let qc = compose(&update, &q).expect("composable");
    let on_view = evaluate(&base, &view, Method::TwoPass).expect("view evaluation");
    let answer = qc.execute(&on_view).expect("composed evaluation");

    println!("answer: {}", answer.serialize());
    assert_eq!(
        answer.serialize(),
        "<out><sname>HP</sname><sname>IBM</sname></out>"
    );

    // Nothing was persisted: base unchanged, view unchanged.
    assert!(base.serialize().contains("<internal>"));
    assert!(!base.serialize().contains("<reviewed/>"));
    println!("base data untouched; the 'update' lived only inside the query.");
}
