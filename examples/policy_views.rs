//! Per-group security views with the policy layer: several user groups,
//! one source document, no materialized views.
//!
//! "In an organization, a number of user groups with access to T₀ may
//! be subject to different access-control policies … thus the views
//! should be kept virtual." (Section 1)
//!
//! Run with: `cargo run --example policy_views`

use xust::secview::{Policy, PolicySet};
use xust::tree::Document;

fn main() {
    let catalog = Document::parse(
        "<db>\
           <part><pname>keyboard</pname>\
             <supplier><sname>HP</sname><price>12</price><country>c1</country></supplier>\
             <supplier><sname>IBM</sname><price>20</price><country>c2</country></supplier>\
           </part>\
           <part><pname>mouse</pname>\
             <supplier><sname>HP</sname><price>9</price><country>c1</country></supplier>\
           </part>\
         </db>",
    )
    .expect("well-formed XML");

    let mut set = PolicySet::new();

    // Regional analysts must not see prices from country c1 — the exact
    // policy of Example 1.1's security view.
    set.add(
        Policy::new("analysts", "db")
            .hide("c1-prices", "//supplier[country = 'c1']/price")
            .expect("valid path"),
    );

    // External partners get no prices at all, a redacted country, and
    // suppliers flattened to a neutral label.
    set.add(
        Policy::new("partners", "db")
            .hide("all-prices", "//price")
            .expect("valid path")
            .redact("veil-country", "//country", "<country>withheld</country>")
            .expect("valid rule")
            .relabel("flatten", "//supplier", "source")
            .expect("valid rule"),
    );

    for group in ["analysts", "partners"] {
        let policy = set.for_group(group).expect("registered");
        println!("== {group}");
        println!("  view: {}", policy.view(&catalog).serialize());
        // Non-disclosure audit: every hide rule re-checked on the view.
        assert!(policy.audit(&catalog).is_empty());
        println!("  audit: clean");
    }

    // Queries are answered against the *virtual* view. The analysts'
    // single-rule policy goes through the Compose Method: one composed
    // query, no copy of the catalog.
    let analysts = set.for_group("analysts").unwrap();
    let answer = analysts
        .answer(
            &catalog,
            "<quote>{ for $x in doc(\"db\")/db/part[pname = 'keyboard']/supplier return $x }</quote>",
        )
        .expect("answerable");
    println!("\nanalysts' keyboard quote: {answer}");
    assert!(answer.contains("20")); // c2 price visible
    assert!(!answer.contains("12")); // c1 price hidden

    // The same policy enforced against a document stream (no DOM).
    let streamed = analysts
        .answer_streaming(
            &catalog.serialize(),
            "<quote>{ for $x in doc(\"db\")/db/part[pname = 'keyboard']/supplier return $x }</quote>",
        )
        .expect("streamable");
    assert_eq!(streamed, answer);
    println!("streaming enforcement agrees byte-for-byte.");
}
