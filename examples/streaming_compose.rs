//! Streaming composition: answer a user query against a *virtual*
//! security view of a document that is never materialized — neither the
//! view nor the document ever becomes a DOM.
//!
//! This is the paper's §9 future work ("extend our composition
//! techniques to work with the SAX based two-pass algorithm") running
//! end to end: three SAX passes, memory bounded by document depth plus
//! the largest matched binding.
//!
//! Run with: `cargo run --example streaming_compose`

use xust::compose::{compose_two_pass_sax, UserQuery};
use xust::core::parse_transform;
use xust::sax::SaxParser;
use xust::xmark::{generate_string, XmarkConfig};

fn main() {
    // An XMark auction site document (~2 MB at factor 0.002 the demo
    // keeps it small; crank the factor up to gigabytes — memory stays
    // flat).
    let xml = generate_string(XmarkConfig::new(0.002).with_seed(1));
    println!("document: {} bytes", xml.len());

    // The security view: people's credit-card and profile income data
    // are not for this user group.
    let view = parse_transform(
        r#"transform copy $a := doc("site") modify
           do delete $a/site/people/person/creditcard return $a"#,
    )
    .unwrap();

    // The user query, posed against the view.
    let q = UserQuery::parse(
        "<directory>{ for $x in doc(\"site\")/site/people/person/name return $x }</directory>",
    )
    .unwrap();

    let mut out = Vec::new();
    let stats = compose_two_pass_sax(
        SaxParser::from_str(&xml),
        SaxParser::from_str(&xml),
        SaxParser::from_str(&xml),
        &view,
        &q,
        &mut out,
    )
    .expect("streaming composition succeeds");

    let result = String::from_utf8(out).unwrap();
    println!(
        "result: {} bytes, {} bindings",
        result.len(),
        stats.bindings
    );
    println!(
        "memory bound witnesses: transform depth {}, largest buffered binding {} nodes",
        stats.transform.max_depth, stats.peak_buffer_nodes
    );
    println!("first 200 chars:\n  {}…", &result[..result.len().min(200)]);
    assert!(!result.contains("creditcard"));
}
