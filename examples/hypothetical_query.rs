//! Hypothetical queries: "what would Q return if we executed U?"
//!
//! The classic `Q when {U}` form maps directly onto transform queries:
//! embed U in a transform query Qt and compose Q with it. Here a vendor
//! asks: *if we added our supplier entry to every keyboard part, which
//! parts would list more than one supplier?* — without updating anything.
//!
//! Run with: `cargo run --example hypothetical_query`

use xust::compose::{compose, UserQuery};
use xust::core::{evaluate, Method, TransformQuery};
use xust::tree::Document;
use xust::xpath::parse_path;

fn main() {
    let doc = Document::parse(
        "<db>\
           <part><pname>keyboard</pname>\
             <supplier><sname>HP</sname><price>12</price></supplier>\
           </part>\
           <part><pname>keyboard</pname></part>\
           <part><pname>mouse</pname>\
             <supplier><sname>IBM</sname><price>20</price></supplier>\
           </part>\
         </db>",
    )
    .expect("well-formed XML");

    // U: insert our offer into every keyboard part.
    let qt = TransformQuery::insert(
        "db",
        parse_path("db/part[pname = 'keyboard']").expect("valid path"),
        Document::parse("<supplier><sname>ACME</sname><price>9</price></supplier>").unwrap(),
    );

    // Q: parts that list a supplier cheaper than 10 — on the hypothetical
    // state.
    let q = UserQuery::parse(
        "<answer>{ for $x in doc(\"db\")/db/part[supplier/price < 10]/pname return $x }</answer>",
    )
    .expect("valid user query");

    // Route 1: materialize the hypothetical state, then query it.
    let hypothetical = evaluate(&doc, &qt, Method::TwoPass).expect("transform");
    println!("hypothetical state:\n  {}\n", hypothetical.serialize());

    // Route 2: compose — evaluate both in one pass over the real data.
    let qc = compose(&qt, &q).expect("composable");
    let answer = qc.execute(&doc).expect("composed evaluation");
    println!("answer via composition:\n  {}", answer.serialize());

    assert_eq!(
        answer.serialize(),
        "<answer><pname>keyboard</pname><pname>keyboard</pname></answer>"
    );
    // And the real data is untouched.
    assert!(!doc.serialize().contains("ACME"));
    println!("\nreal data untouched: the query was hypothetical.");
}
