//! Composition correctness: `Qc(T) = Q(Qt(T))` (Section 4) on random
//! documents, transforms, and user queries — including inputs that force
//! the implementation's graceful-degradation paths.

use proptest::prelude::*;

use xust::compose::{compose, naive_composition_to_string, UserQuery};
use xust::core::{InsertPos, TransformQuery};
use xust::tree::{Document, ElementBuilder};
use xust::xpath::parse_path;

const LABELS: [&str; 3] = ["a", "b", "c"];
const TEXTS: [&str; 3] = ["x", "A", "7"];

fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), 0..TEXTS.len())
        .prop_map(|(l, t)| ElementBuilder::new(LABELS[l]).text(TEXTS[t]));
    leaf.prop_recursive(depth, 20, 4, |inner| {
        (0..LABELS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(l, children)| {
            let mut b = ElementBuilder::new(LABELS[l]);
            for c in children {
                b = b.child(c);
            }
            b
        })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| ElementBuilder::new("r").child(b).build_document())
}

fn arb_simple_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..LABELS.len()).prop_map(|l| LABELS[l].to_string()),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        (0..LABELS.len()).prop_map(|l| format!("[{}]", LABELS[l])),
        (0..LABELS.len(), 0..TEXTS.len())
            .prop_map(|(l, t)| format!("[{} = '{}']", LABELS[l], TEXTS[t])),
    ];
    (prop::collection::vec(
        (step, proptest::option::of(qual), prop::bool::ANY),
        1..4,
    ),)
        .prop_map(|(steps,)| {
            let mut out = String::from("r");
            for (s, q, desc) in steps {
                out.push_str(if desc { "//" } else { "/" });
                out.push_str(&s);
                if let Some(q) = q {
                    out.push_str(&q);
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn composed_equals_sequential(
        doc in arb_doc(),
        qt_path in arb_simple_path(),
        uq_path in arb_simple_path(),
        op in 0u8..7,
    ) {
        // e's root label "b" collides with the user-path alphabet on
        // purpose: it exercises the replace/rename/sibling-insert
        // fallback guards.
        let e = Document::parse("<b><t>n</t></b>").unwrap();
        let p = parse_path(&qt_path).unwrap();
        let qt = match op {
            0 => TransformQuery::delete("d", p),
            1 => TransformQuery::insert("d", p, e),
            2 => TransformQuery::replace("d", p, e),
            3 => TransformQuery::rename("d", p, "b"),
            4 => TransformQuery::insert_at("d", p, e, InsertPos::FirstInto),
            5 => TransformQuery::insert_at("d", p, e, InsertPos::Before),
            _ => TransformQuery::insert_at("d", p, e, InsertPos::After),
        };
        let uq = UserQuery::parse(&format!(
            "<out>{{ for $x in doc(\"d\")/{uq_path} return $x }}</out>"
        ))
        .unwrap();
        let qc = compose(&qt, &uq).unwrap();
        let composed = qc.execute_to_string(&doc).unwrap();
        let sequential = naive_composition_to_string(&doc, &qt, &uq).unwrap();
        prop_assert_eq!(
            composed,
            sequential,
            "compose broke Qc(T) = Q(Qt(T)) for {} {} / user {} over {} (fallbacks {})",
            qt.op.kind(),
            qt.path,
            uq_path,
            doc.serialize(),
            qc.fallback_sites
        );
    }

    #[test]
    fn streaming_composition_equals_sequential(
        doc in arb_doc(),
        qt_path in arb_simple_path(),
        uq_path in arb_simple_path(),
        op in 0u8..7,
    ) {
        let e = Document::parse("<b><t>n</t></b>").unwrap();
        let p = parse_path(&qt_path).unwrap();
        let qt = match op {
            0 => TransformQuery::delete("d", p),
            1 => TransformQuery::insert("d", p, e),
            2 => TransformQuery::replace("d", p, e),
            3 => TransformQuery::rename("d", p, "b"),
            4 => TransformQuery::insert_at("d", p, e, InsertPos::FirstInto),
            5 => TransformQuery::insert_at("d", p, e, InsertPos::Before),
            _ => TransformQuery::insert_at("d", p, e, InsertPos::After),
        };
        let uq = UserQuery::parse(&format!(
            "<out>{{ for $x in doc(\"d\")/{uq_path} return $x }}</out>"
        ))
        .unwrap();
        let sequential = naive_composition_to_string(&doc, &qt, &uq).unwrap();
        let streamed = xust::compose::compose_sax_str(&doc.serialize(), &qt, &uq).unwrap();
        prop_assert_eq!(
            streamed,
            sequential,
            "streaming compose broke Qc(T) = Q(Qt(T)) for {} {} / user {} over {}",
            qt.op.kind(),
            qt.path,
            uq_path,
            doc.serialize()
        );
    }

    #[test]
    fn composed_with_where_clause(
        doc in arb_doc(),
        qt_path in arb_simple_path(),
        uq_path in arb_simple_path(),
    ) {
        let qt = TransformQuery::delete("d", parse_path(&qt_path).unwrap());
        let uq = UserQuery::parse(&format!(
            "<out>{{ for $x in doc(\"d\")/{uq_path} where empty($x/c) return $x }}</out>"
        ))
        .unwrap();
        let qc = compose(&qt, &uq).unwrap();
        let composed = qc.execute_to_string(&doc).unwrap();
        let sequential = naive_composition_to_string(&doc, &qt, &uq).unwrap();
        prop_assert_eq!(composed, sequential);
    }
}
