//! Multi-update transforms (snapshot semantics): the fused k-automaton
//! plan must agree with the reference snapshot plan on random documents
//! and random update lists, and degenerate lists must agree with the
//! single-update methods.

use proptest::prelude::*;

use xust::core::{
    evaluate, multi_snapshot, multi_top_down, parse_multi_transform, InsertPos, Method,
    MultiTransformQuery, TransformQuery, UpdateOp,
};
use xust::tree::{docs_eq, Document, ElementBuilder};
use xust::xpath::parse_path;

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const TEXTS: [&str; 3] = ["x", "10", "A"];

fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), proptest::option::of(0..TEXTS.len())).prop_map(|(l, t)| {
        let mut b = ElementBuilder::new(LABELS[l]);
        if let Some(t) = t {
            b = b.text(TEXTS[t]);
        }
        b
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (0..LABELS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(l, children)| {
            let mut b = ElementBuilder::new(LABELS[l]);
            for c in children {
                b = b.child(c);
            }
            b
        })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| ElementBuilder::new("r").child(b).build_document())
}

fn arb_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..LABELS.len()).prop_map(|l| LABELS[l].to_string()),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        (0..LABELS.len()).prop_map(|l| format!("[{}]", LABELS[l])),
        (0..LABELS.len(), 0..TEXTS.len())
            .prop_map(|(l, t)| format!("[{} = '{}']", LABELS[l], TEXTS[t])),
    ];
    (
        prop::collection::vec((step, proptest::option::of(qual), prop::bool::ANY), 1..3),
        prop::bool::ANY,
    )
        .prop_map(|(steps, lead_desc)| {
            let mut out = String::from(if lead_desc { "//" } else { "r/" });
            for (i, (s, q, desc)) in steps.iter().enumerate() {
                if i > 0 {
                    out.push_str(if *desc { "//" } else { "/" });
                }
                out.push_str(s);
                if let Some(q) = q {
                    out.push_str(q);
                }
            }
            out
        })
}

fn op_of(tag: u8) -> UpdateOp {
    let e = Document::parse("<ins><v>1</v></ins>").unwrap();
    match tag {
        0 => UpdateOp::Delete,
        1 => UpdateOp::Insert {
            elem: e,
            pos: InsertPos::LastInto,
        },
        2 => UpdateOp::Insert {
            elem: e,
            pos: InsertPos::FirstInto,
        },
        3 => UpdateOp::Insert {
            elem: e,
            pos: InsertPos::Before,
        },
        4 => UpdateOp::Insert {
            elem: e,
            pos: InsertPos::After,
        },
        5 => UpdateOp::Replace { elem: e },
        _ => UpdateOp::Rename { name: "rn".into() },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn fused_plan_matches_snapshot_plan(
        doc in arb_doc(),
        updates in prop::collection::vec((arb_path(), 0u8..7), 1..4),
    ) {
        let mq = MultiTransformQuery::new(
            "d",
            updates
                .iter()
                .map(|(p, t)| (parse_path(p).unwrap(), op_of(*t)))
                .collect(),
        );
        let reference = multi_snapshot(&doc, &mq);
        let fused = multi_top_down(&doc, &mq);
        prop_assert!(
            docs_eq(&reference, &fused),
            "plans disagree for {:?} over {}:\nsnapshot {}\nfused    {}",
            updates,
            doc.serialize(),
            reference.serialize(),
            fused.serialize()
        );
    }

    #[test]
    fn streaming_multi_matches_snapshot_plan(
        doc in arb_doc(),
        updates in prop::collection::vec((arb_path(), 0u8..7), 1..4),
    ) {
        let mq = MultiTransformQuery::new(
            "d",
            updates
                .iter()
                .map(|(p, t)| (parse_path(p).unwrap(), op_of(*t)))
                .collect(),
        );
        let reference = multi_snapshot(&doc, &mq).serialize();
        let streamed =
            xust::core::multi_two_pass_sax_str(&doc.serialize(), &mq).unwrap();
        prop_assert_eq!(
            streamed,
            reference,
            "streaming multi deviates for {:?} over {}",
            updates,
            doc.serialize()
        );
    }

    #[test]
    fn singleton_list_matches_single_update_methods(
        doc in arb_doc(),
        path in arb_path(),
        tag in 0u8..7,
    ) {
        let p = parse_path(&path).unwrap();
        let single = TransformQuery {
            var: "a".into(),
            doc_name: "d".into(),
            path: p.clone(),
            op: op_of(tag),
        };
        let expect = evaluate(&doc, &single, Method::CopyUpdate).unwrap();
        let got = multi_top_down(&doc, &MultiTransformQuery::from_single(single));
        prop_assert!(
            docs_eq(&expect, &got),
            "singleton multi deviates on {tag} {path} over {}",
            doc.serialize()
        );
    }
}

#[test]
fn parse_multi_list_roundtrip() {
    let q = parse_multi_transform(
        r#"transform copy $a := doc("T") modify do (
            delete $a//price,
            insert <flag/> as first into $a//part[pname = 'kb'],
            rename $a/db as catalog,
            replace $a//secret with <hidden/>
        ) return $a"#,
    )
    .unwrap();
    assert_eq!(q.doc_name, "T");
    assert_eq!(q.updates.len(), 4);
    assert!(matches!(q.updates[0].1, UpdateOp::Delete));
    assert!(matches!(
        q.updates[1].1,
        UpdateOp::Insert {
            pos: InsertPos::FirstInto,
            ..
        }
    ));
    assert!(matches!(q.updates[2].1, UpdateOp::Rename { .. }));
    assert!(matches!(q.updates[3].1, UpdateOp::Replace { .. }));
    assert_eq!(q.updates[0].0.to_string(), "//price");
    assert_eq!(q.updates[2].0.to_string(), "db");
}

#[test]
fn parse_multi_accepts_single_update() {
    let q =
        parse_multi_transform(r#"transform copy $a := doc("T") modify do delete $a//x return $a"#)
            .unwrap();
    assert_eq!(q.updates.len(), 1);
}

#[test]
fn parse_multi_rejects_malformed_lists() {
    for bad in [
        // empty list
        r#"transform copy $a := doc("T") modify do () return $a"#,
        // trailing comma
        r#"transform copy $a := doc("T") modify do (delete $a/x,) return $a"#,
        // missing close paren
        r#"transform copy $a := doc("T") modify do (delete $a/x return $a"#,
        // stray comma without parens
        r#"transform copy $a := doc("T") modify do delete $a/x, delete $a/y return $a"#,
    ] {
        assert!(parse_multi_transform(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn qualifier_with_parens_inside_list() {
    let q = parse_multi_transform(
        r#"transform copy $a := doc("T") modify do (
            delete $a//part[not(supplier) and pname = 'a,b'],
            delete $a//other
        ) return $a"#,
    )
    .unwrap();
    assert_eq!(q.updates.len(), 2);
    assert!(q.updates[0].0.to_string().contains("not"));
}

#[test]
fn multi_on_xmark_sample() {
    // A realistic compound: strip all prices, tag every item, rename the
    // people section — one pass, snapshot semantics.
    let xml = xust::xmark::generate_string(xust::xmark::XmarkConfig::new(0.002).with_seed(42));
    let doc = Document::parse(&xml).unwrap();
    let mq = parse_multi_transform(
        r#"transform copy $a := doc("x") modify do (
            delete $a//price,
            insert <audited/> as first into $a/site/regions//item,
            rename $a/site/people as persons
        ) return $a"#,
    )
    .unwrap();
    let out = multi_top_down(&doc, &mq);
    let ser = out.serialize();
    assert!(!ser.contains("<price>"));
    assert!(ser.contains("<audited/>"));
    assert!(ser.contains("<persons>"));
    assert!(docs_eq(&out, &multi_snapshot(&doc, &mq)));
}
