//! Cross-method equivalence: on random documents and random X updates,
//! all evaluation methods must agree with the copy-and-update baseline
//! (the literal semantics of Section 2). This is the central correctness
//! property of the reproduction. The generators live in
//! `tests/common/mod.rs`, shared with `tests/parallel_equivalence.rs`.

mod common;

use common::{arb_doc, arb_op, arb_path, build_query, build_query_text};
use proptest::prelude::*;

use xust::core::{evaluate, parse_transform, Method};
use xust::tree::{docs_eq, Document};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_methods_agree_with_baseline(doc in arb_doc(), path in arb_path(), op in arb_op()) {
        let q = build_query(&path, op);
        let reference = evaluate(&doc, &q, Method::CopyUpdate).unwrap();
        for m in [
            Method::Naive,
            Method::NaiveXQuery,
            Method::TopDown,
            Method::TwoPass,
            Method::TwoPassSax,
        ] {
            let got = evaluate(&doc, &q, m).unwrap();
            prop_assert!(
                docs_eq(&reference, &got),
                "{m} disagrees on {} {} over {}:\nexpected {}\ngot      {}",
                q.op.kind(),
                q.path,
                doc.serialize(),
                reference.serialize(),
                got.serialize()
            );
        }
    }

    #[test]
    fn transform_is_non_destructive(doc in arb_doc(), path in arb_path(), op in arb_op()) {
        let q = build_query(&path, op);
        let before = doc.serialize();
        let _ = evaluate(&doc, &q, Method::TwoPass).unwrap();
        let _ = evaluate(&doc, &q, Method::TopDown).unwrap();
        prop_assert_eq!(doc.serialize(), before);
    }

    #[test]
    fn serialization_roundtrip(doc in arb_doc()) {
        let text = doc.serialize();
        let reparsed = Document::parse(&text).unwrap();
        prop_assert!(docs_eq(&doc, &reparsed));
        prop_assert_eq!(reparsed.serialize(), text);
    }

    /// The textual rendering used by the service-level differential
    /// tests parses back to the programmatic query.
    #[test]
    fn textual_queries_roundtrip(path in arb_path(), op in arb_op()) {
        let text = build_query_text("d", &path, op);
        let parsed = parse_transform(&text)
            .unwrap_or_else(|e| panic!("generated syntax rejected: {text}: {e}"));
        let built = build_query(&path, op);
        prop_assert_eq!(parsed.path.to_string(), built.path.to_string());
        prop_assert_eq!(parsed.op.kind(), built.op.kind());
    }
}
