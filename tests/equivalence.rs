//! Cross-method equivalence: on random documents and random X updates,
//! all evaluation methods must agree with the copy-and-update baseline
//! (the literal semantics of Section 2). This is the central correctness
//! property of the reproduction.

use proptest::prelude::*;

use xust::core::{evaluate, InsertPos, Method, TransformQuery};
use xust::tree::{docs_eq, Document, ElementBuilder};
use xust::xpath::parse_path;

/// A small alphabet keeps collision probability high, which is what
/// stresses the automata (shared labels between path and data).
const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const TEXTS: [&str; 4] = ["x", "10", "20", "A"];

fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), proptest::option::of(0..TEXTS.len())).prop_map(|(l, t)| {
        let mut b = ElementBuilder::new(LABELS[l]);
        if let Some(t) = t {
            b = b.text(TEXTS[t]);
        }
        b
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            0..LABELS.len(),
            proptest::option::of((0..2usize, 0..TEXTS.len())),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(l, attr, children)| {
                let mut b = ElementBuilder::new(LABELS[l]);
                if let Some((k, v)) = attr {
                    b = b.attr(["id", "k"][k], TEXTS[v]);
                }
                for c in children {
                    b = b.child(c);
                }
                b
            })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| {
        // Fixed root label so absolute paths can hit it.
        ElementBuilder::new("r").child(b).build_document()
    })
}

/// Random X paths over the same alphabet.
fn arb_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..LABELS.len()).prop_map(|l| LABELS[l].to_string()),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        (0..LABELS.len()).prop_map(|l| format!("[{}]", LABELS[l])),
        (0..LABELS.len(), 0..TEXTS.len())
            .prop_map(|(l, t)| format!("[{} = '{}']", LABELS[l], TEXTS[t])),
        (0..TEXTS.len()).prop_map(|t| format!("[. = '{}']", TEXTS[t])),
        (0..LABELS.len()).prop_map(|l| format!("[not({})]", LABELS[l])),
        (0..LABELS.len(), 0..LABELS.len())
            .prop_map(|(l, m)| format!("[{} or {}]", LABELS[l], LABELS[m])),
        (0..LABELS.len()).prop_map(|l| format!("[{} < 15]", LABELS[l])),
        Just("[@id = 'x']".to_string()),
    ];
    let qstep = (step, proptest::option::of(qual)).prop_map(|(s, q)| match q {
        Some(q) => format!("{s}{q}"),
        None => s,
    });
    (
        prop::collection::vec((qstep, prop::bool::ANY), 1..4),
        prop::bool::ANY,
    )
        .prop_map(|(steps, lead_desc)| {
            let mut out = String::from(if lead_desc { "//" } else { "r/" });
            for (i, (s, desc)) in steps.iter().enumerate() {
                if i > 0 {
                    out.push_str(if *desc { "//" } else { "/" });
                }
                out.push_str(s);
            }
            out
        })
}

/// 0=delete 1=insert-into 2=replace 3=rename 4=insert-first
/// 5=insert-before 6=insert-after.
fn arb_op() -> impl Strategy<Value = u8> {
    0u8..7
}

fn build_query(path: &str, op: u8) -> TransformQuery {
    let p = parse_path(path).expect("generated paths are valid");
    let e = Document::parse("<ins k=\"1\"><t>v</t></ins>").unwrap();
    match op {
        0 => TransformQuery::delete("d", p),
        1 => TransformQuery::insert("d", p, e),
        2 => TransformQuery::replace("d", p, e),
        3 => TransformQuery::rename("d", p, "rn"),
        4 => TransformQuery::insert_at("d", p, e, InsertPos::FirstInto),
        5 => TransformQuery::insert_at("d", p, e, InsertPos::Before),
        _ => TransformQuery::insert_at("d", p, e, InsertPos::After),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_methods_agree_with_baseline(doc in arb_doc(), path in arb_path(), op in arb_op()) {
        let q = build_query(&path, op);
        let reference = evaluate(&doc, &q, Method::CopyUpdate).unwrap();
        for m in [
            Method::Naive,
            Method::NaiveXQuery,
            Method::TopDown,
            Method::TwoPass,
            Method::TwoPassSax,
        ] {
            let got = evaluate(&doc, &q, m).unwrap();
            prop_assert!(
                docs_eq(&reference, &got),
                "{m} disagrees on {} {} over {}:\nexpected {}\ngot      {}",
                q.op.kind(),
                q.path,
                doc.serialize(),
                reference.serialize(),
                got.serialize()
            );
        }
    }

    #[test]
    fn transform_is_non_destructive(doc in arb_doc(), path in arb_path(), op in arb_op()) {
        let q = build_query(&path, op);
        let before = doc.serialize();
        let _ = evaluate(&doc, &q, Method::TwoPass).unwrap();
        let _ = evaluate(&doc, &q, Method::TopDown).unwrap();
        prop_assert_eq!(doc.serialize(), before);
    }

    #[test]
    fn serialization_roundtrip(doc in arb_doc()) {
        let text = doc.serialize();
        let reparsed = Document::parse(&text).unwrap();
        prop_assert!(docs_eq(&doc, &reparsed));
        prop_assert_eq!(reparsed.serialize(), text);
    }
}
