//! Golden-corpus regression suite: every evaluation method, the serve
//! layer, and the live update path must reproduce the checked-in
//! expected output for each case in `tests/golden/` — and a regression
//! fails with a readable positional diff instead of a property-shrink
//! trace.

mod common;

use common::golden::{diff, load_cases};
use xust::core::{evaluate_str, Method};
use xust::serve::{Request, Server};
use xust::tree::Document;

/// The five serving-relevant methods the corpus pins down (NaiveXQuery
/// is exercised by the engine's own differential suites; it is an order
/// of magnitude slower and adds no serialization surface).
const METHODS: [Method; 5] = [
    Method::CopyUpdate,
    Method::Naive,
    Method::TopDown,
    Method::TwoPass,
    Method::TwoPassSax,
];

#[test]
fn every_method_matches_the_golden_output() {
    for case in load_cases() {
        let doc = Document::parse(&case.input)
            .unwrap_or_else(|e| panic!("{}: input does not parse: {e}", case.name));
        for method in METHODS {
            let got = evaluate_str(&doc, &case.query, method)
                .unwrap_or_else(|e| panic!("{}: {method} failed: {e}", case.name))
                .serialize();
            assert_eq!(
                got,
                case.expected,
                "golden case '{}' regressed under {method}\n{}",
                case.name,
                diff(&case.expected, &got)
            );
        }
    }
}

#[test]
fn served_transforms_match_the_golden_output() {
    // The same corpus through the serve layer's planner-driven path:
    // whatever method the planner picks must serialize identically.
    let server = Server::builder().threads(2).build();
    for case in load_cases() {
        server.load_doc_str(&case.name, &case.input).unwrap();
        // Served golden queries name doc("…") freely; Transform requests
        // resolve the *loaded* name, so route by the loaded alias.
        let got = server
            .handle(&Request::Transform {
                doc: case.name.clone(),
                query: case.query.clone(),
            })
            .unwrap_or_else(|e| panic!("{}: serve failed: {e}", case.name))
            .body;
        assert_eq!(
            got,
            case.expected,
            "golden case '{}' regressed through the serve layer\n{}",
            case.name,
            diff(&case.expected, &got)
        );
    }
}

#[test]
fn live_updates_match_the_golden_output() {
    // Applying the same update destructively through the write path must
    // leave the stored document equal to the golden output — the
    // transform-view semantics and the update semantics are one engine.
    for case in load_cases() {
        let server = Server::builder().threads(1).shards(1).build();
        let doc_name = {
            // UPDATE enforces that the query reads the loaded document's
            // name, so load under the name the query mentions.
            let q = xust::core::parse_transform(&case.query).unwrap();
            q.doc_name
        };
        server.load_doc_str(&doc_name, &case.input).unwrap();
        server
            .update_doc(&doc_name, &case.query)
            .unwrap_or_else(|e| panic!("{}: update failed: {e}", case.name));
        let got = server
            .handle(&Request::Transform {
                doc: doc_name.clone(),
                // An identity-shaped probe: delete a label that never
                // occurs, returning the stored tree as-is.
                query: format!(
                    r#"transform copy $a := doc("{doc_name}") modify do delete $a//label-that-never-occurs return $a"#
                ),
            })
            .unwrap()
            .body;
        assert_eq!(
            got,
            case.expected,
            "golden case '{}' regressed through the live update path\n{}",
            case.name,
            diff(&case.expected, &got)
        );
    }
}
