//! Crash-recovery differential suite for the write-ahead log.
//!
//! A server with a WAL attached logs every applied `LOAD`/`UPDATE`/
//! `REMOVE` before replying; a crash loses the in-memory store but not
//! the log. These tests are differential the same way
//! `tests/update_maintenance.rs` is: a reference document is maintained
//! outside the server with the core primitives, the server is dropped
//! without any shutdown step (the crash), and a fresh server that
//! replays the log must serve **every** registered view byte-identical
//! to a full `two_pass` recompute over the reference — replay runs the
//! normal write paths (including cache maintenance), so recovered
//! state must be exactly what a live server holds, not merely
//! equivalent-looking.
//!
//! Deterministic companions pin the torn-tail contract: a crash
//! mid-append drops exactly the torn record, recovery truncates the
//! garbage so post-recovery writes stay reachable to the *next*
//! replay, and remove/reload lineages replay in order.

mod common;

use std::path::PathBuf;

use proptest::prelude::*;

use common::{arb_op, build_query_text};
use xust::core::{apply_update, evaluate, parse_multi_transform, parse_transform, Method};
use xust::serve::{serve_pipelined, PipelineOptions, Request, Server};
use xust::tree::Document;
use xust::xmark::{generate_string, XmarkConfig};
use xust::xpath::eval_path_root;

/// A spike region with a vocabulary disjoint from the XMark labels and
/// every registered view's alphabet (same shape as the maintenance
/// suite): sequences mix retained and recomputed entries, so recovery
/// is checked across both maintenance outcomes.
const SPIKE: &str = concat!(
    "<spike-zone><sa><sc>10</sc></sa>",
    "<sb><sc>20</sc><zap>x</zap></sb><sa/></spike-zone>"
);

fn spiked_xmark(seed: u64) -> Document {
    let base = generate_string(XmarkConfig::new(0.0005).with_seed(seed));
    let open_end = base.find('>').expect("xmark has a root tag") + 1;
    let spiked = format!("{}{}{}", &base[..open_end], SPIKE, &base[open_end..]);
    Document::parse(&spiked).expect("spiked xmark parses")
}

const VIEWS: [(&str, &[&str]); 3] = [
    (
        "noperson",
        &[r#"transform copy $a := doc("xmark") modify do delete $a//person return $a"#],
    ),
    (
        "kwren",
        &[r#"transform copy $a := doc("xmark") modify do rename $a//keyword as kw return $a"#],
    ),
    (
        "chain2",
        &[
            r#"transform copy $a := doc("xmark") modify do delete $a//emph return $a"#,
            r#"transform copy $a := doc("xmark") modify do rename $a//bold as b return $a"#,
        ],
    ),
];

fn register_views(server: &Server) {
    for (name, links) in VIEWS {
        server.register_view_chain(name, links).unwrap();
    }
}

/// Full recompute of a view chain over `base` — the oracle the
/// recovered server's served bytes must match.
fn recompute_view(base: &Document, links: &[&str]) -> String {
    let mut current = base.clone();
    for link in links {
        let q = parse_transform(link).unwrap();
        current = evaluate(&current, &q, Method::TwoPass).unwrap();
    }
    current.serialize()
}

fn apply_to_reference(reference: &mut Document, update: &str) {
    let mq = parse_multi_transform(update).unwrap();
    for (path, op) in &mq.updates {
        let targets = eval_path_root(reference, path);
        apply_update(reference, &targets, op);
    }
}

/// Update target paths: a spike/XMark mix so sequences exercise both
/// retention and recomputation before the crash.
const UPDATE_PATHS: [&str; 6] = [
    "//spike-zone//sa",
    "//spike-zone/sb[sc]",
    "//zap",
    "site/people/person",
    "//keyword",
    "//emph",
];

fn check_all_views(
    server: &Server,
    reference: &Document,
    context: &str,
) -> Result<(), TestCaseError> {
    for (name, links) in VIEWS {
        let served = server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap()
            .body;
        prop_assert_eq!(
            &served,
            &recompute_view(reference, links),
            "view '{}' diverged from full recompute ({})",
            name,
            context
        );
    }
    Ok(())
}

/// A per-test WAL path; each proptest case removes it first so cases
/// never replay each other's history.
fn wal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xust-recovery-{tag}-{}.wal", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The core crash-recovery property: load + random update sequence
    /// with a WAL attached, crash (drop without shutdown), replay onto
    /// a fresh server — every registered view is byte-identical to a
    /// full recompute over the independently maintained reference.
    #[test]
    fn replayed_wal_yields_views_byte_identical_to_recompute(
        seed in 0u64..16,
        updates in prop::collection::vec((0..UPDATE_PATHS.len(), arb_op()), 1..4),
    ) {
        let path = wal_path("differential");
        let _ = std::fs::remove_file(&path);
        let base = spiked_xmark(seed);
        let mut reference = base.clone();
        {
            let server = Server::builder().threads(2).shards(1).build();
            let recovery = server.attach_wal(&path).unwrap();
            prop_assert_eq!(recovery.applied, 0);
            server.load_doc("xmark", base.clone());
            register_views(&server);
            // Warm the cache so the writes maintain real entries.
            check_all_views(&server, &reference, "before any write")?;
            for &(path_idx, op) in &updates {
                let text = build_query_text("xmark", UPDATE_PATHS[path_idx], op);
                server.update_doc("xmark", &text).unwrap();
                apply_to_reference(&mut reference, &text);
            }
            // The crash: the server drops here with no shutdown step.
        }
        let recovered = Server::builder().threads(2).shards(1).build();
        register_views(&recovered);
        let recovery = recovered.attach_wal(&path).unwrap();
        prop_assert!(!recovery.truncated);
        // One Load record plus one Update record per applied write.
        prop_assert_eq!(recovery.applied, 1 + updates.len());
        check_all_views(&recovered, &reference, "after crash recovery")?;
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn torn_tail_recovery_drops_only_the_torn_record_and_stays_appendable() {
    let path = wal_path("torn");
    let _ = std::fs::remove_file(&path);
    let base = spiked_xmark(3);
    let mut reference = base.clone();
    let first = r#"transform copy $a := doc("xmark") modify do rename $a//zap as rn return $a"#;
    let second = r#"transform copy $a := doc("xmark") modify do delete $a//keyword return $a"#;
    {
        let server = Server::builder().threads(1).shards(1).build();
        server.attach_wal(&path).unwrap();
        server.load_doc("xmark", base.clone());
        server.update_doc("xmark", first).unwrap();
        server.update_doc("xmark", second).unwrap();
    }
    // Crash mid-append: the last frame loses its final bytes, so only
    // the `second` update is torn — Load and `first` stay intact.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    apply_to_reference(&mut reference, first);

    let recovered = Server::builder().threads(1).shards(1).build();
    register_views(&recovered);
    let recovery = recovered.attach_wal(&path).unwrap();
    assert!(recovery.truncated, "the chopped tail must be reported");
    assert_eq!(recovery.applied, 2, "Load + first update survive");
    for (name, links) in VIEWS {
        let served = recovered
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap()
            .body;
        assert_eq!(
            served,
            recompute_view(&reference, links),
            "view '{name}' after torn-tail recovery"
        );
    }
    // Recovery truncated the garbage, so post-recovery writes land on
    // the intact prefix and are reachable to the NEXT replay — without
    // the truncation this write would vanish behind the torn frame.
    recovered.update_doc("xmark", second).unwrap();
    apply_to_reference(&mut reference, second);
    let third = Server::builder().threads(1).shards(1).build();
    register_views(&third);
    let recovery = third.attach_wal(&path).unwrap();
    assert!(!recovery.truncated, "the garbage tail is gone for good");
    assert_eq!(recovery.applied, 3);
    for (name, links) in VIEWS {
        let served = third
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap()
            .body;
        assert_eq!(
            served,
            recompute_view(&reference, links),
            "view '{name}' after second recovery"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn remove_and_reload_lineages_replay_in_order() {
    let path = wal_path("lineage");
    let _ = std::fs::remove_file(&path);
    {
        let server = Server::builder().threads(1).shards(1).build();
        server.attach_wal(&path).unwrap();
        server.load_doc_str("keep", "<keep><a/></keep>").unwrap();
        server.load_doc_str("gone", "<gone/>").unwrap();
        assert!(server.try_remove_doc("gone").unwrap());
        // Reload under the same name: the replayed store must hold the
        // LAST lineage's content, not the first.
        server.load_doc_str("keep", "<keep><b/></keep>").unwrap();
        server
            .update_doc(
                "keep",
                r#"transform copy $a := doc("keep") modify do insert <c/> into $a return $a"#,
            )
            .unwrap();
    }
    let recovered = Server::builder().threads(1).shards(1).build();
    let recovery = recovered.attach_wal(&path).unwrap();
    assert!(!recovery.truncated);
    assert_eq!(recovery.applied, 5, "2 loads + remove + reload + update");
    assert!(
        recovered.store().get("gone").is_none(),
        "a removed document must stay removed through replay"
    );
    let served = recovered
        .handle(&Request::Transform {
            doc: "keep".into(),
            query: r#"transform copy $a := doc("keep") modify do delete $a//zzz return $a"#.into(),
        })
        .unwrap()
        .body;
    assert_eq!(served, "<keep><b/><c/></keep>");
    let _ = std::fs::remove_file(&path);
}

/// End-to-end: a pipelined burst carrying UPDATE barriers is served
/// through the wire front end with a WAL attached, the server crashes,
/// and recovery reproduces the views — ties the pipelined write path
/// (verbs dispatched by `serve_pipelined`, not direct API calls) to
/// the durability layer.
#[test]
fn pipelined_wire_updates_survive_a_crash() {
    let path = wal_path("pipelined");
    let _ = std::fs::remove_file(&path);
    let base = spiked_xmark(9);
    let mut reference = base.clone();
    let updates = [
        r#"transform copy $a := doc("xmark") modify do insert <ins k="1"><t>v</t></ins> into $a//spike-zone/sb return $a"#,
        r#"transform copy $a := doc("xmark") modify do rename $a//keyword as kw2 return $a"#,
        r#"transform copy $a := doc("xmark") modify do delete $a//spike-zone/sa[sc] return $a"#,
    ];
    {
        let server = Server::builder().threads(2).shards(1).build();
        server.attach_wal(&path).unwrap();
        server.load_doc("xmark", base.clone());
        register_views(&server);
        let mut input = String::new();
        for u in updates {
            input.push_str(&format!("UPDATE xmark {u}\n"));
            input.push_str("VIEW noperson xmark\n");
        }
        input.push_str("QUIT\n");
        let mut out = Vec::new();
        serve_pipelined(
            &server,
            std::io::Cursor::new(input.as_bytes()),
            &mut out,
            &PipelineOptions::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text.matches("updated xmark").count(),
            updates.len(),
            "every wire UPDATE must apply: {text}"
        );
    }
    for u in updates {
        apply_to_reference(&mut reference, u);
    }
    let recovered = Server::builder().threads(2).shards(1).build();
    register_views(&recovered);
    let recovery = recovered.attach_wal(&path).unwrap();
    assert_eq!(recovery.applied, 1 + updates.len());
    for (name, links) in VIEWS {
        let served = recovered
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap()
            .body;
        assert_eq!(
            served,
            recompute_view(&reference, links),
            "view '{name}' after pipelined-write recovery"
        );
    }
    let _ = std::fs::remove_file(&path);
}
