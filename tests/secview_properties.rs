//! Security-view invariants on random documents and random policies:
//! non-disclosure (hide rules leave no surviving matches), enforcement
//! equivalence (composed == sequential == streaming), and source
//! immutability.

use proptest::prelude::*;

use xust::secview::Policy;
use xust::tree::{Document, ElementBuilder};

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const TEXTS: [&str; 3] = ["x", "10", "A"];

fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), proptest::option::of(0..TEXTS.len())).prop_map(|(l, t)| {
        let mut b = ElementBuilder::new(LABELS[l]);
        if let Some(t) = t {
            b = b.text(TEXTS[t]);
        }
        b
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (0..LABELS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(l, children)| {
            let mut b = ElementBuilder::new(LABELS[l]);
            for c in children {
                b = b.child(c);
            }
            b
        })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| ElementBuilder::new("r").child(b).build_document())
}

fn arb_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..LABELS.len()).prop_map(|l| LABELS[l].to_string()),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        (0..LABELS.len()).prop_map(|l| format!("[{}]", LABELS[l])),
        (0..LABELS.len(), 0..TEXTS.len())
            .prop_map(|(l, t)| format!("[{} = '{}']", LABELS[l], TEXTS[t])),
    ];
    (prop::collection::vec(
        (step, proptest::option::of(qual), prop::bool::ANY),
        1..3,
    ),)
        .prop_map(|(steps,)| {
            let mut out = String::from("r");
            for (s, q, desc) in steps {
                out.push_str(if desc { "//" } else { "/" });
                out.push_str(&s);
                if let Some(q) = q {
                    out.push_str(&q);
                }
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Hide rules are *effective*: auditing the materialized view finds
    /// no surviving match, for any rule set over any document.
    ///
    /// (This is not vacuous: deletes interact — an earlier rule can
    /// remove the ancestor of a later rule's match — and the audit
    /// re-evaluates every path on the transformed tree.)
    #[test]
    fn hide_policies_never_leak(
        doc in arb_doc(),
        paths in prop::collection::vec(arb_path(), 1..4),
    ) {
        let mut p = Policy::new("g", "d");
        for (i, path) in paths.iter().enumerate() {
            p = p.hide(format!("rule{i}"), path).unwrap();
        }
        let violations = p.audit(&doc);
        prop_assert!(
            violations.is_empty(),
            "policy over {:?} leaked on {}: {:?}",
            paths,
            doc.serialize(),
            violations
        );
    }

    /// Single-rule enforcement agrees across all three strategies.
    #[test]
    fn enforcement_strategies_agree(
        doc in arb_doc(),
        deny in arb_path(),
        ask in arb_path(),
    ) {
        let p = Policy::new("g", "d").hide("deny", &deny).unwrap();
        let q = format!("<out>{{ for $x in doc(\"d\")/{ask} return $x }}</out>");
        let composed = p.answer(&doc, &q).unwrap();
        let sequential = p.answer_sequential(&doc, &q).unwrap();
        let streamed = p.answer_streaming(&doc.serialize(), &q).unwrap();
        prop_assert_eq!(&composed, &sequential, "compose deviates for deny {} ask {}", deny, ask);
        prop_assert_eq!(&streamed, &sequential, "stream deviates for deny {} ask {}", deny, ask);
    }

    /// Enforcement never mutates the source document.
    #[test]
    fn enforcement_is_non_destructive(doc in arb_doc(), deny in arb_path()) {
        let before = doc.serialize();
        let p = Policy::new("g", "d").hide("deny", &deny).unwrap();
        let _ = p.view(&doc);
        let _ = p.audit(&doc);
        let _ = p.answer(&doc, "for $x in doc(\"d\")/r return $x");
        prop_assert_eq!(doc.serialize(), before);
    }
}
