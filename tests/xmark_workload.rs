//! End-to-end runs of the paper's experimental workload (Fig. 11) on
//! generated XMark data: every method agrees on every Uᵢ, and the
//! composition pairs of Section 7.2 agree with sequential evaluation.

use xust::compose::{compose, naive_composition_to_string, UserQuery};
use xust::core::{evaluate, two_pass_sax_str, LdStorage, Method, TransformQuery};
use xust::tree::{docs_eq, Document};
use xust::xmark::{generate, XmarkConfig};
use xust::xpath::parse_path;

/// The embedded XPath expressions U1–U10 of Fig. 11, verbatim.
pub const WORKLOAD: [&str; 10] = [
    "/site/people/person",
    "/site/people/person[@id = \"person10\"]",
    "/site/people/person[profile/age > 20]",
    "/site/regions//item",
    "/site//description",
    "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
    "/site/open_auctions/open_auction[bidder/increase>5]/annotation[happiness < 20]/description//text",
    "/site/open_auctions/open_auction[initial > 10 and reserve >50]/bidder",
    "/site/regions//item[location =\"United States\"]",
    "/site//open_auctions/open_auction[not(@id =\"open_auction2\")]/bidder[increase > 10]",
];

fn small_doc() -> Document {
    generate(XmarkConfig::new(0.004))
}

fn insert_query(path: &str) -> TransformQuery {
    TransformQuery::insert(
        "xmark",
        parse_path(path).unwrap(),
        Document::parse("<annotation-mark><by>xust</by></annotation-mark>").unwrap(),
    )
}

#[test]
fn all_methods_agree_on_all_workload_queries() {
    let doc = small_doc();
    for (i, path) in WORKLOAD.iter().enumerate() {
        let q = insert_query(path);
        let reference = evaluate(&doc, &q, Method::CopyUpdate).unwrap();
        // NaiveXQuery is exercised separately (it is slow at this size).
        for m in [
            Method::Naive,
            Method::TopDown,
            Method::TwoPass,
            Method::TwoPassSax,
        ] {
            let got = evaluate(&doc, &q, m).unwrap();
            assert!(
                docs_eq(&reference, &got),
                "U{} ({path}): {m} disagrees with baseline",
                i + 1
            );
        }
    }
}

#[test]
fn delete_variants_agree_too() {
    let doc = small_doc();
    for path in [WORKLOAD[1], WORKLOAD[6], WORKLOAD[8]] {
        let q = TransformQuery::delete("xmark", parse_path(path).unwrap());
        let reference = evaluate(&doc, &q, Method::CopyUpdate).unwrap();
        for m in [
            Method::Naive,
            Method::TopDown,
            Method::TwoPass,
            Method::TwoPassSax,
        ] {
            let got = evaluate(&doc, &q, m).unwrap();
            assert!(docs_eq(&reference, &got), "{path}: {m} disagrees");
        }
    }
}

#[test]
fn naive_xquery_agrees_on_selective_queries() {
    let doc = generate(XmarkConfig::new(0.001));
    for path in [WORKLOAD[1], WORKLOAD[5]] {
        let q = insert_query(path);
        let reference = evaluate(&doc, &q, Method::CopyUpdate).unwrap();
        let got = evaluate(&doc, &q, Method::NaiveXQuery).unwrap();
        assert!(docs_eq(&reference, &got), "{path}: NaiveXQuery disagrees");
    }
}

#[test]
fn streaming_equals_dom_on_xmark() {
    let doc = small_doc();
    let xml = doc.serialize();
    for path in [WORKLOAD[3], WORKLOAD[7]] {
        let q = insert_query(path);
        let dom = evaluate(&doc, &q, Method::TwoPass).unwrap().serialize();
        let streamed = two_pass_sax_str(&xml, &q).unwrap();
        assert_eq!(dom, streamed, "{path}: twoPassSAX differs from TD-BU");
    }
    // File-backed Ld produces byte-identical output.
    let q = insert_query(WORKLOAD[6]);
    let mut a = Vec::new();
    let mut b = Vec::new();
    xust::core::two_pass_sax(
        xust::sax::SaxParser::from_str(&xml),
        xust::sax::SaxParser::from_str(&xml),
        &q,
        &mut a,
        LdStorage::Memory,
    )
    .unwrap();
    xust::core::two_pass_sax(
        xust::sax::SaxParser::from_str(&xml),
        xust::sax::SaxParser::from_str(&xml),
        &q,
        &mut b,
        LdStorage::TempFile,
    )
    .unwrap();
    assert_eq!(a, b);
}

/// The four transform/user pairs of Section 7.2.
fn composition_pairs() -> Vec<(TransformQuery, UserQuery)> {
    let user = |path: &str| {
        UserQuery::parse(&format!(
            "<result>{{ for $x in doc(\"xmark\"){path} return $x }}</result>"
        ))
        .unwrap()
    };
    vec![
        // (U1 insert, U2 user)
        (insert_query(WORKLOAD[0]), user(WORKLOAD[1])),
        // (U9 insert, U1 user)
        (insert_query(WORKLOAD[8]), user(WORKLOAD[0])),
        // (U9 delete, U4 user)
        (
            TransformQuery::delete("xmark", parse_path(WORKLOAD[8]).unwrap()),
            user(WORKLOAD[3]),
        ),
        // (U8 delete, U10 user)
        (
            TransformQuery::delete("xmark", parse_path(WORKLOAD[7]).unwrap()),
            user(WORKLOAD[9]),
        ),
    ]
}

#[test]
fn fig15_pairs_composed_equals_sequential() {
    let doc = small_doc();
    for (i, (qt, uq)) in composition_pairs().into_iter().enumerate() {
        let qc = compose(&qt, &uq).unwrap_or_else(|e| panic!("pair {i}: {e}"));
        let composed = qc.execute_to_string(&doc).unwrap();
        let sequential = naive_composition_to_string(&doc, &qt, &uq).unwrap();
        assert_eq!(
            composed, sequential,
            "pair {i}: Qc(T) != Q(Qt(T)) (fallbacks: {})",
            qc.fallback_sites
        );
    }
}

#[test]
fn u9_u1_pair_is_fully_static() {
    // The paper's standout case: user query disjoint from the transform.
    let (qt, uq) = composition_pairs().swap_remove(1);
    let qc = compose(&qt, &uq).unwrap();
    assert_eq!(
        qc.transform_sites(),
        0,
        "U9⊥U1 should compose away the transform entirely"
    );
}

#[test]
fn insert_positions_agree_on_workload_sample() {
    use xust::core::InsertPos;
    let doc = small_doc();
    let e = Document::parse("<mark/>").unwrap();
    // U2 (point), U4 (descendant), U9 (descendant + qualifier).
    for path in [WORKLOAD[1], WORKLOAD[3], WORKLOAD[8]] {
        for pos in [InsertPos::FirstInto, InsertPos::Before, InsertPos::After] {
            let q = TransformQuery::insert_at("xmark", parse_path(path).unwrap(), e.clone(), pos);
            let reference = evaluate(&doc, &q, Method::CopyUpdate).unwrap();
            for m in [
                Method::Naive,
                Method::TopDown,
                Method::TwoPass,
                Method::TwoPassSax,
            ] {
                let got = evaluate(&doc, &q, m).unwrap();
                assert!(
                    docs_eq(&reference, &got),
                    "{path} {pos}: {m} disagrees with baseline"
                );
            }
        }
    }
}

#[test]
fn multi_update_workload_dom_and_stream_agree() {
    use xust::core::{
        multi_snapshot, multi_top_down, multi_two_pass_sax_str, MultiTransformQuery, UpdateOp,
    };
    let doc = small_doc();
    let mq = MultiTransformQuery::new(
        "xmark",
        vec![
            (
                parse_path("/site/people/person/creditcard").unwrap(),
                UpdateOp::Delete,
            ),
            (
                parse_path(WORKLOAD[8]).unwrap(),
                UpdateOp::Insert {
                    elem: Document::parse("<flag/>").unwrap(),
                    pos: xust::core::InsertPos::FirstInto,
                },
            ),
            (
                parse_path("/site/closed_auctions").unwrap(),
                UpdateOp::Rename {
                    name: "archive".into(),
                },
            ),
        ],
    );
    let reference = multi_snapshot(&doc, &mq);
    let fused = multi_top_down(&doc, &mq);
    assert!(docs_eq(&reference, &fused), "fused multi deviates on XMark");
    let streamed = multi_two_pass_sax_str(&doc.serialize(), &mq).unwrap();
    assert_eq!(
        streamed,
        reference.serialize(),
        "streamed multi deviates on XMark"
    );
    assert!(!streamed.contains("creditcard"));
    assert!(streamed.contains("<archive>"));
}
