//! Integration tests for the pipelined wire front end.
//!
//! The unit tests in `crates/serve/src/pipeline.rs` pin the framing
//! and batching contract over in-memory transports; these tests drive
//! the same code over a real TCP socket (the deployment shape: reader
//! thread + `BufWriter`, `TCP_NODELAY`, client writes a whole burst
//! before reading a byte) and check the read-your-writes barrier
//! semantics differentially against the core primitives.

mod common;

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use xust::core::{apply_update, parse_multi_transform};
use xust::serve::{serve_pipelined, PipelineOptions, Server};
use xust::tree::Document;
use xust::xpath::eval_path_root;

fn apply_to_reference(reference: &mut Document, update: &str) {
    let mq = parse_multi_transform(update).unwrap();
    for (path, op) in &mq.updates {
        let targets = eval_path_root(reference, path);
        apply_update(reference, &targets, op);
    }
}

/// N requests written before any reply is read → N replies, strictly
/// in request order, over a real socket. The client sends the whole
/// burst (including `QUIT`) in one write and only then starts reading;
/// a blocking one-at-a-time server would deadlock or reorder here.
#[test]
fn tcp_burst_of_pipelined_requests_replies_in_order() {
    const N: usize = 48;
    let server = Server::builder().threads(2).build();
    server.load_doc_str("db", "<db><a/><b/></db>").unwrap();
    server
        .register_view(
            "noa",
            r#"transform copy $a := doc("db") modify do delete $a//a return $a"#,
        )
        .unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            let (stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            serve_pipelined(&server, reader, stream, &PipelineOptions::default()).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_nodelay(true).unwrap();
        let mut burst = String::new();
        for i in 0..N {
            // Alternate the two read verbs so ordering is observable
            // beyond "all replies identical".
            if i % 2 == 0 {
                burst.push_str("VIEW noa db\n");
            } else {
                burst.push_str("QUERY noa db <r>{ for $x in doc(\"db\")//b return $x }</r>\n");
            }
        }
        burst.push_str("QUIT\n");
        client.write_all(burst.as_bytes()).unwrap();
        // Only now read: the server must have buffered/processed the
        // burst without waiting for reply reads.
        let mut replies = String::new();
        client.read_to_string(&mut replies).unwrap();
        let lines: Vec<&str> = replies.lines().collect();
        assert_eq!(lines.len(), 2 * N, "one OK + one body per request");
        for i in 0..N {
            let body = if i % 2 == 0 {
                "<db><b/></db>"
            } else {
                "<r><b/></r>"
            };
            assert_eq!(lines[2 * i], format!("OK {}", body.len()), "reply {i}");
            assert_eq!(lines[2 * i + 1], body, "reply {i}");
        }
    });
}

/// Write verbs are barriers with read-your-writes ordering: every VIEW
/// pipelined after an UPDATE in the same burst observes that update
/// (and none of the later ones). Checked differentially against the
/// core primitives applied to a reference document.
#[test]
fn pipelined_updates_and_views_stay_differential() {
    const XML: &str = "<db><s>1</s><k><s>2</s><t>x</t></k><t>y</t></db>";
    const VIEW: &str = r#"transform copy $a := doc("db") modify do delete $a//s return $a"#;
    let updates = [
        r#"transform copy $a := doc("db") modify do insert <s>3</s> into $a//k return $a"#,
        r#"transform copy $a := doc("db") modify do rename $a//t as u return $a"#,
        r#"transform copy $a := doc("db") modify do delete $a//u return $a"#,
        r#"transform copy $a := doc("db") modify do insert <t>z</t> into $a return $a"#,
    ];
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", XML).unwrap();
    server.register_view("nos", VIEW).unwrap();
    let mut reference = Document::parse(XML).unwrap();
    let view_of = |reference: &Document| {
        let mut r = reference.clone();
        let targets = {
            let mq = parse_multi_transform(VIEW).unwrap();
            let (path, op) = &mq.updates[0];
            let t = eval_path_root(&r, path);
            (t, op.clone())
        };
        apply_update(&mut r, &targets.0, &targets.1);
        r.serialize()
    };
    let mut input = String::new();
    let mut expected = vec![view_of(&reference)];
    input.push_str("VIEW nos db\n");
    for u in updates {
        input.push_str(&format!("UPDATE db {u}\n"));
        input.push_str("VIEW nos db\n");
        apply_to_reference(&mut reference, u);
        expected.push(view_of(&reference));
    }
    input.push_str("QUIT\n");
    let mut out = Vec::new();
    serve_pipelined(
        &server,
        std::io::Cursor::new(input.as_bytes()),
        &mut out,
        &PipelineOptions::default(),
    )
    .unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Replies alternate VIEW, (UPDATE, VIEW)*: each reply is an OK
    // line plus a body line.
    assert_eq!(lines.len(), 2 * (1 + 2 * updates.len()));
    let mut at = 0usize;
    let expect_view = |want: &str, at: &mut usize| {
        assert_eq!(lines[*at], format!("OK {}", want.len()));
        assert_eq!(lines[*at + 1], want, "view body diverged from reference");
        *at += 2;
    };
    expect_view(&expected[0], &mut at);
    for (i, _) in updates.iter().enumerate() {
        assert!(
            lines[at].starts_with("OK "),
            "UPDATE reply {i}: {}",
            lines[at]
        );
        assert!(
            lines[at + 1].starts_with("updated db"),
            "UPDATE reply {i}: {}",
            lines[at + 1]
        );
        at += 2;
        expect_view(&expected[i + 1], &mut at);
    }
}

/// Robustness over a socket: an oversized request line gets an `ERR`
/// (not a dropped connection), and the requests pipelined behind it
/// still serve after the resync at the next newline.
#[test]
fn tcp_oversized_line_replies_err_and_connection_survives() {
    let server = Server::builder().threads(1).build();
    server.load_doc_str("db", "<db><a/></db>").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = PipelineOptions {
        max_line: 256,
        ..PipelineOptions::default()
    };
    std::thread::scope(|s| {
        s.spawn(|| {
            let (stream, _) = listener.accept().unwrap();
            stream.set_nodelay(true).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            serve_pipelined(&server, reader, stream, &opts).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let long = "TRANSFORM db ".to_string() + &"x".repeat(512) + "\n";
        let follow =
            "TRANSFORM db transform copy $a := doc(\"db\") modify do delete $a//zzz return $a\n";
        client
            .write_all(format!("{long}{follow}QUIT\n").as_bytes())
            .unwrap();
        let mut replies = String::new();
        client.read_to_string(&mut replies).unwrap();
        let lines: Vec<&str> = replies.lines().collect();
        assert!(
            lines[0].starts_with("ERR request line exceeds"),
            "oversized line must get an ERR: {}",
            lines[0]
        );
        let body = "<db><a/></db>";
        assert_eq!(lines[1], format!("OK {}", body.len()));
        assert_eq!(lines[2], body);
    });
}
