//! End-to-end observability: the METRICS exposition parses line by
//! line, histograms stay conserved under concurrency, TRACE captures a
//! slow request's phase breakdown, and EXPLAIN predicts the method the
//! planner then actually picks.

use xust::serve::{LatencyHistogram, Phase, PlannerConfig, Request, Server};

/// A memory document big enough to clear the planner's tiny-doc
/// threshold (3 nodes per part + root).
fn big_doc(parts: usize) -> String {
    let mut xml = String::from("<db>");
    for i in 0..parts {
        xml.push_str(&format!("<part><price>{i}</price><n>p{i}</n></part>"));
    }
    xml.push_str("</db>");
    xml
}

fn view_query() -> &'static str {
    r#"transform copy $a := doc("db") modify do delete $a//price return $a"#
}

/// Validates one line of the Prometheus text exposition:
/// `name{label="v",…} value` (or a `#`-prefixed comment).
fn assert_metric_line(line: &str) {
    if let Some(comment) = line.strip_prefix('#') {
        assert!(comment.starts_with(' '), "malformed comment line: {line:?}");
        return;
    }
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in {line:?}"));
    value
        .parse::<f64>()
        .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
    let name = match series.split_once('{') {
        Some((name, labels)) => {
            let labels = labels
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated labels in {line:?}"));
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("label without '=' in {line:?}"));
                assert!(
                    k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "bad label key {k:?} in {line:?}"
                );
                assert!(
                    v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
                    "unquoted label value {v:?} in {line:?}"
                );
            }
            name
        }
        None => series,
    };
    assert!(!name.is_empty(), "empty metric name in {line:?}");
    assert!(
        !name.starts_with(|c: char| c.is_ascii_digit()),
        "metric name starts with digit in {line:?}"
    );
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name {name:?} in {line:?}"
    );
}

#[test]
fn metrics_exposition_parses_and_covers_verbs_views_methods() {
    let server = Server::builder().threads(2).build();
    server.load_doc_str("db", &big_doc(40)).unwrap();
    server.register_view("public", view_query()).unwrap();
    // A mixed workload so every series family has data.
    server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();
    server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();
    server
        .handle(&Request::Query {
            view: "public".into(),
            doc: "db".into(),
            query: r#"<out>{ for $x in doc("db")/db/part return $x }</out>"#.into(),
        })
        .unwrap();
    server
        .handle(&Request::Transform {
            doc: "db".into(),
            query: view_query().into(),
        })
        .unwrap();
    server
        .handle(&Request::Update {
            doc: "db".into(),
            update: r#"transform copy $a := doc("db") modify do insert <x/> into $a/db return $a"#
                .into(),
        })
        .unwrap();
    server
        .handle(&Request::View {
            view: "nope".into(),
            doc: "db".into(),
        })
        .unwrap_err();

    let text = server.metrics();
    assert!(!text.is_empty());
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert_metric_line(line);
    }
    // Per-verb counters, including the error and METRICS itself.
    assert!(text.contains("xust_verb_requests_total{verb=\"view\"} 3"));
    assert!(text.contains("xust_verb_errors_total{verb=\"view\"} 1"));
    assert!(text.contains("xust_verb_requests_total{verb=\"update\"} 1"));
    assert!(text.contains("xust_verb_requests_total{verb=\"metrics\"} 1"));
    // Latency summaries per verb, per view, and per method.
    assert!(text.contains("# TYPE xust_latency_micros summary"));
    for q in ["0.5", "0.9", "0.99"] {
        assert!(
            text.contains(&format!(
                "xust_latency_micros{{scope=\"verb\",key=\"view\",quantile=\"{q}\"}}"
            )),
            "missing verb quantile {q}: {text}"
        );
    }
    assert!(text.contains("xust_latency_micros{scope=\"view\",key=\"public\",quantile=\"0.5\"}"));
    assert!(text.contains("scope=\"method\""));
    assert!(text.contains("xust_method_executions_total"));
    // Gauges and cache counters ride along.
    assert!(text.contains("xust_store_docs"));
    assert!(text.contains("xust_prepared_cache_hits{cache=\"transforms\"}"));
}

#[test]
fn histograms_conserve_count_and_sum_under_concurrency() {
    use std::sync::Arc;
    let hist = Arc::new(LatencyHistogram::new());
    let reference = LatencyHistogram::new();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let sample = |t: u64, i: u64| (t * 131 + i * 17) % 250_000 + 1;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record(sample(t, i));
                }
            })
        })
        .collect();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            reference.record(sample(t, i));
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    let (got, want) = (hist.snapshot(), reference.snapshot());
    assert_eq!(got.count, THREADS * PER_THREAD);
    assert_eq!(got.sum, want.sum, "sum lost under concurrency");
    assert_eq!(got.max, want.max);
    // Quantiles land in exactly the same buckets: recording is
    // commutative, so the concurrent histogram equals the serial one.
    assert_eq!((got.p50, got.p90, got.p99), (want.p50, want.p90, want.p99));
}

#[test]
fn trace_captures_slow_request_phase_breakdown() {
    let server = Server::builder().threads(2).build();
    server.load_doc_str("db", &big_doc(3000)).unwrap();
    server.register_view("public", view_query()).unwrap();
    server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();

    let traces = server.obs().recent_traces(8);
    let view = traces
        .iter()
        .find(|t| t.target == "public/db")
        .expect("view request was traced");
    assert!(view.ok);
    assert!(view.micros > 0);
    assert!(
        view.phases().iter().any(|(p, _)| *p == Phase::Eval),
        "no Eval phase in {:?}",
        view.phases()
    );
    // The phase breakdown accounts for the request: each phase fits
    // inside the total, and together they cover most of it (the
    // remainder is dispatch glue between the bracketed sections).
    let phase_sum: u64 = view.phases().iter().map(|&(_, us)| us).sum();
    assert!(
        phase_sum <= view.micros + view.micros / 5 + 50,
        "phases sum to {phase_sum}µs but the request took {}µs",
        view.micros
    );
    assert!(
        phase_sum * 2 >= view.micros,
        "phases cover only {phase_sum}µs of {}µs",
        view.micros
    );
    // The materialization was slow enough to make the slow log, and the
    // rendered TRACE output carries the breakdown.
    assert!(server
        .obs()
        .slowest_traces()
        .iter()
        .any(|t| t.seq == view.seq));
    let rendered = server.traces(8);
    assert!(rendered.contains("view public/db"), "{rendered}");
    assert!(rendered.contains("phases["), "{rendered}");
    assert!(rendered.contains("slowest:"), "{rendered}");
}

#[test]
fn tracing_disabled_records_nothing_but_serves_metrics() {
    let server = Server::builder().threads(2).tracing(false).build();
    server.load_doc_str("db", &big_doc(20)).unwrap();
    server.register_view("public", view_query()).unwrap();
    server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(server.obs().requests_traced(), 0);
    assert!(server.obs().recent_traces(8).is_empty());
    assert!(server.traces(8).contains("tracing disabled"));
    // Counters are unconditional: METRICS still reflects the request.
    let text = server.metrics();
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert_metric_line(line);
    }
    assert!(text.contains("xust_verb_requests_total{verb=\"view\"} 1"));
}

#[test]
fn explain_predicts_the_method_the_planner_then_picks() {
    // Exploration off and the result cache disabled: every VIEW
    // re-materializes, and between EXPLAIN and the next VIEW no
    // feedback lands — the two must agree exactly.
    let server = Server::builder()
        .threads(1)
        .result_cache_capacity(0)
        .planner(PlannerConfig {
            explore_every: 0,
            ..PlannerConfig::default()
        })
        .build();
    server.load_doc_str("db", &big_doc(2000)).unwrap();
    server.register_view("public", view_query()).unwrap();
    // Warm the planner's feedback cells.
    for _ in 0..4 {
        server
            .handle(&Request::View {
                view: "public".into(),
                doc: "db".into(),
            })
            .unwrap();
    }
    let explanation = server.explain("public", "db").unwrap();
    assert_eq!(explanation.links.len(), 1);
    let predicted = explanation.links[0].method;
    assert!(!explanation.links[0].fixed, "memory chain is adaptive");
    // The warmed candidate carries both kinds of evidence.
    let chosen_evidence = explanation.links[0]
        .candidates
        .iter()
        .find(|c| c.method == predicted)
        .expect("predicted method is among the candidates");
    assert!(chosen_evidence.ewma.is_some(), "no EWMA after warming");
    assert!(
        chosen_evidence.histogram.is_some(),
        "no histogram after warming"
    );
    let resp = server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(
        resp.method,
        Some(predicted),
        "EXPLAIN predicted {predicted} but the planner picked {:?}",
        resp.method
    );
    // EXPLAIN itself never perturbs the plan: asking again agrees.
    assert_eq!(
        server.explain("public", "db").unwrap().links[0].method,
        predicted
    );
}
