//! Concurrency tests for `xust-serve`: eight client threads hammer one
//! server, and the prepared-cache stats must prove that parsing and NFA
//! construction happened once per distinct query — everything else was
//! a cache hit — while all threads observed identical, correct results.

use std::sync::atomic::{AtomicU32, Ordering}; // lint: atomic-ok (test-only counters)
use std::sync::{Arc, Barrier};
use std::thread;

use xust::serve::{PreparedCache, Request, Server};
use xust::tree::Document;
use xust::xmark::{generate, XmarkConfig};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 25;

const DEL_PRICE: &str = r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;

fn catalog_xml() -> String {
    let mut parts = String::from("<db>");
    for i in 0..40 {
        parts.push_str(&format!(
            "<part><pname>p{i}</pname><supplier><sname>s{}</sname><price>{}</price></supplier></part>",
            i % 7,
            5 + i
        ));
    }
    parts.push_str("</db>");
    parts
}

#[test]
fn eight_threads_share_one_compilation() {
    let server = Server::builder().threads(THREADS).build();
    server.load_doc_str("db", &catalog_xml()).unwrap();
    let server = Arc::new(server);

    let expected = {
        let r = server
            .handle(&Request::Transform {
                doc: "db".into(),
                query: DEL_PRICE.into(),
            })
            .unwrap();
        r.body
    };
    assert!(!expected.contains("<price>"));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let server = Arc::clone(&server);
            let expected = expected.clone();
            thread::spawn(move || {
                let mut hits = 0usize;
                for _ in 0..REQUESTS_PER_THREAD {
                    let r = server
                        .handle(&Request::Transform {
                            doc: "db".into(),
                            query: DEL_PRICE.into(),
                        })
                        .unwrap();
                    assert_eq!(r.body, expected, "all threads see identical results");
                    if r.cache_hit {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let hits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    // Every concurrent request was a cache hit (the warm-up request
    // above did the one and only compile).
    assert_eq!(hits, THREADS * REQUESTS_PER_THREAD);

    let snap = server.stats();
    assert_eq!(
        snap.compiles, 1,
        "exactly one parse+NFA construction for {} requests",
        snap.requests
    );
    assert_eq!(snap.cache_hits, (THREADS * REQUESTS_PER_THREAD) as u64);
    assert_eq!(snap.cache_misses, 1);
    assert_eq!(snap.requests, (THREADS * REQUESTS_PER_THREAD + 1) as u64);
    assert_eq!(snap.failures, 0);
}

#[test]
fn eight_threads_race_a_cold_cache_single_flight() {
    // No warm-up: all eight threads race the same cold key. The
    // single-flight cache must compile exactly once.
    let server = Server::builder().threads(THREADS).build();
    server.load_doc_str("db", &catalog_xml()).unwrap();
    let server = Arc::new(server);

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                for _ in 0..REQUESTS_PER_THREAD {
                    server
                        .handle(&Request::Transform {
                            doc: "db".into(),
                            query: DEL_PRICE.into(),
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = server.stats();
    assert_eq!(snap.compiles, 1, "cold-start race still compiles once");
    assert_eq!(snap.cache_misses, 1);
    assert_eq!(snap.cache_hits, (THREADS * REQUESTS_PER_THREAD - 1) as u64);
}

#[test]
fn concurrent_composed_queries_against_a_registered_view() {
    let server = Server::builder().threads(THREADS).build();
    server.load_doc_str("db", &catalog_xml()).unwrap();
    server.register_view("public", DEL_PRICE).unwrap();
    let server = Arc::new(server);
    let user = r#"<out>{ for $x in doc("db")/db/part/supplier return $x }</out>"#;

    let expected = server
        .handle(&Request::Query {
            view: "public".into(),
            doc: "db".into(),
            query: user.into(),
        })
        .unwrap()
        .body;
    assert!(expected.contains("<sname>"));
    assert!(!expected.contains("<price>"));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let server = Arc::clone(&server);
            let expected = expected.clone();
            thread::spawn(move || {
                for _ in 0..REQUESTS_PER_THREAD {
                    let r = server
                        .handle(&Request::Query {
                            view: "public".into(),
                            doc: "db".into(),
                            query: user.into(),
                        })
                        .unwrap();
                    assert!(r.cache_hit);
                    assert_eq!(r.body, expected);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = server.stats();
    assert_eq!(snap.compositions, 1, "one composition for all requests");
    assert_eq!(
        snap.query_requests,
        (THREADS * REQUESTS_PER_THREAD + 1) as u64
    );
    // The view itself was compiled once, at registration.
    assert_eq!(server.registration_compiles(), 1);
}

#[test]
fn sixteen_threads_hammer_one_cold_key_exactly_one_build() {
    // Direct contention test on the cache itself: 16 threads released by
    // a barrier race one cold key whose build is deliberately slow.
    // Single-flight must admit exactly one builder; everyone else waits
    // and then hits.
    const THREADS: usize = 16;
    const ITERS: usize = 50;
    let cache: Arc<PreparedCache<String>> = Arc::new(PreparedCache::new(32));
    let builds = Arc::new(AtomicU32::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for _ in 0..ITERS {
                    let (v, _) = cache
                        .get_or_try_insert("cold", || -> Result<String, &'static str> {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so every thread is
                            // parked on the condvar while we build.
                            thread::sleep(std::time::Duration::from_millis(20));
                            Ok("compiled".into())
                        })
                        .unwrap();
                    assert_eq!(*v, "compiled");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one compilation");
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), (THREADS * ITERS - 1) as u64);
}

#[test]
fn lru_eviction_stays_correct_under_concurrent_churn() {
    // Many threads cycle through far more keys than the cache holds.
    // Invariants under churn: every lookup returns the value derived
    // from its key (never a stale or cross-wired entry), the resident
    // set never exceeds capacity, and the counters stay coherent.
    const THREADS: usize = 16;
    const KEYS: usize = 48;
    const CAPACITY: usize = 8;
    const ITERS: usize = 200;
    let cache: Arc<PreparedCache<String>> = Arc::new(PreparedCache::new(CAPACITY));
    let builds = Arc::new(AtomicU32::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..ITERS {
                    // Each thread walks the key space at its own stride,
                    // with one hot key shared by everyone.
                    let k = if i % 5 == 0 { 0 } else { (t * 7 + i) % KEYS };
                    let key = format!("key{k}");
                    let (v, _) = cache
                        .get_or_try_insert(&key, || -> Result<String, &'static str> {
                            builds.fetch_add(1, Ordering::SeqCst);
                            Ok(format!("value-of-{k}"))
                        })
                        .unwrap();
                    assert_eq!(*v, format!("value-of-{k}"), "cross-wired cache entry");
                    assert!(
                        cache.len() <= CAPACITY,
                        "capacity exceeded: {}",
                        cache.len()
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let builds = u64::from(builds.load(Ordering::SeqCst));
    assert_eq!(cache.misses(), builds, "every miss built exactly once");
    assert_eq!(
        cache.hits() + cache.misses(),
        (THREADS * ITERS) as u64,
        "every lookup is a hit or a miss"
    );
    assert!(
        cache.evictions() >= builds - CAPACITY as u64,
        "churn must evict: {} evictions for {} builds",
        cache.evictions(),
        builds
    );
    assert!(cache.len() <= CAPACITY);
    // The cache still works after the storm.
    let (v, _) = cache
        .get_or_try_insert("key0", || -> Result<String, &'static str> {
            Ok("value-of-0".into())
        })
        .unwrap();
    assert_eq!(*v, "value-of-0");
}

#[test]
fn batched_multi_document_entry_point() {
    let server = Server::builder().threads(THREADS).build();
    // Two XMark documents of different sizes plus the toy catalog.
    server.load_doc("x1", generate(XmarkConfig::new(0.001)));
    server.load_doc("x2", generate(XmarkConfig::new(0.002).with_seed(7)));
    server.load_doc_str("db", &catalog_xml()).unwrap();
    server
        .register_view(
            "nopeople",
            r#"transform copy $a := doc("xmark") modify do delete $a/site/people return $a"#,
        )
        .unwrap();

    let batch: Vec<Request> = vec![
        Request::View {
            view: "nopeople".into(),
            doc: "x1".into(),
        },
        Request::View {
            view: "nopeople".into(),
            doc: "x2".into(),
        },
        Request::Transform {
            doc: "db".into(),
            query: DEL_PRICE.into(),
        },
        Request::Query {
            view: "nopeople".into(),
            doc: "x1".into(),
            query: r#"<r>{ for $x in doc("xmark")/site/regions return $x }</r>"#.into(),
        },
    ];
    let results = server.execute_batch(batch);
    assert_eq!(results.len(), 4);
    let v1 = results[0].as_ref().unwrap();
    let v2 = results[1].as_ref().unwrap();
    assert!(!v1.body.contains("<people>"));
    assert!(!v2.body.contains("<people>"));
    assert_ne!(v1.body, v2.body, "different documents, different views");
    assert!(!results[2].as_ref().unwrap().body.contains("<price>"));
    assert!(results[3].as_ref().unwrap().body.starts_with("<r>"));
    assert_eq!(server.stats().batches, 1);

    // The same documents validate against the baseline: the view equals
    // the direct evaluation of the same transform.
    let direct = xust::core::evaluate_str(
        &generate(XmarkConfig::new(0.001)),
        r#"transform copy $a := doc("xmark") modify do delete $a/site/people return $a"#,
        xust::core::Method::Naive,
    )
    .unwrap();
    assert_eq!(v1.body, direct.serialize());
}

#[test]
fn documents_shared_without_copies_survive_concurrent_reads() {
    // An Arc-shared document served to readers while other threads load
    // *other* documents — the store must never block readers on writers
    // for unrelated names.
    let server = Server::builder().threads(4).build();
    server.load_doc_str("db", &catalog_xml()).unwrap();
    let server = Arc::new(server);
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            thread::spawn(move || {
                for _ in 0..20 {
                    let r = server
                        .handle(&Request::Transform {
                            doc: "db".into(),
                            query: DEL_PRICE.into(),
                        })
                        .unwrap();
                    assert!(!r.body.contains("<price>"));
                }
            })
        })
        .collect();
    let writer = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            for i in 0..20 {
                let doc = Document::parse(&format!("<d><v>{i}</v></d>")).unwrap();
                server.load_doc(format!("scratch{i}"), doc);
            }
        })
    };
    for r in readers {
        r.join().unwrap();
    }
    writer.join().unwrap();
    assert!(server.doc_names().len() >= 21);
}
