//! Soundness harness for the registration-time static analysis.
//!
//! Two layers, mirroring the two promises `xust-analyze` makes:
//!
//! 1. **Alphabet soundness** — `collect_alphabet` (the union of the
//!    selecting and filtering NFA alphabets) must contain every label
//!    the evaluation of a path can consult. The property is tested as
//!    label-independence: relabeling every document label *outside* the
//!    collected alphabet commutes with evaluation. If evaluation ever
//!    consulted a label the alphabet misses, some relabeling would
//!    change which nodes are selected and the two sides would diverge.
//!    This is the load-bearing premise of both the dynamic relevance
//!    test and the static commutation table built on top of it.
//!
//! 2. **Static-vs-dynamic agreement** — for fuzzed writes against live
//!    cached views, the static commutation verdict must agree with, or
//!    be strictly weaker than, the dynamic three-way test: a view the
//!    static table clears is never recomputed, the write's reported
//!    `static=` count never exceeds what the external re-derivation of
//!    [`statically_commutes`] allows, and every served view body stays
//!    byte-identical to a full recompute. Deterministic companions pin
//!    dead-view rejection and equivalence-class cache sharing.

mod common;

use proptest::prelude::*;

use xust::analyze::{analyze_view, classify_update, statically_commutes};
use xust::automata::{FilteringNfa, LabelSet, SelectingNfa};
use xust::core::{
    apply_update, evaluate, intern, parse_multi_transform, parse_transform, update_alphabet,
    value_alphabet_into, CompiledTransform, Method, TransformQuery,
};
use xust::serve::{Request, Server};
use xust::tree::Document;
use xust::xmark::{generate_string, XmarkConfig};
use xust::xpath::{eval_path_root, parse_path};

/// Spike region grafted into the XMark document (vocabulary disjoint
/// from the XMark labels the views read).
const SPIKE: &str = concat!(
    "<spike-zone><sa><sc>10</sc></sa>",
    "<sb><sc>20</sc><zap>x</zap></sb><sa/></spike-zone>"
);

fn spiked_xmark(seed: u64) -> Document {
    let base = generate_string(XmarkConfig::new(0.0005).with_seed(seed));
    let open_end = base.find('>').expect("xmark has a root tag") + 1;
    let spiked = format!("{}{}{}", &base[..open_end], SPIKE, &base[open_end..]);
    Document::parse(&spiked).expect("spiked xmark parses")
}

// ---------------------------------------------------------------------
// Layer 1: collect_alphabet soundness
// ---------------------------------------------------------------------

/// Labels the path generator draws from — a mix of labels that occur in
/// spiked XMark documents and ones that do not (dead steps are part of
/// the property space too).
const POOL: [&str; 10] = [
    "part", "keyword", "bidder", "increase", "person", "emph", "sa", "sb", "sc", "zap",
];

/// Random label paths with qualifiers, in concrete syntax. No wildcard
/// and no `label()` tests: the former makes every label relevant (the
/// property becomes vacuous), the latter is accounted by
/// `qualifier_label_tests_into`, a separate channel from
/// `collect_alphabet`.
fn arb_pool_path() -> impl Strategy<Value = String> {
    let qual = prop_oneof![
        (0..POOL.len()).prop_map(|l| format!("[{}]", POOL[l])),
        (0..POOL.len()).prop_map(|l| format!("[{} = '10']", POOL[l])),
        Just("[. = '10']".to_string()),
        (0..POOL.len()).prop_map(|l| format!("[not({})]", POOL[l])),
        (0..POOL.len()).prop_map(|l| format!("[{} < 15]", POOL[l])),
    ];
    let step =
        ((0..POOL.len()), proptest::option::of(qual), prop::bool::ANY).prop_map(|(l, q, desc)| {
            let axis = if desc { "//" } else { "/" };
            match q {
                Some(q) => format!("{axis}{}{q}", POOL[l]),
                None => format!("{axis}{}", POOL[l]),
            }
        });
    prop::collection::vec(step, 1..4).prop_map(|steps| {
        let joined: String = steps.concat();
        // Paths are root-relative: strip the leading '/' unless the
        // first step is a descendant one.
        joined
            .strip_prefix('/')
            .filter(|rest| !rest.starts_with('/'))
            .map(str::to_string)
            .unwrap_or(joined)
    })
}

/// Every element label appearing in `doc`, by scanning its serialized
/// form for start tags.
fn doc_labels(doc: &Document) -> Vec<String> {
    let xml = doc.serialize();
    let mut labels = std::collections::BTreeSet::new();
    let bytes = xml.as_bytes();
    let mut i = 0;
    while let Some(pos) = xml[i..].find('<') {
        let at = i + pos + 1;
        if at < bytes.len() && bytes[at] != b'/' {
            let end = xml[at..]
                .find([' ', '>', '/'])
                .map(|e| at + e)
                .unwrap_or(xml.len());
            if at < end {
                labels.insert(xml[at..end].to_string());
            }
        }
        i = at;
    }
    labels.into_iter().collect()
}

/// Renames every element whose label is in `labels` to `zz<label>`,
/// using the engine's own update primitives.
fn relabel(doc: &mut Document, labels: &[String]) {
    for l in labels {
        let path = parse_path(&format!("//{l}")).expect("label path parses");
        let targets = eval_path_root(doc, &path);
        if targets.is_empty() {
            continue;
        }
        let q = TransformQuery::rename("d", path, format!("zz{l}"));
        apply_update(doc, &targets, &q.op);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Relabeling outside the collected alphabet commutes with
    /// evaluation: `eval(relabel(D)) == relabel(eval(D))`.
    #[test]
    fn collect_alphabet_covers_every_consulted_label(
        seed in 0u64..16,
        path_text in arb_pool_path(),
    ) {
        let path = parse_path(&path_text).expect("generated path parses");
        let mut alphabet = LabelSet::new();
        SelectingNfa::new(&path).collect_alphabet(&mut alphabet);
        FilteringNfa::new(&path).collect_alphabet(&mut alphabet);
        prop_assert!(!alphabet.has_wildcard(), "no wildcard steps generated");

        let doc = spiked_xmark(seed);
        let outside: Vec<String> = doc_labels(&doc)
            .into_iter()
            .filter(|l| !alphabet.contains(intern(l)))
            .collect();

        let q = TransformQuery::delete("d", path);
        // relabel(eval(D)): evaluate on the original, then rename.
        let mut evaluated_first = evaluate(&doc, &q, Method::TwoPass).unwrap();
        relabel(&mut evaluated_first, &outside);
        // eval(relabel(D)): rename the document, then evaluate.
        let mut relabeled = doc.clone();
        relabel(&mut relabeled, &outside);
        let relabeled_first = evaluate(&relabeled, &q, Method::TwoPass).unwrap();

        prop_assert_eq!(
            evaluated_first.serialize(),
            relabeled_first.serialize(),
            "path {} consulted a label outside its collected alphabet \
             (renamed: {:?})",
            path_text,
            outside
        );
    }
}

// ---------------------------------------------------------------------
// Layer 2: static-vs-dynamic differential fuzzer
// ---------------------------------------------------------------------

/// Registered views: two rename views (statically bounded footprints —
/// the shapes the commutation table can clear) and two delete views
/// (unbounded footprints — static must always defer to dynamic).
const VIEWS: [(&str, &str); 4] = [
    (
        "member",
        r#"transform copy $a := doc("xmark") modify do rename $a//part as member return $a"#,
    ),
    (
        "kwx",
        r#"transform copy $a := doc("xmark") modify do rename $a//keyword as kw return $a"#,
    ),
    (
        "nosc",
        r#"transform copy $a := doc("xmark") modify do delete $a//sc return $a"#,
    ),
    (
        "cheap",
        r#"transform copy $a := doc("xmark") modify do delete $a//bidder[increase > 5] return $a"#,
    ),
];

/// The fuzz pool: anchored spike inserts (statically clearable),
/// descendant inserts (bounded fragment, unbounded anchor), spike and
/// XMark renames, and deletes (never statically clearable).
const WRITE_POOL: [&str; 8] = [
    r#"insert <sx><t>v</t></sx> into $a/site/spike-zone/sb"#,
    r#"insert <sx/> into $a//spike-zone/sb"#,
    r#"insert <keyword>k</keyword> into $a/site/spike-zone/sa"#,
    r#"rename $a//zap as zz"#,
    r#"rename $a//emph as em"#,
    r#"rename $a//part as unit"#,
    r#"delete $a//sc[. = '10']"#,
    r#"delete $a//zap"#,
];

fn update_text(body: &str) -> String {
    format!(r#"transform copy $a := doc("xmark") modify do {body} return $a"#)
}

/// Full single-link recompute oracle.
fn recompute_view(base: &Document, link: &str) -> String {
    let q = parse_transform(link).unwrap();
    evaluate(base, &q, Method::TwoPass).unwrap().serialize()
}

fn apply_to_reference(reference: &mut Document, update: &str) {
    let mq = parse_multi_transform(update).unwrap();
    for (path, op) in &mq.updates {
        let targets = eval_path_root(reference, path);
        apply_update(reference, &targets, op);
    }
}

/// Re-derives the static commutation verdict for one registered view
/// against one update text, from first principles — the same inputs the
/// server feeds [`statically_commutes`], recomputed independently.
fn external_verdict(view_link: &str, update: &str) -> bool {
    let q = parse_transform(view_link).unwrap();
    let rules = [(q.path.clone(), q.op.clone())];
    let analysis = analyze_view(rules.iter().map(|(p, o)| (p, o)));
    let alphabet = CompiledTransform::parse(view_link)
        .unwrap()
        .alphabet()
        .clone();

    let mq = parse_multi_transform(update).unwrap();
    let mut class = classify_update(mq.updates.iter().map(|(p, o)| (p, o)));
    let mut alpha = LabelSet::new();
    let mut vals = LabelSet::new();
    for (path, op) in &mq.updates {
        alpha.union_with(&update_alphabet(path, op));
        value_alphabet_into(path, &mut vals);
    }
    class.alphabet = alpha;
    class.values = vals;
    statically_commutes(&alphabet, &analysis.footprint, &class)
}

/// Pulls `retained=R recomputed=C static=S` out of an UPDATE body.
fn parse_counts(body: &str) -> (u64, u64, u64) {
    let grab = |key: &str| -> u64 {
        let tail = &body[body.find(key).unwrap_or_else(|| panic!("{key} in {body}")) + key.len()..];
        tail.split_whitespace().next().unwrap().parse().unwrap()
    };
    (grab("retained="), grab("recomputed="), grab("static="))
}

fn view_delta_map(server: &Server) -> std::collections::HashMap<String, (u64, u64)> {
    server
        .stats()
        .view_delta
        .iter()
        .map(|(v, r, _p, c)| (v.clone(), (*r, *c)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// For every fuzzed write: the static verdict is never more
    /// permissive than the dynamic test (a statically-cleared view is
    /// never recomputed, and the reported `static=` count is bounded by
    /// the external re-derivation), and every served view stays
    /// byte-identical to full recompute.
    #[test]
    fn static_verdicts_agree_with_or_defer_to_dynamic(
        seed in 0u64..16,
        picks in prop::collection::vec(0..WRITE_POOL.len(), 1..5),
    ) {
        let base = spiked_xmark(seed);
        let server = Server::builder().threads(1).shards(1).build();
        server.load_doc("xmark", base.clone());
        for (name, link) in VIEWS {
            server.register_view(name, link).unwrap();
        }
        let mut reference = base.clone();
        for (round, &pick) in picks.iter().enumerate() {
            // (Re-)warm every entry so each write has all views to judge.
            for (name, link) in VIEWS {
                let served = server
                    .handle(&Request::View { view: name.into(), doc: "xmark".into() })
                    .unwrap()
                    .body;
                prop_assert_eq!(&served, &recompute_view(&reference, link));
            }
            let text = update_text(WRITE_POOL[pick]);
            let verdicts: Vec<(&str, bool)> = VIEWS
                .iter()
                .map(|(name, link)| (*name, external_verdict(link, &text)))
                .collect();
            let before = view_delta_map(&server);
            let static_before = server.stats().static_retained;

            let resp = server.update_doc("xmark", &text).unwrap();
            apply_to_reference(&mut reference, &text);

            let (retained, _recomputed, statics) = parse_counts(&resp.body);
            let cleared = verdicts.iter().filter(|(_, v)| *v).count() as u64;
            // Static never exceeds what the analysis itself allows, and
            // every static retain is also a (dynamic-grade) retain.
            prop_assert!(
                statics <= cleared,
                "round {}: write {:?} reported static={} but only {} views \
                 statically commute", round, WRITE_POOL[pick], statics, cleared
            );
            prop_assert!(statics <= retained, "static is a subset of retained");
            prop_assert_eq!(
                server.stats().static_retained - static_before,
                statics,
                "the static_retained counter must track the response body"
            );
            // Agreement: a statically-cleared view is never recomputed.
            let after = view_delta_map(&server);
            for (name, verdict) in &verdicts {
                if !verdict { continue; }
                let (_, c0) = before.get(*name).copied().unwrap_or((0, 0));
                let (r1, c1) = after.get(*name).copied().unwrap_or((0, 0));
                prop_assert_eq!(
                    c1, c0,
                    "round {}: view '{}' statically commutes with {:?} but was \
                     recomputed (dynamic disagreed with static)",
                    round, name, WRITE_POOL[pick]
                );
                prop_assert!(r1 > 0, "the cleared view's entry was retained");
            }
            // Served results stay byte-identical to full recompute.
            for (name, link) in VIEWS {
                let served = server
                    .handle(&Request::View { view: name.into(), doc: "xmark".into() })
                    .unwrap()
                    .body;
                prop_assert_eq!(
                    &served,
                    &recompute_view(&reference, link),
                    "round {}: view '{}' diverged after {:?}",
                    round, name, WRITE_POOL[pick]
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic companions
// ---------------------------------------------------------------------

/// Anchored disjoint inserts resolve through the static table; a
/// retained rename drifts the entries, after which static must stand
/// down (conservatism) while dynamic retention still fires.
#[test]
fn static_clear_fires_then_defers_after_drift() {
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc("xmark", spiked_xmark(3));
    server.register_view("member", VIEWS[0].1).unwrap();
    server.register_view("kwx", VIEWS[1].1).unwrap();
    for name in ["member", "kwx"] {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
    }
    let insert = update_text(r#"insert <sx/> into $a/site/spike-zone/sb"#);
    let rename = update_text(r#"rename $a//zap as zz"#);

    // Fresh entries: the anchored insert is statically clear for both.
    let resp = server.update_doc("xmark", &insert).unwrap();
    assert_eq!(parse_counts(&resp.body), (2, 0, 2), "{}", resp.body);
    // Inserts do not drift the maintained bodies: static fires again.
    let resp = server.update_doc("xmark", &insert).unwrap();
    assert_eq!(parse_counts(&resp.body), (2, 0, 2), "{}", resp.body);
    // The rename is also statically clear — but applying it to the
    // cached bodies marks them drifted.
    let resp = server.update_doc("xmark", &rename).unwrap();
    assert_eq!(parse_counts(&resp.body), (2, 0, 2), "{}", resp.body);
    // Drifted entries: static stands down, dynamic still retains.
    let resp = server.update_doc("xmark", &insert).unwrap();
    assert_eq!(
        parse_counts(&resp.body),
        (2, 0, 0),
        "drifted entries must fall back to the dynamic test: {}",
        resp.body
    );
    let stats = server.stats();
    assert_eq!(stats.delta_retained, 8);
    assert_eq!(stats.static_retained, 6);
    assert_eq!(stats.delta_recomputed, 0);
    // The exposition surfaces report the split.
    assert!(stats.to_string().contains("static_retained=6"));
    let metrics = server.metrics();
    assert!(
        metrics.contains("static_retained_total 6"),
        "METRICS must carry the static counter: {metrics}"
    );
}

/// A statically dead view (unsatisfiable qualifier) is rejected from
/// evaluation entirely: it serves the base document, occupies no cache
/// entry, and never participates in write maintenance.
#[test]
fn dead_views_serve_base_without_caching_or_maintenance() {
    const XML: &str = "<db><part><price>9</price></part></db>";
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", XML).unwrap();
    server
        .register_view(
            "deadv",
            r#"transform copy $a := doc("db") modify do delete $a/db[label() = nope]//part return $a"#,
        )
        .unwrap();
    let analysis = server.analyze("deadv").unwrap().to_string();
    assert!(analysis.contains("dead=true"), "{analysis}");

    let served = server
        .handle(&Request::View {
            view: "deadv".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(served.body, XML, "a dead view is the identity transform");
    assert_eq!(
        server.view_results().len(),
        0,
        "dead views must not occupy result-cache entries"
    );
    // A write has nothing of the dead view's to maintain or recompute.
    let resp = server
        .update_doc(
            "db",
            r#"transform copy $a := doc("db") modify do insert <k/> into $a/db/part return $a"#,
        )
        .unwrap();
    assert_eq!(parse_counts(&resp.body), (0, 0, 0), "{}", resp.body);
    // And it still serves the (new) base afterwards.
    let served = server
        .handle(&Request::View {
            view: "deadv".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(served.body, "<db><part><price>9</price><k/></part></db>");
}

/// Two syntactically different but provably equivalent views share one
/// result-cache entry family: the second serve is a cache hit on the
/// first's entry.
#[test]
fn equivalent_views_share_one_cache_entry_family() {
    const XML: &str = "<db><part><price>9</price></part><part/></db>";
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", XML).unwrap();
    // v2's qualifier folds to a tautology, making it equivalent to v1.
    server
        .register_view(
            "v1",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
        )
        .unwrap();
    server
        .register_view(
            "v2",
            r#"transform copy $a := doc("db") modify do delete $a//price[label() = price] return $a"#,
        )
        .unwrap();
    let a2 = server.analyze("v2").unwrap().to_string();
    assert!(
        a2.contains("family: key=v1") && a2.contains("members=2"),
        "v2 must join v1's cache family: {a2}"
    );

    // Warm via v1 (one result-cache miss), then serve v2 from the same
    // entry (a hit, no further miss).
    let misses_start = server.stats().result_misses;
    let hits_start = server.stats().result_hits;
    let first = server
        .handle(&Request::View {
            view: "v1".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(server.stats().result_misses, misses_start + 1);
    let second = server
        .handle(&Request::View {
            view: "v2".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(
        server.stats().result_hits,
        hits_start + 1,
        "equivalent view must hit the shared entry"
    );
    assert_eq!(server.stats().result_misses, misses_start + 1);
    assert_eq!(first.body, second.body);
    assert_eq!(first.body, "<db><part/><part/></db>");
    assert_eq!(
        server.view_results().len(),
        1,
        "one family, one materialization"
    );
}
