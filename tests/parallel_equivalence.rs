//! Differential hardening of the sharded/parallel evaluation path:
//!
//! * parallel sharded batches through `xust-serve` must agree
//!   **byte-for-byte** with sequential `two_pass` and with `copy_update`
//!   on randomized documents, queries, and update kinds, for shard
//!   counts {1, 2, 8};
//! * the core work-stealing executor must agree with per-document
//!   sequential evaluation;
//! * a streaming session's peak allocation must stay O(depth · |p|) —
//!   far below the document size — asserted with a per-thread
//!   peak-allocation counter installed as the global allocator.

mod common;

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::io::Read;

use common::{arb_doc, arb_op, arb_path, build_query, build_query_text};
use proptest::prelude::*;

use xust::core::{evaluate, multi_snapshot, multi_top_down_batch, Method, MultiTransformQuery};
use xust::sax::SaxParser;
use xust::serve::{Request, Server};
use xust::tree::Document;
use xust::xpath::parse_path;

// ---- per-thread peak-allocation counter ----
//
// Only threads that opt in (the memory test) are measured, so the other
// tests in this binary can run concurrently without polluting the peak.

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static CURRENT: Cell<isize> = const { Cell::new(0) };
    static PEAK: Cell<isize> = const { Cell::new(0) };
}

struct PeakCounting;

unsafe impl GlobalAlloc for PeakCounting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let _ = TRACKING.try_with(|t| {
                if t.get() {
                    let _ = CURRENT.try_with(|c| {
                        let now = c.get() + layout.size() as isize;
                        c.set(now);
                        let _ = PEAK.try_with(|pk| pk.set(pk.get().max(now)));
                    });
                }
            });
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                let _ = CURRENT.try_with(|c| c.set(c.get() - layout.size() as isize));
            }
        });
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: PeakCounting = PeakCounting;

/// Runs `f` with this thread's allocations tracked; returns `(result,
/// peak_net_bytes)` — the high-water mark of net allocation inside `f`.
fn measure_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    TRACKING.with(|t| t.set(true));
    CURRENT.with(|c| c.set(0));
    PEAK.with(|p| p.set(0));
    let r = f();
    TRACKING.with(|t| t.set(false));
    let peak = PEAK.with(|p| p.get());
    (r, peak.max(0) as usize)
}

// ---- parallel sharded evaluation vs sequential references ----

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: whatever shard count the store uses and
    /// however the batch lands on the work-stealing workers, every
    /// response body is byte-identical to sequential `two_pass` AND to
    /// `copy_update` on the same document.
    #[test]
    fn sharded_batches_agree_with_sequential_references(
        docs in prop::collection::vec(arb_doc(), 1..5),
        path in arb_path(),
        op in arb_op(),
    ) {
        let q = build_query(&path, op);
        let query_text = build_query_text("db", &path, op);
        let two_pass: Vec<String> = docs
            .iter()
            .map(|d| evaluate(d, &q, Method::TwoPass).unwrap().serialize())
            .collect();
        let copy_update: Vec<String> = docs
            .iter()
            .map(|d| evaluate(d, &q, Method::CopyUpdate).unwrap().serialize())
            .collect();
        prop_assert_eq!(&two_pass, &copy_update, "references disagree (core bug)");

        for shards in SHARD_COUNTS {
            let server = Server::builder().threads(4).shards(shards).build();
            for (i, d) in docs.iter().enumerate() {
                server.load_doc(format!("doc{i}"), d.clone());
            }
            // Duplicate each request so work overlaps across workers.
            let batch: Vec<Request> = (0..docs.len() * 2)
                .map(|i| Request::Transform {
                    doc: format!("doc{}", i % docs.len()),
                    query: query_text.clone(),
                })
                .collect();
            let results = server.execute_batch(batch);
            for (i, r) in results.iter().enumerate() {
                let body = &r.as_ref().unwrap_or_else(|e| {
                    panic!("shards={shards} item {i} failed: {e} (query: {query_text})")
                }).body;
                prop_assert_eq!(
                    body,
                    &two_pass[i % docs.len()],
                    "shards={} item {} deviates from sequential two_pass for {} over {}",
                    shards,
                    i,
                    query_text,
                    docs[i % docs.len()].serialize()
                );
            }
            prop_assert_eq!(server.store().active_snapshots(), 0);
        }
    }

    /// The core work-stealing executor agrees with sequential
    /// per-document evaluation (snapshot-semantics reference).
    #[test]
    fn core_batch_executor_agrees_with_sequential(
        docs in prop::collection::vec(arb_doc(), 1..6),
        path in arb_path(),
        op in arb_op(),
    ) {
        let q = build_query(&path, op);
        let mq = MultiTransformQuery::new("d", vec![(q.path.clone(), q.op.clone())]);
        let refs: Vec<&Document> = docs.iter().collect();
        for threads in [1, 4] {
            let batch = multi_top_down_batch(&refs, &mq, threads);
            for (i, d) in docs.iter().enumerate() {
                let expect = multi_snapshot(d, &mq).serialize();
                prop_assert_eq!(
                    batch[i].serialize(),
                    expect,
                    "threads={} doc {} deviates",
                    threads,
                    i
                );
            }
        }
    }
}

/// Updates through the store are visible to later batches while earlier
/// snapshots stay consistent — the epoch behaviour the differential
/// harness relies on.
#[test]
fn parallel_batches_resolve_syms_identically() {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use xust::core::Sym;

    // Two servers with different shard layouts share ONE concurrent
    // interner (the process-global table) across all shards and
    // snapshots — that is what makes a `Sym` meaningful across batch
    // workers.
    let server1 = Server::builder().threads(4).shards(1).build();
    let server8 = Server::builder().threads(4).shards(8).build();
    assert!(
        std::ptr::eq(server1.store().interner(), server8.store().interner()),
        "DocStores must share one interner"
    );

    let xml =
        "<db><part><pname>kb</pname><price>9</price></part><part><pname>m</pname></part></db>";
    for s in [&server1, &server8] {
        for i in 0..6 {
            s.load_doc_str(format!("doc{i}"), xml).unwrap();
        }
    }
    let query = r#"transform copy $a := doc("db") modify do rename $a//part as widget return $a"#;

    // Several threads per server fan batches out over the shards; every
    // element label in every response must resolve to the same Sym.
    let maps: Mutex<Vec<HashMap<&'static str, Sym>>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for server in [&server1, &server8] {
            for _ in 0..3 {
                let maps = &maps;
                scope.spawn(move || {
                    let batch: Vec<Request> = (0..6)
                        .map(|i| Request::Transform {
                            doc: format!("doc{i}"),
                            query: query.to_string(),
                        })
                        .collect();
                    let mut map: HashMap<&'static str, Sym> = HashMap::new();
                    for r in server.execute_batch(batch) {
                        let body = r.expect("batch item served").body;
                        let d = Document::parse(&body).expect("response parses");
                        for n in d.descendants_or_self(d.root().unwrap()) {
                            if let Some(sym) = d.name_sym(n) {
                                if let Some(prev) = map.insert(sym.as_str(), sym) {
                                    assert_eq!(prev, sym, "one thread saw two Syms for a label");
                                }
                            }
                        }
                    }
                    maps.lock().unwrap().push(map);
                });
            }
        }
    });

    let maps = maps.into_inner().unwrap();
    assert_eq!(maps.len(), 6);
    let interner = server1.store().interner();
    for map in &maps {
        assert!(map.contains_key("widget"), "rename must have applied");
        for (label, sym) in map {
            // Every thread's resolution matches the shared table…
            assert_eq!(interner.lookup(label), Some(*sym), "label {label}");
        }
    }
    // …and therefore each other's.
    for pair in maps.windows(2) {
        for (label, sym) in &pair[0] {
            if let Some(other) = pair[1].get(label) {
                assert_eq!(sym, other, "threads disagree on {label}");
            }
        }
    }
}

#[test]
fn batches_see_a_consistent_world_across_updates() {
    let server = Server::builder().threads(4).shards(8).build();
    for round in 0..5u32 {
        let xml = format!("<r><a><b>{round}</b></a></r>");
        server.load_doc_str("db", &xml).unwrap();
        let expect = evaluate(
            &Document::parse(&xml).unwrap(),
            &build_query("r/a", 3),
            Method::TwoPass,
        )
        .unwrap()
        .serialize();
        let batch: Vec<Request> = (0..8)
            .map(|_| Request::Transform {
                doc: "db".into(),
                query: build_query_text("db", "r/a", 3),
            })
            .collect();
        for r in server.execute_batch(batch) {
            assert_eq!(r.unwrap().body, expect, "round {round}");
        }
    }
    assert_eq!(server.store().active_snapshots(), 0);
}

// ---- streaming session memory bound ----

/// Synthesizes a wide, shallow document (`<db><p><v>i</v></p>…</db>`) on
/// the fly: the input never exists in memory, so any document-sized
/// allocation must come from the code under test.
struct WideXml {
    next: usize,
    total: usize,
    pending: Vec<u8>,
    offset: usize,
    stage: u8, // 0 = prologue, 1 = items, 2 = epilogue, 3 = done
}

impl WideXml {
    fn new(total: usize) -> WideXml {
        WideXml {
            next: 0,
            total,
            pending: Vec::new(),
            offset: 0,
            stage: 0,
        }
    }

    /// Total bytes this generator will produce.
    fn len(total: usize) -> usize {
        let mut n = 0usize;
        let mut gen = WideXml::new(total);
        let mut buf = [0u8; 4096];
        loop {
            let k = gen.read(&mut buf).unwrap();
            if k == 0 {
                return n;
            }
            n += k;
        }
    }

    fn refill(&mut self) {
        self.pending.clear();
        self.offset = 0;
        match self.stage {
            0 => {
                self.pending.extend_from_slice(b"<db>");
                self.stage = 1;
            }
            1 => {
                if self.next < self.total {
                    self.pending
                        .extend_from_slice(format!("<p><v>{}</v></p>", self.next).as_bytes());
                    self.next += 1;
                } else {
                    self.pending.extend_from_slice(b"</db>");
                    self.stage = 2;
                }
            }
            _ => self.stage = 3,
        }
    }
}

impl Read for WideXml {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.offset >= self.pending.len() {
            if self.stage >= 2 {
                self.stage = 3;
                return Ok(0);
            }
            self.refill();
        }
        let n = (self.pending.len() - self.offset).min(out.len());
        out[..n].copy_from_slice(&self.pending[self.offset..self.offset + n]);
        self.offset += n;
        Ok(n)
    }
}

/// Acceptance: streaming-session memory is O(depth · |p|) — the peak
/// net allocation while transforming a multi-megabyte document stays
/// bounded by parser buffers (~128 KiB), orders of magnitude below the
/// document, which is never materialized.
#[test]
fn streaming_session_memory_stays_sublinear() {
    const ITEMS: usize = 250_000;
    let doc_bytes = WideXml::len(ITEMS);
    assert!(doc_bytes > 4 << 20, "need a multi-MB document: {doc_bytes}");

    let server = Server::new();
    let query = r#"transform copy $a := doc("db") modify do delete $a//v return $a"#;
    let ((), peak) = measure_peak(|| {
        let mut session = server.begin_stream(query).unwrap();
        let mut p = SaxParser::from_reader(WideXml::new(ITEMS));
        while let Some(ev) = p.next_event().unwrap() {
            session.feed(ev).unwrap();
        }
        session.begin_replay().unwrap();
        drop(p);
        let mut emitted = 0usize;
        let mut p = SaxParser::from_reader(WideXml::new(ITEMS));
        while let Some(ev) = p.next_event().unwrap() {
            // Drain each chunk immediately, as a network client would.
            emitted += session.replay(ev).unwrap().len();
        }
        let (tail, stats) = session.finish().unwrap();
        emitted += tail.len();
        // Every item survives as `<p/>` (4 bytes) after its `v` child
        // is deleted.
        assert!(
            emitted > ITEMS * 4,
            "output was actually produced: {emitted}"
        );
        assert_eq!(stats.elements as usize, 2 * ITEMS + 1);
        assert_eq!(stats.max_depth, 3, "wide document stays shallow");
    });
    assert!(
        peak < 2 << 20,
        "session peak allocation {peak} B is not O(depth·|p|) for a {doc_bytes} B document"
    );
    assert!(
        peak * 2 < doc_bytes,
        "session peak {peak} B not sublinear in document size {doc_bytes} B"
    );
    assert_eq!(server.store().active_snapshots(), 0);
}

/// The same differential check through the streaming session: its output
/// matches sequential `two_pass` byte-for-byte on a structured document.
#[test]
fn streaming_session_agrees_with_two_pass() {
    let xml = {
        let mut s = String::from("<r>");
        for i in 0..200 {
            s.push_str(&format!(
                "<a id=\"i{i}\"><b>{}</b><c>t{i}</c></a>",
                10 + (i % 20)
            ));
        }
        s.push_str("</r>");
        s
    };
    let doc = Document::parse(&xml).unwrap();
    for (path, op) in [
        ("//b[. = '15']", 0u8),
        ("r/a", 6),
        ("//c", 3),
        ("//a[b < 15]", 2),
    ] {
        let q = build_query(path, op);
        let expect = evaluate(&doc, &q, Method::TwoPass).unwrap().serialize();
        let _ = parse_path(path).unwrap();

        let server = Server::new();
        let mut session = server
            .begin_stream(&build_query_text("db", path, op))
            .unwrap();
        let mut p = SaxParser::from_str(&xml);
        while let Some(ev) = p.next_event().unwrap() {
            session.feed(ev).unwrap();
        }
        session.begin_replay().unwrap();
        let mut out = Vec::new();
        let mut p = SaxParser::from_str(&xml);
        while let Some(ev) = p.next_event().unwrap() {
            out.extend(session.replay(ev).unwrap());
        }
        let (tail, _) = session.finish().unwrap();
        out.extend(tail);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            expect,
            "session deviates on {path} op {op}"
        );
    }
}
