//! Loader for the golden corpus under `tests/golden/`.
//!
//! Each case directory holds `input.xml`, `query.txt` (one transform
//! query), and `expected.xml` — the output every evaluation method must
//! produce. Golden files turn a method regression into a readable diff
//! against a checked-in artifact, instead of a property-shrink trace.
#![allow(dead_code)]

use std::path::PathBuf;

/// One checked-in golden case.
pub struct GoldenCase {
    /// Directory name (used in failure messages).
    pub name: String,
    /// The source document.
    pub input: String,
    /// The transform query.
    pub query: String,
    /// The expected serialized output.
    pub expected: String,
}

/// Loads every case under `tests/golden/`, sorted by name. Panics on a
/// malformed corpus (missing file, unreadable directory) — a broken
/// checkout should fail loudly, not skip cases.
pub fn load_cases() -> Vec<GoldenCase> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut cases: Vec<GoldenCase> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("{}: {e}", root.display()))
        .map(|entry| {
            let dir = entry.expect("golden dir entry").path();
            let read = |file: &str| {
                std::fs::read_to_string(dir.join(file))
                    .unwrap_or_else(|e| panic!("{}/{file}: {e}", dir.display()))
                    .trim_end()
                    .to_string()
            };
            GoldenCase {
                name: dir
                    .file_name()
                    .expect("case dir has a name")
                    .to_string_lossy()
                    .into_owned(),
                input: read("input.xml"),
                query: read("query.txt"),
                expected: read("expected.xml"),
            }
        })
        .collect();
    assert!(!cases.is_empty(), "golden corpus is empty");
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    cases
}

/// A readable diff for serialized XML (typically one long line): points
/// at the first divergent byte with context windows on both sides.
pub fn diff(expected: &str, got: &str) -> String {
    if expected == got {
        return "identical".into();
    }
    let common = expected
        .bytes()
        .zip(got.bytes())
        .take_while(|(a, b)| a == b)
        .count();
    let window = |s: &str| {
        let start = common.saturating_sub(30);
        let end = (common + 40).min(s.len());
        // Keep char boundaries (XML here is ASCII, but stay safe).
        let start = (start..=common)
            .find(|&i| s.is_char_boundary(i))
            .unwrap_or(0);
        let end = (end..s.len() + 1)
            .find(|&i| s.is_char_boundary(i))
            .unwrap_or(s.len());
        s[start..end].to_string()
    };
    format!(
        "first divergence at byte {common}\n  expected …{}…\n  got      …{}…",
        window(expected),
        window(got)
    )
}
