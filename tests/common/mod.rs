//! Shared randomized-input generators for the differential test suites
//! (`tests/equivalence.rs`, `tests/parallel_equivalence.rs`): random
//! documents over a small label alphabet, random X paths, and random
//! update kinds, in both programmatic ([`build_query`]) and concrete
//! textual ([`build_query_text`]) form.
#![allow(dead_code)]

pub mod golden;

use proptest::prelude::*;

use xust::core::{InsertPos, TransformQuery};
use xust::tree::{Document, ElementBuilder};
use xust::xpath::parse_path;

/// A small alphabet keeps collision probability high, which is what
/// stresses the automata (shared labels between path and data).
pub const LABELS: [&str; 4] = ["a", "b", "c", "d"];
pub const TEXTS: [&str; 4] = ["x", "10", "20", "A"];

pub fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), proptest::option::of(0..TEXTS.len())).prop_map(|(l, t)| {
        let mut b = ElementBuilder::new(LABELS[l]);
        if let Some(t) = t {
            b = b.text(TEXTS[t]);
        }
        b
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            0..LABELS.len(),
            proptest::option::of((0..2usize, 0..TEXTS.len())),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(l, attr, children)| {
                let mut b = ElementBuilder::new(LABELS[l]);
                if let Some((k, v)) = attr {
                    b = b.attr(["id", "k"][k], TEXTS[v]);
                }
                for c in children {
                    b = b.child(c);
                }
                b
            })
    })
}

pub fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| {
        // Fixed root label so absolute paths can hit it.
        ElementBuilder::new("r").child(b).build_document()
    })
}

/// Random X paths over the same alphabet.
pub fn arb_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..LABELS.len()).prop_map(|l| LABELS[l].to_string()),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        (0..LABELS.len()).prop_map(|l| format!("[{}]", LABELS[l])),
        (0..LABELS.len(), 0..TEXTS.len())
            .prop_map(|(l, t)| format!("[{} = '{}']", LABELS[l], TEXTS[t])),
        (0..TEXTS.len()).prop_map(|t| format!("[. = '{}']", TEXTS[t])),
        (0..LABELS.len()).prop_map(|l| format!("[not({})]", LABELS[l])),
        (0..LABELS.len(), 0..LABELS.len())
            .prop_map(|(l, m)| format!("[{} or {}]", LABELS[l], LABELS[m])),
        (0..LABELS.len()).prop_map(|l| format!("[{} < 15]", LABELS[l])),
        Just("[@id = 'x']".to_string()),
    ];
    let qstep = (step, proptest::option::of(qual)).prop_map(|(s, q)| match q {
        Some(q) => format!("{s}{q}"),
        None => s,
    });
    (
        prop::collection::vec((qstep, prop::bool::ANY), 1..4),
        prop::bool::ANY,
    )
        .prop_map(|(steps, lead_desc)| {
            let mut out = String::from(if lead_desc { "//" } else { "r/" });
            for (i, (s, desc)) in steps.iter().enumerate() {
                if i > 0 {
                    out.push_str(if *desc { "//" } else { "/" });
                }
                out.push_str(s);
            }
            out
        })
}

/// 0=delete 1=insert-into 2=replace 3=rename 4=insert-first
/// 5=insert-before 6=insert-after.
pub fn arb_op() -> impl Strategy<Value = u8> {
    0u8..7
}

/// The constant element spliced in by insert/replace ops.
pub const INS_ELEM: &str = "<ins k=\"1\"><t>v</t></ins>";

pub fn build_query(path: &str, op: u8) -> TransformQuery {
    let p = parse_path(path).expect("generated paths are valid");
    let e = Document::parse(INS_ELEM).unwrap();
    match op {
        0 => TransformQuery::delete("d", p),
        1 => TransformQuery::insert("d", p, e),
        2 => TransformQuery::replace("d", p, e),
        3 => TransformQuery::rename("d", p, "rn"),
        4 => TransformQuery::insert_at("d", p, e, InsertPos::FirstInto),
        5 => TransformQuery::insert_at("d", p, e, InsertPos::Before),
        _ => TransformQuery::insert_at("d", p, e, InsertPos::After),
    }
}

/// The same query in concrete transform syntax, as a service client
/// would send it. `doc_name` lands inside `doc("…")`; the generated
/// path is grafted onto `$a`. Renames mint the fixed label `rn`; use
/// [`build_query_text_renaming`] to pick the new name.
pub fn build_query_text(doc_name: &str, path: &str, op: u8) -> String {
    build_query_text_renaming(doc_name, path, op, "rn")
}

/// [`build_query_text`] with the rename target name as a parameter
/// (ignored for non-rename ops) — lets fuzzers mint names that other
/// generated paths and qualifiers actually read.
pub fn build_query_text_renaming(doc_name: &str, path: &str, op: u8, rename_name: &str) -> String {
    let anchored = if let Some(rest) = path.strip_prefix("//") {
        format!("$a//{rest}")
    } else {
        format!("$a/{path}")
    };
    let update = match op {
        0 => format!("delete {anchored}"),
        1 => format!("insert {INS_ELEM} into {anchored}"),
        2 => format!("replace {anchored} with {INS_ELEM}"),
        3 => format!("rename {anchored} as {rename_name}"),
        4 => format!("insert {INS_ELEM} as first into {anchored}"),
        5 => format!("insert {INS_ELEM} before {anchored}"),
        _ => format!("insert {INS_ELEM} after {anchored}"),
    };
    format!(r#"transform copy $a := doc("{doc_name}") modify do {update} return $a"#)
}
