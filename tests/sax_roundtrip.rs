//! SAX layer invariants: parse→serialize roundtrips, event-stream
//! equivalence with the DOM, and escaping correctness on hostile text.

use proptest::prelude::*;

use xust::sax::{events_to_string, SaxEvent, SaxParser};
use xust::tree::{docs_eq, Document, ElementBuilder};

const LABELS: [&str; 4] = ["a", "b", "long-name.x", "_u"];
// Texts that force escaping and whitespace handling — including CR/LF/
// tab content, which the writer must protect with character references
// so the reader's XML 1.0 §2.11/§3.3.3 normalization cannot corrupt a
// round-trip.
const TEXTS: [&str; 8] = [
    "plain",
    "a<b",
    "x&y",
    "\"q\" 'p'",
    "  padded  ",
    "2>1",
    "l1\r\nl2\rl3",
    "tab\there\nand newline",
];

fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), proptest::option::of(0..TEXTS.len())).prop_map(|(l, t)| {
        let mut b = ElementBuilder::new(LABELS[l]);
        if let Some(t) = t {
            b = b.text(TEXTS[t]);
        }
        b
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (
            0..LABELS.len(),
            proptest::option::of((0..2usize, 0..TEXTS.len())),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(l, attr, children)| {
                let mut b = ElementBuilder::new(LABELS[l]);
                if let Some((k, v)) = attr {
                    b = b.attr(["k", "id"][k], TEXTS[v]);
                }
                for c in children {
                    b = b.child(c);
                }
                b
            })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| ElementBuilder::new("root").child(b).build_document())
}

/// Collects the SAX events of a serialized document.
fn events_of(xml: &str) -> Vec<SaxEvent> {
    SaxParser::from_str(xml).collect_events().expect("parses")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, .. ProptestConfig::default() })]

    /// serialize ∘ parse = id on the event stream (modulo Start/End
    /// document framing).
    #[test]
    fn serialize_parse_event_fixpoint(doc in arb_doc()) {
        let xml = doc.serialize();
        let events = events_of(&xml);
        // Events re-serialized give back the same bytes.
        let again = events_to_string(&events).expect("serializable");
        prop_assert_eq!(again, xml);
    }

    /// The DOM built from SAX events equals the original document.
    #[test]
    fn dom_roundtrip(doc in arb_doc()) {
        let xml = doc.serialize();
        let reparsed = Document::parse(&xml).expect("well-formed");
        prop_assert!(docs_eq(&doc, &reparsed));
    }

    /// Escaping is involutive: text content and attribute values survive
    /// a full write/read cycle byte-for-byte.
    #[test]
    fn hostile_text_survives(t in prop::sample::select(TEXTS.to_vec()), a in prop::sample::select(TEXTS.to_vec())) {
        let mut d = Document::new();
        let r = d.create_element_with_attrs("r", vec![("k".into(), a.to_string())]);
        let txt = d.create_text(t);
        d.append_child(r, txt);
        d.set_root(r);
        let xml = d.serialize();
        let back = Document::parse(&xml).expect("well-formed");
        let root = back.root().unwrap();
        prop_assert_eq!(back.attr(root, "k"), Some(a));
        prop_assert_eq!(back.immediate_text(root), t);
    }
}

#[test]
fn event_shapes() {
    let events = events_of("<a k=\"v\">hi<b/></a>");
    assert!(matches!(&events[0], SaxEvent::StartDocument));
    assert!(
        matches!(&events[1], SaxEvent::StartElement { name, attrs } if name == "a" && attrs.len() == 1)
    );
    assert!(matches!(&events[2], SaxEvent::Text(t) if t == "hi"));
    assert!(matches!(&events[3], SaxEvent::StartElement { name, .. } if name == "b"));
    assert!(matches!(&events[4], SaxEvent::EndElement(n) if n == "b"));
    assert!(matches!(&events[5], SaxEvent::EndElement(n) if n == "a"));
    assert!(matches!(&events[6], SaxEvent::EndDocument));
}

#[test]
fn whitespace_only_text_preserved() {
    let xml = "<a> <b/> </a>";
    assert_eq!(events_to_string(&events_of(xml)).unwrap(), xml);
}

#[test]
fn crlf_cdata_entity_roundtrip() {
    // One document exercising every §2.11/§3.3.3 normalization case:
    // CRLF and bare CR in text, literal whitespace in attribute values,
    // CDATA with CRLF content, and character references (exempt).
    let xml = "<r a=\"v1\r\nv2\tv3\">line1\r\nline2\rline3<![CDATA[cd\r\nata <&]]>&#13;tail</r>";
    let d1 = Document::parse(xml).unwrap();
    let root = d1.root().unwrap();
    assert_eq!(d1.attr(root, "a"), Some("v1 v2 v3"));
    assert_eq!(
        d1.immediate_text(root),
        "line1\nline2\nline3cd\nata <&\rtail"
    );
    // parse ∘ serialize is an identity from here on.
    let s1 = d1.serialize();
    let d2 = Document::parse(&s1).unwrap();
    assert!(docs_eq(&d1, &d2));
    assert_eq!(d2.serialize(), s1);
}

#[test]
fn crlf_roundtrip_via_events() {
    // CRLF content normalizes on the first parse, then re-serializes to
    // a stable fixpoint (CR protected as a character reference).
    let once = events_to_string(&events_of("<a>x\r\ny</a>")).unwrap();
    assert_eq!(once, "<a>x\ny</a>");
    let twice = events_to_string(&events_of(&once)).unwrap();
    assert_eq!(twice, once);
    // A bare CR that must *survive* (entered via reference).
    let once = events_to_string(&events_of("<a>x&#13;y</a>")).unwrap();
    assert_eq!(once, "<a>x&#13;y</a>");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// parse → serialize → parse is an identity on XMark documents
    /// spiked with CDATA sections, entity references, and CRLF line
    /// endings — the workload shape the serve layer re-parses on every
    /// streamed response.
    #[test]
    fn xmark_parse_serialize_parse_identity(seed in 0u64..1024) {
        let base = xust::xmark::generate_string(
            xust::xmark::XmarkConfig::new(0.0015).with_seed(seed),
        );
        // Splice hostile content into the closing region of the doc so
        // the parser sees CDATA, entities, and CRLF in one pass.
        let tail = "</site>";
        assert!(base.ends_with(tail));
        let spiked = format!(
            "{}<extra note=\"a\r\nb\tc\">one\r\ntwo\rthree<![CDATA[x\r\n<&]]>&#13;&amp;end</extra>{}",
            &base[..base.len() - tail.len()],
            tail
        );
        let d1 = Document::parse(&spiked).expect("spiked xmark parses");
        let s1 = d1.serialize();
        let d2 = Document::parse(&s1).expect("serialized form parses");
        prop_assert!(docs_eq(&d1, &d2), "parse∘serialize is not an identity");
        prop_assert_eq!(d2.serialize(), s1, "serialization is not a fixpoint");
    }
}
