//! Planner correctness property: whatever method the adaptive planner
//! picks — including as its latency model warms up and its exploration
//! turns kick in — the served result must be byte-identical to the
//! NAIVE reference evaluation on random XMark documents.

use proptest::prelude::*;

use xust::core::{evaluate, Method, TransformQuery};
use xust::serve::{Request, Server};
use xust::tree::Document;
use xust::xmark::{generate, XmarkConfig};
use xust::xpath::parse_path;

/// Workload-shaped paths over the XMark schema (subset of Fig. 11 plus
/// shape variants: no qualifier, qualifier, descendant, wildcard).
const PATHS: [&str; 8] = [
    "/site/people/person",
    "/site/people/person[profile/age > 20]",
    "/site/regions//item",
    "/site//description",
    "/site/regions//item[location = \"United States\"]",
    "/site/open_auctions/open_auction[initial > 10]/bidder",
    "/site/*/person",
    "/site/closed_auctions/closed_auction/annotation",
];

fn build_query(path: &str, op: u8) -> TransformQuery {
    let p = parse_path(path).expect("workload paths parse");
    let e = Document::parse("<mark><by>planner</by></mark>").unwrap();
    match op {
        0 => TransformQuery::delete("xmark", p),
        1 => TransformQuery::insert("xmark", p, e),
        2 => TransformQuery::replace("xmark", p, e),
        _ => TransformQuery::rename("xmark", p, "renamed"),
    }
}

fn transform_syntax(path: &str, op: u8) -> String {
    match op {
        0 => format!(r#"transform copy $a := doc("xmark") modify do delete $a{path} return $a"#),
        1 => format!(
            r#"transform copy $a := doc("xmark") modify do insert <mark><by>planner</by></mark> into $a{path} return $a"#
        ),
        2 => format!(
            r#"transform copy $a := doc("xmark") modify do replace $a{path} with <mark><by>planner</by></mark> return $a"#
        ),
        _ => format!(
            r#"transform copy $a := doc("xmark") modify do rename $a{path} as renamed return $a"#
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// Random XMark document (factor × seed), random workload path and
    /// update kind: the server's planner-chosen execution must be
    /// byte-identical to `Method::Naive`, on the first (cold) request
    /// and on warmed-up repeats where the latency feedback and the
    /// exploration schedule may have moved the choice.
    #[test]
    fn planner_choice_is_byte_identical_to_naive(
        factor in prop::sample::select(vec![0.001f64, 0.002, 0.003]),
        seed in 0u64..3,
        path_idx in 0usize..PATHS.len(),
        op in 0u8..4,
    ) {
        let doc = generate(XmarkConfig::new(factor).with_seed(seed));
        let q = build_query(PATHS[path_idx], op);
        let reference = evaluate(&doc, &q, Method::Naive).unwrap().serialize();

        let server = Server::builder().threads(1).build();
        server.load_doc("xmark", doc);
        let request = Request::Transform {
            doc: "xmark".into(),
            query: transform_syntax(PATHS[path_idx], op),
        };
        let mut seen_methods = Vec::new();
        for round in 0..6 {
            let resp = server.handle(&request).unwrap();
            prop_assert_eq!(
                &resp.body,
                &reference,
                "round {} chose {:?} for {} (op {})",
                round,
                resp.method,
                PATHS[path_idx],
                op
            );
            if let Some(m) = resp.method {
                if !seen_methods.contains(&m) {
                    seen_methods.push(m);
                }
            }
        }
        // Sanity: the syntax round-trip really produced the same query.
        let parsed = xust::core::parse_transform(&transform_syntax(PATHS[path_idx], op)).unwrap();
        prop_assert_eq!(parsed.path.to_string(), q.path.to_string());
        // The planner only ever picks real candidates.
        for m in seen_methods {
            prop_assert!(m != Method::NaiveXQuery, "NaiveXQuery is not a serving candidate");
        }
    }
}

#[test]
fn feedback_converges_on_the_observed_fastest_method() {
    use std::time::Duration;
    use xust::core::QueryCost;
    use xust::serve::{AdaptivePlanner, DocShape, PlannerConfig};

    let planner = AdaptivePlanner::new(PlannerConfig {
        explore_every: 0,
        ..PlannerConfig::default()
    });
    let cost = QueryCost::of_path(&parse_path("//item[location = 'x']").unwrap());
    let shape = DocShape::InMemory { nodes: 50_000 };
    // Feed synthetic latencies: TopDown fast, TwoPass slow.
    for _ in 0..10 {
        planner.record(Method::TwoPass, shape, Duration::from_millis(80));
        planner.record(Method::TopDown, shape, Duration::from_millis(8));
    }
    assert_eq!(planner.choose(&cost, shape), Method::TopDown);
    // Reverse the evidence; the EWMA must eventually flip the choice.
    for _ in 0..40 {
        planner.record(Method::TwoPass, shape, Duration::from_millis(2));
        planner.record(Method::TopDown, shape, Duration::from_millis(90));
    }
    assert_eq!(planner.choose(&cost, shape), Method::TwoPass);
}

#[test]
fn streamed_file_requests_match_naive_too() {
    // The file-backed path routes through twoPassSAX; its serialized
    // output must equal the DOM reference byte for byte.
    let xml = {
        let cfg = XmarkConfig::new(0.001).with_seed(11);
        xust::xmark::generate_string(cfg)
    };
    let dir = std::env::temp_dir();
    let path = dir.join("xust_serve_planner_stream.xml");
    std::fs::write(&path, &xml).unwrap();

    let server = Server::builder().threads(1).build();
    server.load_doc_file("xmark", &path).unwrap();
    let q = transform_syntax("/site/people/person[profile/age > 20]", 0);
    let resp = server
        .handle(&Request::Transform {
            doc: "xmark".into(),
            query: q.clone(),
        })
        .unwrap();
    assert_eq!(resp.method, Some(Method::TwoPassSax));

    let doc = Document::parse(&xml).unwrap();
    let parsed = xust::core::parse_transform(&q).unwrap();
    let reference = evaluate(&doc, &parsed, Method::Naive).unwrap().serialize();
    assert_eq!(resp.body, reference);
    std::fs::remove_file(&path).ok();
}
