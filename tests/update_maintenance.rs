//! Differential update-fuzz harness for the live write path.
//!
//! The server's `UPDATE` verb applies deltas destructively and keeps
//! provably-unaffected cached view results alive by *maintaining* them
//! (applying the same delta to the cached materialization) instead of
//! recomputing. That retention decision is the thing that can be subtly
//! wrong, so this suite is differential: a reference document is
//! maintained outside the server by applying the identical updates with
//! the core primitives, and after **every** write, **every** registered
//! view served by the server — whether it came from a maintained cache
//! entry, a fresh materialization, or a recompute after invalidation —
//! must be byte-identical to a full `two_pass` recompute over the
//! reference, across shard layouts {1, 8} — and, for the multi-document
//! interleaved fuzzer, {1, 2, 8}.
//!
//! Deterministic companions pin down the cache-retention contract
//! itself: retention must actually fire on disjoint-label workloads
//! (`delta_retained > 0`, served-from-cache hits), an intersecting delta
//! must never be retained, a write to one document must never drop
//! entries for any other document — same store shard or not (the result
//! cache is keyed by per-document versions and sharded per document, so
//! the old shard-epoch `stale` path is structurally gone) — and a
//! removed document's retired versions can never resurrect old entries.

mod common;

use proptest::prelude::*;

use common::{arb_op, build_query_text_renaming};
use xust::core::{apply_update, evaluate, parse_multi_transform, parse_transform, Method};
use xust::serve::{Request, Server};
use xust::tree::Document;
use xust::xmark::{generate_string, XmarkConfig};
use xust::xpath::eval_path_root;

/// A spike region with a vocabulary fully disjoint from both the XMark
/// labels and every registered view's alphabet, grafted into the
/// generated document right inside `<site>`.
const SPIKE: &str = concat!(
    "<spike-zone><sa><sc>10</sc></sa>",
    "<sb><sc>20</sc><zap>x</zap></sb><sa/></spike-zone>"
);

fn spiked_xmark(seed: u64) -> Document {
    let base = generate_string(XmarkConfig::new(0.0005).with_seed(seed));
    let open_end = base.find('>').expect("xmark has a root tag") + 1;
    let spiked = format!("{}{}{}", &base[..open_end], SPIKE, &base[open_end..]);
    Document::parse(&spiked).expect("spiked xmark parses")
}

/// The registered views: name → chain of transform links. A mix of
/// single transforms, a qualifier, and a two-link chain, all over XMark
/// vocabulary (never the spike vocabulary — that is what makes spike
/// writes provably irrelevant to them).
const VIEWS: [(&str, &[&str]); 4] = [
    (
        "noperson",
        &[r#"transform copy $a := doc("xmark") modify do delete $a//person return $a"#],
    ),
    (
        "kwren",
        &[r#"transform copy $a := doc("xmark") modify do rename $a//keyword as kw return $a"#],
    ),
    (
        "cheapbids",
        &[
            r#"transform copy $a := doc("xmark") modify do delete $a//bidder[increase > 5] return $a"#,
        ],
    ),
    (
        "chain2",
        &[
            r#"transform copy $a := doc("xmark") modify do delete $a//emph return $a"#,
            r#"transform copy $a := doc("xmark") modify do rename $a//bold as b return $a"#,
        ],
    ),
];

fn register_views(server: &Server) {
    for (name, links) in VIEWS {
        server.register_view_chain(name, links).unwrap();
    }
}

/// Full recompute of a view chain over `base` via `two_pass` — the
/// differential oracle the served bytes must match.
fn recompute_view(base: &Document, links: &[&str]) -> String {
    let mut current = base.clone();
    for link in links {
        let q = parse_transform(link).unwrap();
        current = evaluate(&current, &q, Method::TwoPass).unwrap();
    }
    current.serialize()
}

/// Applies one update text to the reference document exactly the way
/// the server's write path does: each embedded update in order, targets
/// evaluated against the current tree.
fn apply_to_reference(reference: &mut Document, update: &str) {
    let mq = parse_multi_transform(update).unwrap();
    for (path, op) in &mq.updates {
        let targets = eval_path_root(reference, path);
        apply_update(reference, &targets, op);
    }
}

/// Update target paths: spike-region paths (disjoint from every view)
/// and XMark paths (which collide with view alphabets and force
/// recomputation). Paths are relative — `build_query_text` grafts them
/// onto `$a`. The qualifier-bearing entries read labels that renames
/// can *mint* (`sa`, `sc` are rename targets below), so a sequence can
/// rename a node and then qualify on its new name — the shape that
/// catches stale touched-label footprints in retained entries.
const UPDATE_PATHS: [&str; 12] = [
    "//spike-zone//sa",
    "//spike-zone/sb[sc]",
    "//sc[. = '10']",
    "//zap",
    "//sb",
    "//spike-zone/sb[sa > 15]",
    "//sa[sc]",
    "site/people/person",
    "//bidder",
    "//keyword",
    "//item[location = 'United States']",
    "//emph",
];

/// New names the fuzzer's renames use. Unlike the fixed `rn` of
/// `build_query_text`, most of these are labels other pool paths *read*
/// (in qualifiers or as steps), so rename→qualify sequences exercise
/// the footprint-remapping path of retention.
const RENAME_NAMES: [&str; 4] = ["rn", "sa", "sc", "zap"];

fn check_all_views_of(
    server: &Server,
    doc: &str,
    reference: &Document,
    context: &str,
) -> Result<(), TestCaseError> {
    for (name, links) in VIEWS {
        let served = server
            .handle(&Request::View {
                view: name.into(),
                doc: doc.into(),
            })
            .unwrap()
            .body;
        let expected = recompute_view(reference, links);
        prop_assert_eq!(
            &served,
            &expected,
            "view '{}' of doc '{}' diverged from full two_pass recompute ({})",
            name,
            doc,
            context
        );
    }
    Ok(())
}

fn check_all_views(
    server: &Server,
    reference: &Document,
    context: &str,
) -> Result<(), TestCaseError> {
    check_all_views_of(server, "xmark", reference, context)
}

proptest! {
    // 256 random update sequences — the acceptance bar for the
    // differential harness. `PROPTEST_CASES` may cap this for quick CI
    // smoke runs; the dedicated CI job runs the full count.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The core differential property: incremental maintenance output is
    /// byte-identical to full recompute for every registered view after
    /// every write, for shard layouts {1, 8}.
    #[test]
    fn maintained_views_equal_full_recompute(
        seed in 0u64..64,
        updates in prop::collection::vec(
            (0..UPDATE_PATHS.len(), arb_op(), 0..RENAME_NAMES.len()),
            1..4,
        ),
    ) {
        let base = spiked_xmark(seed);
        for shards in [1usize, 8] {
            let server = Server::builder().threads(2).shards(shards).build();
            server.load_doc("xmark", base.clone());
            register_views(&server);
            let mut reference = base.clone();
            // Warm the result cache so writes have entries to maintain.
            check_all_views(&server, &reference, "before any write")?;
            for (round, &(path_idx, op, name_idx)) in updates.iter().enumerate() {
                let text = build_query_text_renaming(
                    "xmark",
                    UPDATE_PATHS[path_idx],
                    op,
                    RENAME_NAMES[name_idx],
                );
                let resp = server.update_doc("xmark", &text).unwrap();
                prop_assert!(resp.body.starts_with("updated xmark epoch="));
                apply_to_reference(&mut reference, &text);
                let ctx = format!(
                    "shards={} round={} update={}",
                    shards, round, text
                );
                check_all_views(&server, &reference, &ctx)?;
            }
            prop_assert_eq!(server.store().active_snapshots(), 0);
        }
    }
}

/// Names chosen so FNV-1a spreads them over >1 shard at 2 and 8 shards
/// (asserted inside the test): interleaved writes land on same-shard
/// *and* cross-shard neighbours in every layout.
const MULTI_DOCS: [&str; 3] = ["alpha", "beta", "gamma"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The multi-document differential property: interleaved writes to
    /// several documents — hammering one doc, alternating, whatever the
    /// fuzzer picks — keep **every** view of **every** document
    /// byte-identical to full recompute after **every** write, across
    /// shard layouts {1, 2, 8}. Same-shard neighbours are the
    /// interesting case (their entries used to be collateral damage of
    /// the shard epoch); cross-shard ones keep the old guarantee.
    #[test]
    fn multi_doc_interleaved_writes_stay_differential(
        seed in 0u64..32,
        writes in prop::collection::vec(
            (
                0..MULTI_DOCS.len(),
                0..UPDATE_PATHS.len(),
                arb_op(),
                0..RENAME_NAMES.len(),
            ),
            1..5,
        ),
    ) {
        let bases: Vec<Document> = (0..MULTI_DOCS.len() as u64)
            .map(|i| spiked_xmark(seed * 3 + i))
            .collect();
        for shards in [1usize, 2, 8] {
            let server = Server::builder().threads(2).shards(shards).build();
            for (name, base) in MULTI_DOCS.iter().zip(&bases) {
                server.load_doc(*name, base.clone());
            }
            if shards > 1 {
                let store = server.store();
                let spread: std::collections::HashSet<usize> =
                    MULTI_DOCS.iter().map(|n| store.shard_of(n)).collect();
                prop_assert!(spread.len() > 1, "docs must span shards at {shards}");
            }
            register_views(&server);
            let mut references = bases.clone();
            // Warm every (view, doc) entry so writes have neighbours'
            // entries to (not) disturb.
            for (doc, reference) in MULTI_DOCS.iter().zip(&references) {
                check_all_views_of(&server, doc, reference, "warm-up")?;
            }
            for (round, &(doc_idx, path_idx, op, name_idx)) in writes.iter().enumerate() {
                let doc = MULTI_DOCS[doc_idx];
                let text = build_query_text_renaming(
                    doc,
                    UPDATE_PATHS[path_idx],
                    op,
                    RENAME_NAMES[name_idx],
                );
                server.update_doc(doc, &text).unwrap();
                apply_to_reference(&mut references[doc_idx], &text);
                for (other, reference) in MULTI_DOCS.iter().zip(&references) {
                    let ctx = format!(
                        "shards={shards} round={round} wrote={doc} checking={other} update={text}"
                    );
                    check_all_views_of(&server, other, reference, &ctx)?;
                }
            }
            // Writes examined only the documents they targeted.
            let written: std::collections::HashSet<&str> = writes
                .iter()
                .map(|&(i, _, _, _)| MULTI_DOCS[i])
                .collect();
            for (doc, _, _, _, _) in &server.stats().doc_delta {
                prop_assert!(
                    written.contains(doc.as_str()),
                    "unwritten doc '{}' has a delta row",
                    doc
                );
            }
            prop_assert_eq!(server.store().active_snapshots(), 0);
        }
    }
}

#[test]
fn retention_fires_on_disjoint_label_workloads() {
    let base = spiked_xmark(7);
    let server = Server::builder().threads(2).shards(1).build();
    server.load_doc("xmark", base.clone());
    register_views(&server);
    let mut reference = base.clone();
    // Warm every view's result entry.
    for (name, _) in VIEWS {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
    }
    assert_eq!(server.view_results().len(), VIEWS.len());

    // Spike-only writes: every view's alphabet is disjoint from the
    // delta, so every entry must be retained and maintained in place.
    let spike_updates = [
        r#"transform copy $a := doc("xmark") modify do insert <ins k="1"><t>v</t></ins> into $a//spike-zone/sb return $a"#,
        r#"transform copy $a := doc("xmark") modify do rename $a//zap as rn return $a"#,
        r#"transform copy $a := doc("xmark") modify do delete $a//sc[. = '10'] return $a"#,
    ];
    for update in spike_updates {
        let resp = server.update_doc("xmark", update).unwrap();
        assert!(
            resp.body
                .contains(&format!("retained={} recomputed=0", VIEWS.len())),
            "expected full retention, got: {}",
            resp.body
        );
        apply_to_reference(&mut reference, update);
    }
    let stats = server.stats();
    assert_eq!(stats.update_requests, spike_updates.len() as u64);
    assert_eq!(
        stats.delta_retained,
        (spike_updates.len() * VIEWS.len()) as u64,
        "retention must actually fire, not fall back to recompute"
    );
    assert_eq!(stats.delta_recomputed, 0);
    // STATS (the protocol answer) reports the retention.
    let rendered = stats.to_string();
    assert!(rendered.contains(&format!("delta_retained={}", stats.delta_retained)));
    assert!(rendered.contains("view noperson: delta_retained=3 delta_patched=0 delta_recomputed=0"));

    // The maintained entries are *served*: reads after the writes are
    // result-cache hits and still byte-identical to full recompute.
    let hits_before = server.stats().result_hits;
    for (name, links) in VIEWS {
        let served = server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
        assert!(served.cache_hit);
        assert_eq!(
            served.body,
            recompute_view(&reference, links),
            "maintained entry for '{name}' diverged"
        );
    }
    assert_eq!(
        server.stats().result_hits,
        hits_before + VIEWS.len() as u64,
        "post-write reads must come from the maintained entries"
    );
}

#[test]
fn intersecting_deltas_are_never_retained() {
    let base = spiked_xmark(11);
    let server = Server::builder().threads(2).shards(1).build();
    server.load_doc("xmark", base.clone());
    register_views(&server);
    let mut reference = base.clone();
    for (name, _) in VIEWS {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
    }
    // Inserting a fresh <keyword> intersects kwren's alphabet (and, via
    // ancestors, whatever region it lands in) — kwren must NOT keep its
    // entry, even though the insert happens in the spike zone.
    let update = r#"transform copy $a := doc("xmark") modify do insert <keyword>new</keyword> into $a//spike-zone/sb return $a"#;
    server.update_doc("xmark", update).unwrap();
    apply_to_reference(&mut reference, update);
    let (_, retained, patched, recomputed) = server
        .stats()
        .view_delta
        .iter()
        .find(|(v, _, _, _)| v == "kwren")
        .cloned()
        .unwrap();
    assert_eq!(
        retained, 0,
        "a view whose alphabet intersects the delta must never be retained as-is"
    );
    assert_eq!(
        patched + recomputed,
        1,
        "the entry must take exactly one of the non-retain fates"
    );
    // …and the recomputed answer is correct (a false retention would
    // have served the stale body instead).
    let served = server
        .handle(&Request::View {
            view: "kwren".into(),
            doc: "xmark".into(),
        })
        .unwrap();
    let expected = recompute_view(
        &reference,
        VIEWS.iter().find(|(n, _)| *n == "kwren").unwrap().1,
    );
    assert_eq!(served.body, expected);
    assert!(
        served.body.contains("<kw>new</kw>"),
        "the inserted keyword must be renamed by the recomputed view"
    );
}

/// The REVIEW scenario: stored touched-label footprints must follow
/// retained renames. The view deletes `<s>`, so its entry's footprint
/// says the `r/z/a/w` ancestor chain is value-perturbed. A rename write
/// (`a`→`b`, `w`→`u`) is rightly retained — it commutes with the view —
/// but it renames that very chain in base and cached result alike. A
/// follow-up update whose qualifier reads the chain under its NEW
/// names must still be caught by the valued direction of the relevance
/// test and recomputed; with a stale (pre-rename) footprint it would
/// pass all three disjointness directions and be wrongly retained,
/// breaking the invariant retention soundness is argued from.
#[test]
fn retained_renames_do_not_cause_false_retention() {
    const XML: &str = "<r><z><a><w><t>1</t><s>5</s></w></a></z></r>";
    const VIEW: &str = r#"transform copy $a := doc("db") modify do delete $a//s return $a"#;
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", XML).unwrap();
    server.register_view("nos", VIEW).unwrap();
    let mut reference = Document::parse(XML).unwrap();
    // Warm the entry so the writes have something to maintain.
    server
        .handle(&Request::View {
            view: "nos".into(),
            doc: "db".into(),
        })
        .unwrap();
    let rename = r#"transform copy $a := doc("db") modify do (rename $a//a as b, rename $a//w as u) return $a"#;
    let resp = server.update_doc("db", rename).unwrap();
    assert!(
        resp.body.contains("retained=1 recomputed=0"),
        "the rename is label-disjoint from the view and must be retained: {}",
        resp.body
    );
    apply_to_reference(&mut reference, rename);
    // The qualifier compares `t`'s value under the renamed `u` anchor:
    // its value alphabet {u, t} is disjoint from the footprint's
    // *pre-rename* names ({s, w, a, z, r}) but intersects the renamed
    // ones — only a remapped footprint recomputes here.
    let insert =
        r#"transform copy $a := doc("db") modify do insert <m/> into $a//u[t = '1'] return $a"#;
    let resp = server.update_doc("db", insert).unwrap();
    assert!(
        resp.body.contains("targets=1 retained=0 recomputed=1"),
        "the qualifier reads the renamed ancestor chain under its NEW names — \
         the entry must be recomputed, not maintained: {}",
        resp.body
    );
    apply_to_reference(&mut reference, insert);
    let served = server
        .handle(&Request::View {
            view: "nos".into(),
            doc: "db".into(),
        })
        .unwrap()
        .body;
    assert_eq!(served, recompute_view(&reference, &[VIEW]));
    assert!(
        served.contains("<m/>"),
        "the insert fires inside the renamed chain and must show in the view: {served}"
    );
}

/// Update pool for the targeted rename fuzzer: renames whose new names
/// later entries *read* — as qualifier values, qualifier paths, and
/// plain steps — including chained renames (`a`→`b`→`c`), over a
/// document where the view's divergence sits right on the renamed
/// ancestor chain. The broad XMark fuzzer above cannot express this
/// shape (its renames always mint `rn`, which nothing reads); every
/// sequence here is checked differentially after every write.
const RENAME_POOL: [&str; 10] = [
    "rename $a//a as b",
    "rename $a//w as u",
    "rename $a//b as c",
    "rename $a//z as q",
    "insert <m/> into $a//b[u > 5]",
    "insert <m/> into $a//a[w > 5]",
    "insert <k/> into $a//c[u]",
    "insert <m2/> into $a//q[. = '15']",
    "delete $a//u[. = '1']",
    "delete $a//b",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Differential fuzz over rename→qualify sequences: served views
    /// must match full recompute after every write, whatever mix of
    /// retention and recomputation the relevance test picks.
    #[test]
    fn rename_then_qualify_sequences_never_diverge(
        picks in prop::collection::vec(0..RENAME_POOL.len(), 1..6),
    ) {
        const XML: &str = concat!(
            "<r><z><a><w><t>1</t><s>5</s></w></a></z>",
            "<z><a><w><t>9</t></w></a></z><y><s>3</s><v>7</v></y></r>"
        );
        const VIEW: &str =
            r#"transform copy $a := doc("db") modify do delete $a//s return $a"#;
        let server = Server::builder().threads(1).shards(1).build();
        server.load_doc_str("db", XML).unwrap();
        server.register_view("nos", VIEW).unwrap();
        let mut reference = Document::parse(XML).unwrap();
        for (round, &i) in picks.iter().enumerate() {
            // (Re-)warm the entry so every write maintains a fresh one.
            let served = server
                .handle(&Request::View { view: "nos".into(), doc: "db".into() })
                .unwrap()
                .body;
            prop_assert_eq!(&served, &recompute_view(&reference, &[VIEW]));
            let text = format!(
                r#"transform copy $a := doc("db") modify do {} return $a"#,
                RENAME_POOL[i]
            );
            server.update_doc("db", &text).unwrap();
            apply_to_reference(&mut reference, &text);
            let served = server
                .handle(&Request::View { view: "nos".into(), doc: "db".into() })
                .unwrap()
                .body;
            prop_assert_eq!(
                &served,
                &recompute_view(&reference, &[VIEW]),
                "diverged at round {} after {}",
                round,
                RENAME_POOL[i]
            );
        }
    }
}

/// The exact ROADMAP collapse scenario, now fixed: under shard-epoch
/// keying, every write to hot doc A bumped the shard epoch and silently
/// un-keyed same-shard neighbour B's cached views (dropped as `stale`
/// on A's next sweep) — under a steady writer, B's hit rate collapsed
/// to zero. With entries keyed by per-document versions, B's version
/// never moves when A is written, so every post-warm read of B must be
/// a result-cache hit, write after write after write.
#[test]
fn steady_writes_to_a_hot_doc_leave_neighbour_hits_intact() {
    const WRITES: usize = 12;
    let server = Server::builder().threads(2).shards(1).build(); // one shard: A and B are neighbours
    server.load_doc("hot", spiked_xmark(5));
    server.load_doc("calm", spiked_xmark(6));
    register_views(&server);
    // Warm every view of both documents.
    for doc in ["hot", "calm"] {
        for (name, _) in VIEWS {
            server
                .handle(&Request::View {
                    view: name.into(),
                    doc: doc.into(),
                })
                .unwrap();
        }
    }
    let calm_reference = spiked_xmark(6);
    let hits_before = server.stats().result_hits;
    let misses_before = server.stats().result_misses;
    // Steady spike-disjoint writes to the hot document only.
    let writes = [
        r#"transform copy $a := doc("hot") modify do insert <ins k="1"><t>v</t></ins> into $a//spike-zone/sb return $a"#,
        r#"transform copy $a := doc("hot") modify do rename $a//zap as rn return $a"#,
        r#"transform copy $a := doc("hot") modify do delete $a//spike-zone/sa[sc] return $a"#,
    ];
    for i in 0..WRITES {
        server.update_doc("hot", writes[i % writes.len()]).unwrap();
        // Every view of the neighbour still serves from cache, and the
        // body is still exactly the full recompute.
        for (name, links) in VIEWS {
            let served = server
                .handle(&Request::View {
                    view: name.into(),
                    doc: "calm".into(),
                })
                .unwrap();
            assert_eq!(
                served.body,
                recompute_view(&calm_reference, links),
                "neighbour view '{name}' diverged after write {i}"
            );
        }
    }
    let stats = server.stats();
    assert_eq!(
        stats.result_hits,
        hits_before + (WRITES * VIEWS.len()) as u64,
        "every neighbour read after every hot write must be a cache hit"
    );
    assert_eq!(
        stats.result_misses, misses_before,
        "the hot writer must cause zero neighbour misses"
    );
    // The per-doc counters prove the sweeps only ever examined the
    // written document: the neighbour has no row at all.
    assert!(
        stats.doc_delta.iter().all(|(d, _, _, _, _)| d != "calm"),
        "a never-written document must have no delta row: {:?}",
        stats.doc_delta
    );
    let (_, retained, _, _, _) = stats
        .doc_delta
        .iter()
        .find(|(d, _, _, _, _)| d == "hot")
        .cloned()
        .unwrap();
    assert!(retained > 0, "the hot doc's own entries are retained");
}

/// Re-keying safety: a removed document's versions are retired, never
/// reused. Without that, remove + re-load under the same name could
/// restart version numbering and make a cached entry of the *dead*
/// lineage key-match the new document — a false hit serving deleted
/// content. (Reload-purges are belt; retired versions are suspenders —
/// this pins the suspenders.)
#[test]
fn removed_docs_never_resurrect_cached_entries() {
    let server = Server::builder().threads(1).shards(1).build();
    let del_zzz = r#"transform copy $a := doc("db") modify do delete $a//zzz return $a"#;
    server.register_view("v", del_zzz).unwrap();
    server.load_doc_str("db", "<db><old/></db>").unwrap();
    server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(server.view_results().len(), 1);
    let dead_version = server.store().version_of("db").unwrap();
    assert!(server.remove_doc("db"));
    assert_eq!(server.view_results().len(), 0, "removal drops the shard");
    // Re-create the name with different content.
    server.load_doc_str("db", "<db><new/></db>").unwrap();
    assert!(
        server.store().version_of("db").unwrap() > dead_version,
        "a re-created document must draw a strictly larger version"
    );
    let misses_before = server.stats().result_misses;
    let served = server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(
        served.body, "<db><new/></db>",
        "the dead lineage's cached body must never serve"
    );
    assert_eq!(server.stats().result_misses, misses_before + 1);
    // And the recomputed entry is hit-able at the new version.
    let hits_before = server.stats().result_hits;
    server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(server.stats().result_hits, hits_before + 1);
}

#[test]
fn writes_never_touch_entries_of_other_shards() {
    let server = Server::builder().threads(2).shards(8).build();
    // Find two document names owned by different shards.
    let store = server.store();
    let a = "alpha";
    let b = ["beta", "gamma", "delta", "omega", "kappa"]
        .into_iter()
        .find(|n| store.shard_of(n) != store.shard_of(a))
        .expect("some candidate lands in another shard");
    let xml = "<db><part><price>9</price></part><aux><k/></aux></db>";
    server.load_doc_str(a, xml).unwrap();
    server.load_doc_str(b, xml).unwrap();
    server
        .register_view(
            "noprice",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
        )
        .unwrap();
    // Warm one entry per document.
    for doc in [a, b] {
        server
            .handle(&Request::View {
                view: "noprice".into(),
                doc: doc.into(),
            })
            .unwrap();
    }
    assert_eq!(server.view_results().len(), 2);
    // A write to A that invalidates A's entry (price is in the view's
    // alphabet) must leave B's entry alone.
    let update = format!(
        r#"transform copy $a := doc("{a}") modify do insert <price>1</price> into $a//aux return $a"#
    );
    server.update_doc(a, &update).unwrap();
    let hits_before = server.stats().result_hits;
    let misses_before = server.stats().result_misses;
    let served_b = server
        .handle(&Request::View {
            view: "noprice".into(),
            doc: b.into(),
        })
        .unwrap();
    assert_eq!(served_b.body, "<db><part/><aux><k/></aux></db>");
    assert_eq!(
        server.stats().result_hits,
        hits_before + 1,
        "doc B's entry (another shard) must survive the write to doc A"
    );
    // A's entry was invalidated — and eagerly recomputed by the
    // write's one shared sweep, so the next read hits at the new
    // version without any further miss.
    let served_a = server
        .handle(&Request::View {
            view: "noprice".into(),
            doc: a.into(),
        })
        .unwrap();
    assert_eq!(served_a.body, "<db><part/><aux><k/></aux></db>");
    assert_eq!(server.stats().result_misses, misses_before);
    assert_eq!(server.stats().result_hits, hits_before + 2);
    let snap = server.stats();
    assert_eq!(snap.shared_passes, 1, "one write, one factorised sweep");
    assert_eq!(snap.shared_pass_views, 1);
}

#[test]
fn parenthesized_single_update_lists_work() {
    // `modify do (u1)` is valid multi syntax with one element; the
    // write path must compile it from the multi parse instead of
    // re-parsing it as (invalid) single syntax.
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", "<db><x/><y/></db>").unwrap();
    let resp = server
        .update_doc(
            "db",
            r#"transform copy $a := doc("db") modify do (delete $a//x) return $a"#,
        )
        .unwrap();
    assert!(resp.body.contains("targets=1"), "{}", resp.body);
    let stored = server
        .handle(&Request::Transform {
            doc: "db".into(),
            query: r#"transform copy $a := doc("db") modify do delete $a//nothing return $a"#
                .into(),
        })
        .unwrap()
        .body;
    assert_eq!(stored, "<db><y/></db>");
}

#[test]
fn multi_update_sequences_apply_in_order() {
    let base = spiked_xmark(3);
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc("xmark", base.clone());
    register_views(&server);
    let mut reference = base.clone();
    // One UPDATE carrying three updates: applied in order, each seeing
    // the previous one's effect (the insert's <t> is renamed by the
    // second update; the third deletes the spike <sb> wholesale).
    let update = concat!(
        r#"transform copy $a := doc("xmark") modify do ("#,
        r#"insert <ins><t>v</t></ins> into $a//spike-zone/sa, "#,
        r#"rename $a//spike-zone//t as tt, "#,
        r#"delete $a//spike-zone/sb) return $a"#
    );
    let resp = server.update_doc("xmark", update).unwrap();
    apply_to_reference(&mut reference, update);
    assert!(
        resp.body.contains("targets=5"),
        "2 sa inserts + 2 renamed t + 1 sb delete: {}",
        resp.body
    );
    // Sequential semantics: the inserted <t> elements got renamed.
    let stored = server
        .handle(&Request::Transform {
            doc: "xmark".into(),
            query: r#"transform copy $a := doc("xmark") modify do delete $a//person return $a"#
                .into(),
        })
        .unwrap()
        .body;
    assert!(stored.contains("<ins><tt>v</tt></ins>"));
    assert!(!stored.contains("<sb>"));
    for (name, links) in VIEWS {
        let served = server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap()
            .body;
        assert_eq!(served, recompute_view(&reference, links), "view '{name}'");
    }
}

#[test]
fn repeated_updates_recycle_arena_slots() {
    use xust::serve::DocSource;
    // The write path applies deletes in place on the cloned epoch, so
    // the arena free-list (PR 3) must absorb insert→delete churn: the
    // stored document's arena cannot grow write over write.
    let server = Server::builder().threads(1).shards(1).build();
    server
        .load_doc_str("db", "<db><part><k/></part></db>")
        .unwrap();
    let insert = r#"transform copy $a := doc("db") modify do insert <tmp><t>x</t></tmp> into $a//k return $a"#;
    let delete = r#"transform copy $a := doc("db") modify do delete $a//tmp return $a"#;
    let arena_of = || match server.store().get("db").unwrap() {
        DocSource::Memory(d) => d.arena_len(),
        other => panic!("unexpected {other:?}"),
    };
    let mut high_water = 0;
    for cycle in 0..20 {
        server.update_doc("db", insert).unwrap();
        if cycle == 0 {
            high_water = arena_of();
        } else {
            assert_eq!(
                arena_of(),
                high_water,
                "arena leaked through the write path on cycle {cycle}"
            );
        }
        server.update_doc("db", delete).unwrap();
    }
    match server.store().get("db").unwrap() {
        DocSource::Memory(d) => assert_eq!(d.serialize(), "<db><part><k/></part></db>"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(server.stats().update_requests, 40);
}

#[test]
fn reregistration_invalidates_cached_results() {
    // Re-registering a view under the same name must make its cached
    // result unservable even though the document (and its epoch) did
    // not change — entries are stamped with the definition generation.
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", "<db><a/><b/></db>").unwrap();
    let del_a = r#"transform copy $a := doc("db") modify do delete $a//a return $a"#;
    let del_b = r#"transform copy $a := doc("db") modify do delete $a//b return $a"#;
    server.register_view("v", del_a).unwrap();
    let first = server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(first.body, "<db><b/></db>");
    server.register_view("v", del_b).unwrap();
    let second = server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(
        second.body, "<db><a/></db>",
        "the old definition's cached result must not survive re-registration"
    );
}

#[test]
fn reload_drops_entries_instead_of_maintaining_them() {
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc_str("db", "<db><a/></db>").unwrap();
    server
        .register_view(
            "v",
            r#"transform copy $a := doc("db") modify do delete $a//zzz return $a"#,
        )
        .unwrap();
    server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(server.view_results().len(), 1);
    // A whole-document reload is an unbounded delta: no retention.
    server.load_doc_str("db", "<db><b/></db>").unwrap();
    assert_eq!(server.view_results().len(), 0);
    let served = server
        .handle(&Request::View {
            view: "v".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(served.body, "<db><b/></db>");
}

/// Paths whose writes intersect the registered views' alphabets —
/// exactly the writes that fail retention and become patch candidates.
const PATCH_PATHS: [&str; 5] = [
    "//keyword",
    "//bidder",
    "//emph",
    "site/people/person",
    "//item[location = 'United States']",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The patch-fate differential property: single-rule writes that
    /// collide with view alphabets (so their entries fail retention and
    /// either patch in place or recompute) keep **every** served view
    /// byte-identical to full recompute after **every** write —
    /// whichever fate each entry took — and the patched bookkeeping
    /// stays coherent (fragments only ever spliced by patching writes).
    #[test]
    fn patched_entries_equal_full_recompute(
        seed in 0u64..32,
        writes in prop::collection::vec(
            (0..PATCH_PATHS.len(), arb_op(), 0..RENAME_NAMES.len()),
            1..5,
        ),
    ) {
        let base = spiked_xmark(seed);
        let server = Server::builder().threads(2).shards(1).build();
        server.load_doc("xmark", base.clone());
        register_views(&server);
        let mut reference = base.clone();
        check_all_views(&server, &reference, "before any write")?;
        for (round, &(path_idx, op, name_idx)) in writes.iter().enumerate() {
            let patched_before = server.stats().delta_patched;
            let fragments_before = server.stats().patched_fragments;
            let text = build_query_text_renaming(
                "xmark",
                PATCH_PATHS[path_idx],
                op,
                RENAME_NAMES[name_idx],
            );
            server.update_doc("xmark", &text).unwrap();
            apply_to_reference(&mut reference, &text);
            let stats = server.stats();
            if stats.patched_fragments > fragments_before {
                prop_assert!(
                    stats.delta_patched > patched_before,
                    "fragments spliced without a patched entry (round {})",
                    round
                );
            }
            let ctx = format!("round={round} update={text}");
            check_all_views(&server, &reference, &ctx)?;
        }
    }
}

/// The patch fate actually fires — deterministically. An insert of a
/// fresh `<keyword>` into the spike zone collides with `kwren`'s
/// alphabet (so its entry cannot be retained) but its site chain is
/// disjoint from every qualifier anchor, and the affected span is one
/// small fragment: the entry must be spliced in place, reported in the
/// reply, STATS, and METRICS, and serve bytes identical to recompute.
/// A `patching(false)` server takes the recompute fate on the same
/// write — the control proving the counters measure the patch path.
#[test]
fn patching_fires_on_localized_intersecting_writes() {
    let base = spiked_xmark(3);
    let update = r#"transform copy $a := doc("xmark") modify do insert <keyword>new</keyword> into $a//spike-zone/sb return $a"#;
    let mut reference = base.clone();
    apply_to_reference(&mut reference, update);

    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc("xmark", base.clone());
    register_views(&server);
    for (name, _) in VIEWS {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
    }
    let resp = server.update_doc("xmark", update).unwrap();
    let stats = server.stats();
    assert!(
        stats.delta_patched >= 1,
        "the localized intersecting write must take the patch fate: {}",
        resp.body
    );
    assert!(stats.patched_fragments >= 1);
    assert!(
        resp.body.contains("patched=1"),
        "the reply reports the patch: {}",
        resp.body
    );
    assert!(stats.to_string().contains("delta_patched=1"));
    let metrics = server.metrics();
    assert!(metrics.contains("xust_patched_total 1"), "{metrics}");
    assert!(
        metrics.contains("xust_patched_fragments_total"),
        "{metrics}"
    );
    // The spliced entry *serves*, from cache, byte-identical bytes.
    // (chain2 — multi-link, never patch-eligible — fell to the lazy
    // recompute fate, so exactly one of the four reads is a miss.)
    let hits_before = server.stats().result_hits;
    for (name, links) in VIEWS {
        let served = server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
        assert_eq!(
            served.body,
            recompute_view(&reference, links),
            "view '{name}' diverged after the patch"
        );
    }
    assert_eq!(
        server.stats().result_hits,
        hits_before + VIEWS.len() as u64 - 1
    );

    // Control: with patching disabled the same write recomputes.
    let control = Server::builder()
        .threads(1)
        .shards(1)
        .patching(false)
        .build();
    control.load_doc("xmark", base);
    register_views(&control);
    for (name, _) in VIEWS {
        control
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
    }
    let resp = control.update_doc("xmark", update).unwrap();
    let control_stats = control.stats();
    assert_eq!(control_stats.delta_patched, 0);
    assert!(
        resp.body.contains("patched=0"),
        "no patch without provenance: {}",
        resp.body
    );
    assert!(
        control_stats.delta_recomputed >= 1,
        "the entry falls back to the recompute fate"
    );
}

/// Provenance survives retained writes: a spike-only rename is retained
/// (the delta is disjoint from every view), which *repairs* the stored
/// fragment trees instead of dropping them — collapsing the covering
/// fragments on both the base and result sides — and marks the entries
/// drifted. A later localized intersecting write must still take the
/// patch fate through the repaired map, and serve bytes identical to
/// recompute.
#[test]
fn patching_survives_retained_renames() {
    let base = spiked_xmark(5);
    let server = Server::builder().threads(1).shards(1).build();
    server.load_doc("xmark", base.clone());
    register_views(&server);
    let mut reference = base.clone();
    for (name, _) in VIEWS {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
    }
    // Round 1: retained rename (spike vocabulary only). Every entry
    // survives, with its provenance repaired, and is now drifted.
    let rename = r#"transform copy $a := doc("xmark") modify do rename $a//zap as rn return $a"#;
    let resp = server.update_doc("xmark", rename).unwrap();
    assert!(
        resp.body
            .contains(&format!("retained={} recomputed=0", VIEWS.len())),
        "the spike rename must be retained: {}",
        resp.body
    );
    apply_to_reference(&mut reference, rename);
    // Round 2: localized intersecting write — the patch must fire on
    // the repaired provenance (a dropped map would recompute instead).
    let insert = r#"transform copy $a := doc("xmark") modify do insert <keyword>new</keyword> into $a//spike-zone/sb return $a"#;
    let resp = server.update_doc("xmark", insert).unwrap();
    apply_to_reference(&mut reference, insert);
    assert!(
        server.stats().delta_patched >= 1,
        "repaired provenance must still enable the patch fate: {}",
        resp.body
    );
    for (name, links) in VIEWS {
        let served = server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .unwrap();
        assert_eq!(
            served.body,
            recompute_view(&reference, links),
            "view '{name}' diverged after rename-then-patch"
        );
    }
}
