//! The selecting NFA is the paper's core abstraction: driving it over a
//! tree must select exactly `r[[p]]` (Section 3.4). These property tests
//! pin that equivalence against the direct XPath evaluator, for the
//! DOM walk and for the streaming selector alike.

use proptest::prelude::*;

use xust::automata::SelectingNfa;
use xust::core::{LdStorage, PathPrepass};
use xust::sax::{SaxEvent, SaxParser};
use xust::tree::{Document, ElementBuilder, NodeId};
use xust::xpath::{eval_path_root, eval_qualifier, parse_path};

const LABELS: [&str; 4] = ["a", "b", "c", "d"];
const TEXTS: [&str; 3] = ["x", "12", "A"];

fn arb_tree(depth: u32) -> impl Strategy<Value = ElementBuilder> {
    let leaf = (0..LABELS.len(), proptest::option::of(0..TEXTS.len())).prop_map(|(l, t)| {
        let mut b = ElementBuilder::new(LABELS[l]);
        if let Some(t) = t {
            b = b.text(TEXTS[t]);
        }
        b
    });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (0..LABELS.len(), prop::collection::vec(inner, 0..4)).prop_map(|(l, children)| {
            let mut b = ElementBuilder::new(LABELS[l]);
            for c in children {
                b = b.child(c);
            }
            b
        })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    arb_tree(3).prop_map(|b| ElementBuilder::new("r").child(b).build_document())
}

fn arb_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        (0..LABELS.len()).prop_map(|l| LABELS[l].to_string()),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        (0..LABELS.len()).prop_map(|l| format!("[{}]", LABELS[l])),
        (0..LABELS.len(), 0..TEXTS.len())
            .prop_map(|(l, t)| format!("[{} = '{}']", LABELS[l], TEXTS[t])),
        (0..LABELS.len()).prop_map(|l| format!("[not({})]", LABELS[l])),
        (0..LABELS.len()).prop_map(|l| format!("[{} < 20]", LABELS[l])),
        Just("[label() = b]".to_string()),
    ];
    (
        prop::collection::vec((step, proptest::option::of(qual), prop::bool::ANY), 1..4),
        prop::bool::ANY,
    )
        .prop_map(|(steps, lead_desc)| {
            let mut out = String::from(if lead_desc { "//" } else { "r/" });
            for (i, (s, q, desc)) in steps.iter().enumerate() {
                if i > 0 {
                    out.push_str(if *desc { "//" } else { "/" });
                }
                out.push_str(s);
                if let Some(q) = q {
                    out.push_str(q);
                }
            }
            out
        })
}

/// Drives the selecting NFA over the whole tree (no pruning) and
/// returns the selected nodes in preorder = document order.
fn nfa_select(doc: &Document, nfa: &SelectingNfa) -> Vec<NodeId> {
    let mut out = Vec::new();
    let Some(root) = doc.root() else {
        return out;
    };
    fn rec(
        doc: &Document,
        nfa: &SelectingNfa,
        n: NodeId,
        s: &xust::automata::StateSet,
        out: &mut Vec<NodeId>,
    ) {
        let Some(label) = doc.name_sym(n) else { return };
        let next = nfa.next_states(s, label, |_, qual| eval_qualifier(doc, n, qual));
        if next.contains(nfa.final_state) {
            out.push(n);
        }
        let children: Vec<NodeId> = doc.children(n).collect();
        for c in children {
            if doc.is_element(c) {
                rec(doc, nfa, c, &next, out);
            }
        }
    }
    rec(doc, nfa, root, &nfa.initial(), &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, .. ProptestConfig::default() })]

    /// Selecting NFA ≡ direct evaluator, node for node.
    #[test]
    fn selecting_nfa_matches_direct_eval(doc in arb_doc(), path in arb_path()) {
        let p = parse_path(&path).unwrap();
        let nfa = SelectingNfa::new(&p);
        let via_nfa = nfa_select(&doc, &nfa);
        let direct = eval_path_root(&doc, &p);
        prop_assert_eq!(
            &via_nfa,
            &direct,
            "NFA selection deviates for {} over {}",
            path,
            doc.serialize()
        );
    }

    /// Streaming PathSelector (filtering NFA + Ld replay) ≡ direct
    /// evaluator, including qualifier handling via the two-pass cursor.
    #[test]
    fn streaming_selector_matches_direct_eval(doc in arb_doc(), path in arb_path()) {
        let p = parse_path(&path).unwrap();
        let xml = doc.serialize();

        let mut pre = PathPrepass::new(&p, LdStorage::Memory);
        let mut parser = SaxParser::from_str(&xml);
        let mut events = Vec::new();
        while let Some(ev) = parser.next_event().unwrap() {
            pre.feed(ev.clone());
            events.push(ev);
        }
        let prepared = pre.finish().unwrap();
        let mut sel = prepared.selector();
        let mut got = Vec::new();
        for ev in &events {
            match ev {
                SaxEvent::StartElement { name, .. } if sel.start_element(*name) => {
                    got.push(name.as_str().to_string());
                }
                SaxEvent::StartElement { .. } => {}
                SaxEvent::EndElement(_) => sel.end_element(),
                _ => {}
            }
        }
        let expect: Vec<String> = eval_path_root(&doc, &p)
            .into_iter()
            .map(|n| doc.name(n).unwrap().to_string())
            .collect();
        prop_assert_eq!(got, expect, "selector deviates for {} over {}", path, xml);
    }

    /// NFA size bounds from Section 3.4: |Mp| = O(|p|), construction
    /// never panics, and the state count is linear in the step count.
    #[test]
    fn nfa_size_linear_in_path(path in arb_path()) {
        let p = parse_path(&path).unwrap();
        let nfa = SelectingNfa::new(&p);
        // steps + start state is the exact count for our construction.
        prop_assert!(nfa.len() <= p.steps.len() + 1);
        prop_assert!(nfa.final_state < nfa.len());
    }
}
