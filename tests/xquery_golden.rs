//! Golden tests for the XQuery-subset engine: each query has a fixed
//! expected serialization, covering the constructs the paper's generated
//! and composed queries rely on.

use xust::tree::Document;
use xust::xquery::Engine;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.load_doc(
        "shop",
        Document::parse(
            r#"<db><part id="p1"><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price><country>A</country></supplier><supplier><sname>IBM</sname><price>20</price><country>B</country></supplier></part><part id="p2"><pname>mouse</pname></part></db>"#,
        )
        .unwrap(),
    );
    e
}

fn run(q: &str) -> String {
    let mut e = engine();
    let v = e.eval_str(q).unwrap_or_else(|err| panic!("{q}: {err}"));
    e.serialize_value(&v)
}

#[test]
fn golden_queries() {
    let cases: &[(&str, &str)] = &[
        // paths and predicates
        (
            r#"doc("shop")/db/part/pname"#,
            "<pname>keyboard</pname><pname>mouse</pname>",
        ),
        (
            r#"doc("shop")//sname"#,
            "<sname>HP</sname><sname>IBM</sname>",
        ),
        (r#"doc("shop")/db/part[pname = 'mouse']/@id"#, "id=\"p2\""),
        (
            r#"doc("shop")//supplier[price < 15]/sname"#,
            "<sname>HP</sname>",
        ),
        // FLWOR with where, multi-binding
        (
            r#"for $p in doc("shop")/db/part, $s in $p/supplier where $s/country = 'B' return $s/sname"#,
            "<sname>IBM</sname>",
        ),
        // let + sequence
        (
            r#"let $n := doc("shop")//pname[. = 'mouse'] return ($n, $n)"#,
            "<pname>mouse</pname><pname>mouse</pname>",
        ),
        // conditional + empty()
        (
            r#"for $p in doc("shop")/db/part return if (empty($p/supplier)) then $p/pname else ()"#,
            "<pname>mouse</pname>",
        ),
        // quantified expression + node identity
        (
            r#"let $all := doc("shop")//supplier let $cheap := doc("shop")//supplier[price < 15] return if (some $x in $all satisfies (some $y in $cheap satisfies $x is $y)) then 'yes' else 'no'"#,
            "yes",
        ),
        // constructors: direct, computed, text
        (
            r#"<wrap n="1">{ doc("shop")//supplier[sname = 'HP']/price }</wrap>"#,
            "<wrap n=\"1\"><price>12</price></wrap>",
        ),
        (
            r#"for $s in doc("shop")//sname return element {local-name($s)} { string($s) }"#,
            "<sname>HP</sname><sname>IBM</sname>",
        ),
        (r#"text { 'a', 'b' }"#, "a b"),
        // functions
        (r#"count(doc("shop")//supplier)"#, "2"),
        (r#"concat('x', '-', 'y')"#, "x-y"),
        (
            r#"if (contains(string(doc("shop")/db/part[pname = 'keyboard']/pname), 'key')) then 'k' else 'n'"#,
            "k",
        ),
        // recursive user function: depth of the tree
        (
            r#"declare function local:depth($n) {
                 if (empty($n/*)) then 1 else local:depth($n/*)
               };
               local:depth(doc("shop")/db)"#,
            "1",
        ),
        // boolean connectives
        (
            r#"for $s in doc("shop")//supplier where $s/price > 10 and $s/country = 'A' return $s/sname"#,
            "<sname>HP</sname>",
        ),
        (
            r#"for $s in doc("shop")//supplier where $s/country = 'A' or $s/country = 'B' return $s/country"#,
            "<country>A</country><country>B</country>",
        ),
        // comparison coercions: numeric vs string
        (
            r#"for $p in doc("shop")//price where $p = 12 return $p"#,
            "<price>12</price>",
        ),
        (
            r#"for $p in doc("shop")//price where $p = '12' return $p"#,
            "<price>12</price>",
        ),
    ];
    for (query, expected) in cases {
        assert_eq!(&run(query), expected, "query: {query}");
    }
}

#[test]
fn generated_naive_query_golden() {
    // The exact Fig.-2-style rewriting for Example 1.1's delete.
    let q = xust::core::parse_transform(
        r#"transform copy $a := doc("shop") modify do delete $a//price return $a"#,
    )
    .unwrap();
    let text = xust::core::rewrite_to_xquery(&q);
    let mut e = engine();
    let v = e.eval_str(&text).unwrap();
    let out = e.serialize_value(&v);
    assert!(!out.contains("<price>"));
    assert!(out.contains("<sname>HP</sname>"));
    assert!(out.starts_with("<db>"));
}

#[test]
fn where_on_attribute() {
    assert_eq!(
        run(r#"for $p in doc("shop")/db/part where $p/@id = 'p1' return $p/pname"#),
        "<pname>keyboard</pname>"
    );
}
