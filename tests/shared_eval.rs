//! Differential fuzzer for the factorised shared pass.
//!
//! One shared sweep ([`multi_view`]) now answers what used to take one
//! full tree pass per view — on the write path (eager recompute of every
//! invalidated entry) and in `execute_batch` (co-resident views of one
//! document grouped onto one pass). The sharing must be invisible in the
//! output: every view's result stays **byte-identical** to its private
//! `two_pass` evaluation, whatever subset of views rides the pass and
//! whatever fell back. This suite proves that differentially, at the
//! core level (automaton union vs private evaluators) and through the
//! server (shard layouts {1, 8}, interleaved `UPDATE`s, batched reads),
//! reusing the generators in `tests/common/`.
//!
//! Deterministic companions pin the factorisation contract itself: a
//! write invalidating k views triggers exactly **one** shared recompute
//! sweep (`shared_passes`/`shared_pass_views`), a batch of k views of
//! one document rides one pass, and a k-view document's write completes
//! in time comparable to a 1-view document's (no per-view re-sweep).

mod common;

use proptest::prelude::*;

use common::{arb_doc, arb_op, arb_path, build_query, build_query_text};
use xust::core::{
    apply_update, multi_view_with_stats, parse_multi_transform, parse_transform, two_pass,
    TransformQuery,
};
use xust::serve::{Request, Server};
use xust::tree::Document;
use xust::xpath::eval_path_root;

/// Applies one update text to the reference document exactly the way
/// the server's write path does (same parse, same targets, same order).
fn apply_to_reference(reference: &mut Document, update: &str) {
    let mq = parse_multi_transform(update).expect("generated updates parse");
    for (path, op) in &mq.updates {
        let targets = eval_path_root(reference, path);
        apply_update(reference, &targets, op);
    }
}

/// Serves every registered view through one batch (so co-resident views
/// ride a shared pass) and checks each body against a private `two_pass`
/// recompute over the reference.
fn check_views(
    server: &Server,
    texts: &[String],
    reference: &Document,
    context: &str,
) -> Result<(), TestCaseError> {
    let requests: Vec<Request> = (0..texts.len())
        .map(|i| Request::View {
            view: format!("v{i}"),
            doc: "d".into(),
        })
        .collect();
    for (i, result) in server.execute_batch(requests).into_iter().enumerate() {
        let served = match result {
            Ok(resp) => resp.body,
            Err(e) => return Err(TestCaseError::fail(format!("v{i} failed ({context}): {e}"))),
        };
        let q = parse_transform(&texts[i]).expect("view text parses");
        let expected = two_pass(reference, &q).serialize();
        prop_assert_eq!(
            served,
            expected,
            "view v{} diverged from private two_pass ({})",
            i,
            context
        );
    }
    Ok(())
}

proptest! {
    // Full local case count; `PROPTEST_CASES` caps it for quick CI
    // smoke runs, and the dedicated CI fuzz step sets its own count.
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Core level: the union automaton's shared sweep must be
    /// byte-identical to each view's private `two_pass`, and the
    /// recorded targets to a private `eval_path_root`.
    #[test]
    fn shared_pass_matches_private_two_pass(
        doc in arb_doc(),
        specs in prop::collection::vec((arb_path(), arb_op()), 1..8),
    ) {
        let queries: Vec<TransformQuery> =
            specs.iter().map(|(p, op)| build_query(p, *op)).collect();
        let refs: Vec<&TransformQuery> = queries.iter().collect();
        let (results, stats) = multi_view_with_stats(&doc, &refs);
        prop_assert_eq!(results.len(), queries.len());
        prop_assert_eq!(
            stats.shared_views + stats.fallback_views,
            queries.len(),
            "every view is either shared or fallback"
        );
        for (i, (q, r)) in queries.iter().zip(&results).enumerate() {
            prop_assert_eq!(
                r.doc.serialize(),
                two_pass(&doc, q).serialize(),
                "query {} diverged",
                i
            );
            prop_assert_eq!(
                &r.targets,
                &eval_path_root(&doc, &q.path),
                "query {} recorded wrong targets",
                i
            );
        }
    }

    /// Server level: registered views served through batches (shared
    /// passes) stay byte-identical to private recomputes over an
    /// externally maintained reference, across shard layouts {1, 8}
    /// and under interleaved writes (whose eager shared recompute
    /// refills the cache the next batch then hits).
    #[test]
    fn served_views_stay_differential_under_writes(
        base in arb_doc(),
        views in prop::collection::vec((arb_path(), arb_op()), 1..6),
        writes in prop::collection::vec((arb_path(), arb_op()), 0..4),
        shards in prop_oneof![Just(1usize), Just(8usize)],
    ) {
        let server = Server::builder().threads(2).shards(shards).build();
        server.load_doc("d", base.clone());
        let mut texts = Vec::new();
        for (i, (path, op)) in views.iter().enumerate() {
            let text = build_query_text("d", path, *op);
            server.register_view(&format!("v{i}"), &text).unwrap();
            texts.push(text);
        }
        let mut reference = base;
        check_views(&server, &texts, &reference, "before any write")?;
        // Second batch: everything resident now (the first batch's
        // shared pass filled the cache) — must serve the same bytes.
        check_views(&server, &texts, &reference, "warm")?;
        for (step, (path, op)) in writes.iter().enumerate() {
            let text = build_query_text("d", path, *op);
            server.update_doc("d", &text).unwrap();
            apply_to_reference(&mut reference, &text);
            let ctx = format!("after write {step} ({text})");
            check_views(&server, &texts, &reference, &ctx)?;
        }
        prop_assert_eq!(server.store().active_snapshots(), 0);
    }
}

/// Eight `part` elements so eight views each have something to bite on.
const K_DOC: &str = "<db>\
    <p0><x>1</x></p0><p1><x>2</x></p1><p2><x>3</x></p2><p3><x>4</x></p3>\
    <p4><x>5</x></p4><p5><x>6</x></p5><p6><x>7</x></p6><p7><x>8</x></p7>\
    </db>";

fn view_text(i: usize) -> String {
    format!(r#"transform copy $a := doc("db") modify do delete $a/db/p{i} return $a"#)
}

/// A write that invalidates all k resident views of a document must run
/// exactly **one** shared recompute sweep — the acceptance criterion's
/// counter assertion — and leave every view hit-able at the new version.
#[test]
fn write_invalidating_k_views_triggers_one_shared_sweep() {
    let server = Server::builder().threads(2).shards(1).build();
    server.load_doc_str("db", K_DOC).unwrap();
    for i in 0..8 {
        server
            .register_view(&format!("v{i}"), &view_text(i))
            .unwrap();
    }
    for i in 0..8 {
        server
            .handle(&Request::View {
                view: format!("v{i}"),
                doc: "db".into(),
            })
            .unwrap();
    }
    let before = server.stats();
    assert_eq!(before.shared_passes, 0, "no write, no sweep yet");
    // Every view's path reads label `db`, and the insert touches it:
    // all 8 entries are invalidated by this one write.
    server
        .update_doc(
            "db",
            r#"transform copy $a := doc("db") modify do insert <p9/> into $a/db return $a"#,
        )
        .unwrap();
    let after = server.stats();
    assert_eq!(after.delta_recomputed, before.delta_recomputed + 8);
    assert_eq!(
        after.shared_passes, 1,
        "k invalidated views ride ONE factorised sweep"
    );
    assert_eq!(after.shared_pass_views, 8);
    // The sweep refilled the cache: every subsequent read hits, and the
    // bodies reflect the post-write tree.
    let hits_before = after.result_hits;
    let misses_before = after.result_misses;
    for i in 0..8 {
        let served = server
            .handle(&Request::View {
                view: format!("v{i}"),
                doc: "db".into(),
            })
            .unwrap();
        assert!(served.cache_hit);
        assert!(
            served.body.contains("<p9/>"),
            "v{i} must serve the post-write tree: {}",
            served.body
        );
        assert!(!served.body.contains(&format!("<p{i}>")));
    }
    let snap = server.stats();
    assert_eq!(snap.result_hits, hits_before + 8);
    assert_eq!(snap.result_misses, misses_before);
    assert_eq!(snap.shared_passes, 1, "reads after the sweep run no pass");
}

/// A batch carrying k `VIEW` items of the same document answers all the
/// misses with one shared pass; a repeat batch is all cache hits and
/// runs no pass at all.
#[test]
fn batched_views_of_one_document_ride_one_shared_pass() {
    let server = Server::builder().threads(2).shards(1).build();
    server.load_doc_str("db", K_DOC).unwrap();
    for i in 0..8 {
        server
            .register_view(&format!("v{i}"), &view_text(i))
            .unwrap();
    }
    let requests: Vec<Request> = (0..8)
        .map(|i| Request::View {
            view: format!("v{i}"),
            doc: "db".into(),
        })
        .collect();
    let base = Document::parse(K_DOC).unwrap();
    let results = server.execute_batch(requests.clone());
    assert_eq!(results.len(), 8);
    for (i, r) in results.into_iter().enumerate() {
        let resp = r.expect("view serves");
        let expected = two_pass(&base, &parse_transform(&view_text(i)).unwrap()).serialize();
        assert_eq!(resp.body, expected, "batched v{i} diverged");
    }
    let snap = server.stats();
    assert_eq!(snap.shared_passes, 1, "8 cold views, one sweep");
    assert_eq!(snap.shared_pass_views, 8);
    // Repeat: all resident — the group peels every item off as a hit.
    let hits_before = snap.result_hits;
    for r in server.execute_batch(requests) {
        assert!(r.expect("view serves").cache_hit);
    }
    let snap = server.stats();
    assert_eq!(snap.result_hits, hits_before + 8);
    assert_eq!(snap.shared_passes, 1, "resident batch runs no pass");
}

/// Regression (satellite): the write path must not scale its
/// time-under-write with the number of resident views — the per-view
/// work is delta bookkeeping only, and the recompute is one shared
/// sweep. Medians over several writes; the bound is deliberately
/// generous (the pre-fix behaviour was k private sweeps *inside* the
/// maintain loop, which fails it reliably).
#[test]
fn k_view_write_time_comparable_to_one_view_write() {
    fn median_write_micros(k: usize) -> u64 {
        let mut part = String::from("<part><pname>kb</pname><price>9</price></part>");
        part = part.repeat(400);
        let xml = format!("<db>{part}</db>");
        let server = Server::builder().threads(2).shards(1).build();
        server.load_doc_str("db", &xml).unwrap();
        for i in 0..k {
            // Distinct names, same shape: every view reads `price`, so
            // every write below invalidates all of them.
            server
                .register_view(
                    &format!("v{i}"),
                    r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
                )
                .unwrap();
        }
        let update = r#"transform copy $a := doc("db") modify do insert <price>1</price> into $a/db return $a"#;
        let mut samples = Vec::new();
        for round in 0..6 {
            for i in 0..k {
                server
                    .handle(&Request::View {
                        view: format!("v{i}"),
                        doc: "db".into(),
                    })
                    .unwrap();
            }
            let resp = server.update_doc("db", update).unwrap();
            // Skip round 0: it pays the update's one-time compile.
            if round > 0 {
                samples.push(resp.micros.max(1));
            }
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
    let one = median_write_micros(1);
    let eight = median_write_micros(8);
    assert!(
        eight <= one.saturating_mul(20),
        "8-view write {eight}µs vs 1-view write {one}µs: factorisation lost"
    );
}
