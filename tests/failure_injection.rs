//! Failure injection across every layer: malformed inputs must produce
//! errors (never panics, never silently wrong output).

use xust::core::{evaluate_str, parse_transform, two_pass_sax_str, Method, TransformQuery};
use xust::sax::SaxParser;
use xust::tree::Document;
use xust::xpath::parse_path;
use xust::xquery::Engine;

#[test]
fn sax_layer_rejects_malformed_xml() {
    for bad in [
        "",
        "plain text",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a attr></a>",
        "<a x=unquoted/>",
        "<a/><b/>",
        "<a>trailing</a>junk",
        "< a/>",
    ] {
        assert!(
            SaxParser::from_str(bad).collect_events().is_err(),
            "SAX accepted malformed input: {bad:?}"
        );
        assert!(
            Document::parse(bad).is_err(),
            "tree parser accepted malformed input: {bad:?}"
        );
    }
}

#[test]
fn sax_depth_limit_defends_stack() {
    let mut xml = String::new();
    for _ in 0..6000 {
        xml.push_str("<d>");
    }
    // No closing tags needed: the limit trips during opening.
    let err = SaxParser::from_str(&xml).collect_events();
    assert!(err.is_err());
}

#[test]
fn xpath_layer_rejects_malformed_paths() {
    for bad in [
        "", "/", "//", "a/", "a//", "a[", "a[]", "a[b", "a]b", "a[b =]", "a[= 'x']", "a[not b]",
        "a b", "a[@]", "$x/a",
    ] {
        assert!(parse_path(bad).is_err(), "X parser accepted: {bad:?}");
    }
}

#[test]
fn transform_layer_rejects_malformed_queries() {
    for bad in [
        "",
        "transform",
        r#"transform copy $a := doc("T") return $a"#,
        r#"transform copy $a := doc("T") modify do delete $a/x"#,
        r#"transform copy $a := doc(T) modify do delete $a/x return $a"#,
        r#"transform copy $a := doc("T") modify do insert into $a/x return $a"#,
        r#"transform copy $a := doc("T") modify do replace $a/x with return $a"#,
        r#"transform copy $a := doc("T") modify do rename $a/x as return $a"#,
        r#"transform copy $a := doc("T") modify do delete $a/x return $a trailing"#,
    ] {
        assert!(parse_transform(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn xquery_layer_rejects_malformed_queries() {
    let mut e = Engine::new();
    e.load_doc("d", Document::parse("<a/>").unwrap());
    for bad in [
        "for $x in",
        "let $x doc(\"d\")",
        "if (1) then 2",
        "<a></b>",
        "doc(\"d\")/",
        "some $x in doc(\"d\")",
        "$x/",
        "declare function f { 1 }; 1",
    ] {
        assert!(e.eval_str(bad).is_err(), "engine accepted: {bad:?}");
    }
}

#[test]
fn xquery_runtime_errors_are_errors_not_panics() {
    let mut e = Engine::new();
    e.load_doc("d", Document::parse("<a>x</a>").unwrap());
    for bad in [
        "$nope",
        "doc(\"missing\")/a",
        "nosuchfn(1)",
        "empty(1, 2)",
        "'str'/child",
        "element {''} {1}",
    ] {
        assert!(e.eval_str(bad).is_err(), "engine evaluated: {bad:?}");
    }
}

#[test]
fn streaming_transform_propagates_parse_errors() {
    let q = TransformQuery::delete("d", parse_path("//x").unwrap());
    for bad in ["<a><b></a>", "<a>", "nope"] {
        assert!(two_pass_sax_str(bad, &q).is_err(), "streamed: {bad:?}");
    }
}

#[test]
fn evaluate_str_surfaces_all_error_paths() {
    let doc = Document::parse("<a/>").unwrap();
    for m in Method::ALL {
        assert!(evaluate_str(&doc, "not a query", m).is_err(), "{m}");
    }
    // Querying a different doc name than loaded is fine for DOM methods
    // (the name is part of the query identity only); parse errors aren't.
    assert!(evaluate_str(
        &doc,
        r#"transform copy $a := doc("x") modify do delete $a/[ return $a"#,
        Method::TwoPass
    )
    .is_err());
}

#[test]
fn empty_and_degenerate_documents() {
    let q = TransformQuery::delete("d", parse_path("//x").unwrap());
    // Empty document: every DOM method returns an empty document.
    let empty = Document::new();
    for m in [
        Method::CopyUpdate,
        Method::Naive,
        Method::TopDown,
        Method::TwoPass,
    ] {
        let out = xust::core::evaluate(&empty, &q, m).unwrap();
        assert_eq!(out.root(), None, "{m}");
    }
    // Single-element document.
    let tiny = Document::parse("<x/>").unwrap();
    for m in [
        Method::CopyUpdate,
        Method::Naive,
        Method::TopDown,
        Method::TwoPass,
    ] {
        let out = xust::core::evaluate(&tiny, &q, m).unwrap();
        assert_eq!(out.serialize(), "", "{m}: root x must be deleted");
    }
}
