//! Failure injection across every layer: malformed inputs must produce
//! errors (never panics, never silently wrong output), and aborted
//! streaming sessions must release their store snapshots without
//! poisoning the server.

use xust::core::{evaluate_str, parse_transform, two_pass_sax_str, Method, TransformQuery};
use xust::sax::{SaxEvent, SaxParser};
use xust::serve::{Request, Server};
use xust::tree::Document;
use xust::xpath::parse_path;
use xust::xquery::Engine;

#[test]
fn sax_layer_rejects_malformed_xml() {
    for bad in [
        "",
        "plain text",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a attr></a>",
        "<a x=unquoted/>",
        "<a/><b/>",
        "<a>trailing</a>junk",
        "< a/>",
    ] {
        assert!(
            SaxParser::from_str(bad).collect_events().is_err(),
            "SAX accepted malformed input: {bad:?}"
        );
        assert!(
            Document::parse(bad).is_err(),
            "tree parser accepted malformed input: {bad:?}"
        );
    }
}

#[test]
fn sax_depth_limit_defends_stack() {
    let mut xml = String::new();
    for _ in 0..6000 {
        xml.push_str("<d>");
    }
    // No closing tags needed: the limit trips during opening.
    let err = SaxParser::from_str(&xml).collect_events();
    assert!(err.is_err());
}

#[test]
fn xpath_layer_rejects_malformed_paths() {
    for bad in [
        "", "/", "//", "a/", "a//", "a[", "a[]", "a[b", "a]b", "a[b =]", "a[= 'x']", "a[not b]",
        "a b", "a[@]", "$x/a",
    ] {
        assert!(parse_path(bad).is_err(), "X parser accepted: {bad:?}");
    }
}

#[test]
fn transform_layer_rejects_malformed_queries() {
    for bad in [
        "",
        "transform",
        r#"transform copy $a := doc("T") return $a"#,
        r#"transform copy $a := doc("T") modify do delete $a/x"#,
        r#"transform copy $a := doc(T) modify do delete $a/x return $a"#,
        r#"transform copy $a := doc("T") modify do insert into $a/x return $a"#,
        r#"transform copy $a := doc("T") modify do replace $a/x with return $a"#,
        r#"transform copy $a := doc("T") modify do rename $a/x as return $a"#,
        r#"transform copy $a := doc("T") modify do delete $a/x return $a trailing"#,
    ] {
        assert!(parse_transform(bad).is_err(), "accepted: {bad:?}");
    }
}

#[test]
fn xquery_layer_rejects_malformed_queries() {
    let mut e = Engine::new();
    e.load_doc("d", Document::parse("<a/>").unwrap());
    for bad in [
        "for $x in",
        "let $x doc(\"d\")",
        "if (1) then 2",
        "<a></b>",
        "doc(\"d\")/",
        "some $x in doc(\"d\")",
        "$x/",
        "declare function f { 1 }; 1",
    ] {
        assert!(e.eval_str(bad).is_err(), "engine accepted: {bad:?}");
    }
}

#[test]
fn xquery_runtime_errors_are_errors_not_panics() {
    let mut e = Engine::new();
    e.load_doc("d", Document::parse("<a>x</a>").unwrap());
    for bad in [
        "$nope",
        "doc(\"missing\")/a",
        "nosuchfn(1)",
        "empty(1, 2)",
        "'str'/child",
        "element {''} {1}",
    ] {
        assert!(e.eval_str(bad).is_err(), "engine evaluated: {bad:?}");
    }
}

#[test]
fn streaming_transform_propagates_parse_errors() {
    let q = TransformQuery::delete("d", parse_path("//x").unwrap());
    for bad in ["<a><b></a>", "<a>", "nope"] {
        assert!(two_pass_sax_str(bad, &q).is_err(), "streamed: {bad:?}");
    }
}

#[test]
fn evaluate_str_surfaces_all_error_paths() {
    let doc = Document::parse("<a/>").unwrap();
    for m in Method::ALL {
        assert!(evaluate_str(&doc, "not a query", m).is_err(), "{m}");
    }
    // Querying a different doc name than loaded is fine for DOM methods
    // (the name is part of the query identity only); parse errors aren't.
    assert!(evaluate_str(
        &doc,
        r#"transform copy $a := doc("x") modify do delete $a/[ return $a"#,
        Method::TwoPass
    )
    .is_err());
}

// ---- streaming sessions ----

const SESSION_QUERY: &str =
    r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;

fn session_server() -> Server {
    let s = Server::builder().threads(2).shards(4).build();
    s.load_doc_str("db", "<db><part><price>9</price><n>kb</n></part></db>")
        .unwrap();
    s
}

/// After any failed or abandoned session, the store must be fully
/// usable: no leaked snapshot pins, loads and requests still work.
fn assert_store_not_poisoned(server: &Server) {
    assert_eq!(server.store().active_snapshots(), 0, "leaked snapshot pin");
    server
        .load_doc_str("fresh", "<f><price>1</price></f>")
        .unwrap();
    let out = server
        .handle(&Request::Transform {
            doc: "fresh".into(),
            query: SESSION_QUERY.into(),
        })
        .unwrap();
    assert_eq!(out.body, "<f/>");
    assert!(server.remove_doc("fresh"));
}

#[test]
fn streaming_session_truncated_input_is_an_error_and_releases_snapshot() {
    let server = session_server();
    let mut session = server.begin_stream(SESSION_QUERY).unwrap();
    assert_eq!(server.store().active_snapshots(), 1);
    // Stream only a prefix of the document, then try to move on.
    let mut p = SaxParser::from_str("<db><part><price>9</price></part></db>");
    for _ in 0..3 {
        session.feed(p.next_event().unwrap().unwrap()).unwrap();
    }
    assert!(session.begin_replay().is_err(), "truncated pass 1 accepted");
    drop(session);
    assert_store_not_poisoned(&server);
}

#[test]
fn streaming_session_malformed_events_mid_stream_error_not_panic() {
    let server = session_server();
    // Orphan end tag as the very first event.
    let mut session = server.begin_stream(SESSION_QUERY).unwrap();
    assert!(session.feed(SaxEvent::end("part")).is_err());
    drop(session);
    // Content after the root element closed.
    let mut session = server.begin_stream(SESSION_QUERY).unwrap();
    session.feed(SaxEvent::start("db")).unwrap();
    session.feed(SaxEvent::end("db")).unwrap();
    assert!(session.feed(SaxEvent::start("extra")).is_err());
    drop(session);
    // Pass-2 stream truncated relative to pass 1.
    let mut session = server.begin_stream(SESSION_QUERY).unwrap();
    session.feed(SaxEvent::start("db")).unwrap();
    session.feed(SaxEvent::end("db")).unwrap();
    session.begin_replay().unwrap();
    session.replay(SaxEvent::start("db")).unwrap();
    assert!(session.finish().is_err(), "unbalanced pass 2 accepted");
    assert_store_not_poisoned(&server);
}

#[test]
fn streaming_session_client_disconnects_release_snapshots() {
    let server = session_server();
    // Disconnect at every stage of the protocol: mid-pass-1, between
    // passes, and mid-replay. Dropping the session is all a vanished
    // client does — the snapshot count must return to zero each time.
    {
        let mut session = server.begin_stream(SESSION_QUERY).unwrap();
        session.feed(SaxEvent::start("db")).unwrap();
        assert_eq!(server.store().active_snapshots(), 1);
    }
    assert_eq!(server.store().active_snapshots(), 0);
    {
        let mut session = server.begin_stream(SESSION_QUERY).unwrap();
        session.feed(SaxEvent::start("db")).unwrap();
        session.feed(SaxEvent::end("db")).unwrap();
        session.begin_replay().unwrap();
    }
    assert_eq!(server.store().active_snapshots(), 0);
    {
        let mut session = server.begin_stream(SESSION_QUERY).unwrap();
        session.feed(SaxEvent::start("db")).unwrap();
        session.feed(SaxEvent::end("db")).unwrap();
        session.begin_replay().unwrap();
        let _ = session.replay(SaxEvent::start("db")).unwrap();
    }
    assert_store_not_poisoned(&server);
}

#[test]
fn streaming_session_bad_query_counts_failure_without_snapshot_leak() {
    let server = session_server();
    assert!(server.begin_stream("garbage").is_err());
    assert_eq!(server.stats().failures, 1);
    // Concurrent sessions are independent: one erroring doesn't disturb
    // another in flight.
    let mut good = server.begin_stream(SESSION_QUERY).unwrap();
    let mut bad = server.begin_stream(SESSION_QUERY).unwrap();
    assert_eq!(server.store().active_snapshots(), 2);
    assert!(bad.feed(SaxEvent::end("oops")).is_err());
    drop(bad);
    assert_eq!(server.store().active_snapshots(), 1);
    let xml = "<db><part><price>9</price><n>kb</n></part></db>";
    let mut p = SaxParser::from_str(xml);
    while let Some(ev) = p.next_event().unwrap() {
        good.feed(ev).unwrap();
    }
    good.begin_replay().unwrap();
    let mut out = Vec::new();
    let mut p = SaxParser::from_str(xml);
    while let Some(ev) = p.next_event().unwrap() {
        out.extend(good.replay(ev).unwrap());
    }
    let (tail, _) = good.finish().unwrap();
    out.extend(tail);
    assert_eq!(
        String::from_utf8(out).unwrap(),
        "<db><part><n>kb</n></part></db>"
    );
    assert_store_not_poisoned(&server);
}

// ---- the live write path ----

/// Every way an `UPDATE` can fail — malformed syntax, doc-name
/// mismatch, unknown document, file-backed document (a mid-apply error
/// inside the store's write closure) — must be all-or-nothing: shard
/// epochs unchanged, the stored tree unchanged, every cached view
/// result intact, no leaked snapshot pins.
#[test]
fn failed_updates_leave_epochs_and_caches_intact() {
    use xust::serve::ServeError;
    let server = Server::builder().threads(2).shards(4).build();
    server
        .load_doc_str("db", "<db><part><price>9</price><n>kb</n></part></db>")
        .unwrap();
    let dir = std::env::temp_dir();
    let file = dir.join("xust_failure_update_disk.xml");
    std::fs::write(&file, "<db><part/></db>").unwrap();
    server.load_doc_file("disk", &file).unwrap();
    server
        .register_view(
            "public",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
        )
        .unwrap();
    // Warm a cached view result so failures have something to corrupt.
    let warm = server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(server.view_results().len(), 1);
    let epochs_before = server.store().epochs();
    let results_hits_before = server.view_results().hits();

    // Malformed update expression.
    assert!(matches!(
        server.update_doc("db", "garbage"),
        Err(ServeError::Parse(_))
    ));
    // Parses, but reads a different document than it targets.
    assert!(matches!(
        server.update_doc(
            "db",
            r#"transform copy $a := doc("other") modify do delete $a//price return $a"#
        ),
        Err(ServeError::Parse(_))
    ));
    // Unknown document.
    assert!(matches!(
        server.update_doc(
            "nope",
            r#"transform copy $a := doc("nope") modify do delete $a//price return $a"#
        ),
        Err(ServeError::UnknownDoc(_))
    ));
    // File-backed document: the failure happens *inside* the store's
    // write closure, after the shard write lock is taken — the rollback
    // path of `DocStore::update`.
    assert!(matches!(
        server.update_doc(
            "disk",
            r#"transform copy $a := doc("disk") modify do delete $a//part return $a"#
        ),
        Err(ServeError::Unsupported(_))
    ));
    // Malformed multi-update list.
    assert!(matches!(
        server.update_doc(
            "db",
            r#"transform copy $a := doc("db") modify do (delete $a//price, obliterate $a//n) return $a"#
        ),
        Err(ServeError::Parse(_))
    ));

    assert_eq!(
        server.store().epochs(),
        epochs_before,
        "failed writes must not bump any shard epoch"
    );
    assert_eq!(server.stats().update_requests, 0);
    assert_eq!(server.stats().failures, 5);
    assert_eq!(
        server.view_results().len(),
        1,
        "failed writes must not drop cached entries"
    );
    // The cached entry still serves — same epoch, same body, via a hit.
    let again = server
        .handle(&Request::View {
            view: "public".into(),
            doc: "db".into(),
        })
        .unwrap();
    assert_eq!(again.body, warm.body);
    assert_eq!(server.view_results().hits(), results_hits_before + 1);
    assert_eq!(server.store().active_snapshots(), 0);

    // And the write path itself still works after all that.
    let ok = server
        .update_doc(
            "db",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
        )
        .unwrap();
    assert!(ok.body.starts_with("updated db epoch="));
    assert_eq!(server.stats().update_requests, 1);
    std::fs::remove_file(&file).ok();
}

#[test]
fn empty_and_degenerate_documents() {
    let q = TransformQuery::delete("d", parse_path("//x").unwrap());
    // Empty document: every DOM method returns an empty document.
    let empty = Document::new();
    for m in [
        Method::CopyUpdate,
        Method::Naive,
        Method::TopDown,
        Method::TwoPass,
    ] {
        let out = xust::core::evaluate(&empty, &q, m).unwrap();
        assert_eq!(out.root(), None, "{m}");
    }
    // Single-element document.
    let tiny = Document::parse("<x/>").unwrap();
    for m in [
        Method::CopyUpdate,
        Method::Naive,
        Method::TopDown,
        Method::TwoPass,
    ] {
        let out = xust::core::evaluate(&tiny, &q, m).unwrap();
        assert_eq!(out.serialize(), "", "{m}: root x must be deleted");
    }
}
