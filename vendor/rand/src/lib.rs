#![warn(missing_docs)]
//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *tiny* subset of the `rand` 0.8 API that `xust-xmark` uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer and float ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256** seeded via SplitMix64 — fast, well distributed, and
//! fully deterministic for a given seed (which is all the XMark
//! generator needs; it never claims bit-compatibility with upstream
//! `rand`).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire).
pub fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Types uniformly sampleable from half-open and inclusive ranges.
///
/// The generic `impl SampleRange<T> for Range<T>` below unifies the
/// range's element type with `gen_range`'s return type, which is what
/// lets integer-literal ranges (`gen_range(1..=5)`) infer through the
/// default `i32` fallback exactly as with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: $t, hi: $t, inclusive: bool, rng: &mut dyn RngCore) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform(lo: f64, hi: f64, _inclusive: bool, rng: &mut dyn RngCore) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform(lo: f32, hi: f32, _inclusive: bool, rng: &mut dyn RngCore) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + rng.next_f64() as f32 * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u32> = (0..32).map(|_| a.gen_range(0..1000u32)).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.gen_range(0..1000u32)).collect();
        let vc: Vec<u32> = (0..32).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let v = r.gen_range(1..=12);
            assert!((1..=12).contains(&v));
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
