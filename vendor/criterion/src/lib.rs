#![warn(missing_docs)]
//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of criterion's API that the `xust-bench` benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`, `throughput`),
//! `bench_function`/`bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after one warm-up batch, each
//! benchmark runs `sample_size` timed iterations (or until twice the
//! configured measurement time elapses) and reports min / mean / max
//! wall-clock per iteration, plus throughput when configured. Set
//! `CRITERION_SAMPLES` to override sample counts globally. `--test`
//! (passed by `cargo test` to `harness = false` targets) runs every
//! benchmark exactly once, unmeasured.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. Only a naming-compatibility
/// shim here: every batch has size 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `function / parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Labels a benchmark `function` with a `parameter` value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Labels a benchmark by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// The top-level harness handle passed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
            test_mode: self.test_mode,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, |b| f(b));
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget (a soft cap here).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (a soft cap here).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; this prints nothing).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            id.render()
        } else {
            format!("{}/{}", self.name, id.render())
        };
        let samples = match std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) => n.max(1),
            None => self.sample_size,
        };
        let mut b = Bencher {
            durations: Vec::with_capacity(samples),
            test_mode: true,
            samples: 1,
            budget: self.warm_up_time,
        };
        // Warm-up / test-mode pass: one untimed iteration.
        f(&mut b);
        if self.test_mode {
            println!("bench {label}: ok (test mode, 1 iteration)");
            return;
        }
        b = Bencher {
            durations: Vec::with_capacity(samples),
            test_mode: false,
            samples,
            budget: self.measurement_time * 2,
        };
        f(&mut b);
        report(&label, &b.durations, self.throughput);
    }
}

fn report(label: &str, durations: &[Duration], throughput: Option<Throughput>) {
    if durations.is_empty() {
        println!("bench {label}: no samples collected");
        return;
    }
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / mean.as_secs_f64() / 1e6;
            format!("  thrpt: {mbps:.1} MB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / mean.as_secs_f64();
            format!("  thrpt: {eps:.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "bench {label}: time [{} .. {} .. {}] ({} samples){tp}",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        durations.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    durations: Vec<Duration>,
    test_mode: bool,
    samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.durations.push(t.elapsed());
            if self.test_mode || started.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let started = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.durations.push(t.elapsed());
            if self.test_mode || started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group function compatible with upstream
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::from("solo").render(), "solo");
        assert_eq!(BenchmarkId::from_parameter(7).render(), "7");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // warm-up (1) + samples (3)
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut setups = 0;
        let mut routines = 0;
        g.bench_with_input(BenchmarkId::new("b", 1), &5, |b, _| {
            b.iter_batched(|| setups += 1, |()| routines += 1, BatchSize::LargeInput)
        });
        assert_eq!(setups, 3);
        assert_eq!(routines, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(50);
        let mut runs = 0;
        g.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
