#![warn(missing_docs)]
//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of proptest that its property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, range and tuple
//! strategies, [`collection::vec`], [`option::of`], [`sample::select`],
//! `bool::ANY`, [`Just`], the [`proptest!`]/[`prop_oneof!`]/
//! [`prop_assert!`]/[`prop_assert_eq!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via the test's
//!   own assertion message) but is not minimised;
//! * **deterministic seeding** — each test derives its RNG seed from its
//!   module path and name, so runs are reproducible without a
//!   `proptest-regressions` directory. Set `PROPTEST_CASES` to cap the
//!   number of cases per test (useful for quick CI runs).

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Strategies over `Option<T>`.
pub mod option {
    use crate::strategy::{OptionOf, Strategy};

    /// Yields `None` half the time and `Some(inner)` the other half.
    pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
        OptionOf { inner }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies that sample from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Picks one element of `values` uniformly per case.
    pub fn select<T: Clone + 'static>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select needs at least one value"
        );
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len())].clone()
        }
    }
}

/// Everything a property test needs, glob-importable.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name),
                ));
                for case in 0..cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest case {}/{} of {} failed: {}",
                            case + 1,
                            cases,
                            stringify!($name),
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_tree() -> impl Strategy<Value = usize> {
        (1usize..4).prop_recursive(3, 16, 4, |inner| {
            (1usize..4, prop::collection::vec(inner, 0..3))
                .prop_map(|(n, kids)| n + kids.into_iter().sum::<usize>())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Doc comments on cases must be accepted.
        #[test]
        fn ranges_and_tuples(a in 0usize..10, (b, c) in (0u8..7, prop::bool::ANY)) {
            prop_assert!(a < 10);
            prop_assert!(b < 7, "b out of range: {}", b);
            let _ = c;
        }

        #[test]
        fn combinators(v in prop::collection::vec(prop_oneof![Just(1), Just(2)], 1..5),
                       o in prop::option::of(0..3usize),
                       s in prop::sample::select(vec!["x", "y"])) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| *x == 1 || *x == 2));
            if let Some(i) = o { prop_assert!(i < 3); }
            prop_assert!(s == "x" || s == "y");
        }

        #[test]
        fn recursion_terminates(n in small_tree()) {
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("fixed");
        let mut b = crate::test_runner::TestRng::for_test("fixed");
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0usize..1) {
                prop_assert!(x > 0, "x was {}", x);
            }
        }
        always_fails();
    }
}
