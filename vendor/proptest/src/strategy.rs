//! The [`Strategy`] trait and the combinators the xust tests use.

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value *tree* (no shrinking): a
/// strategy simply produces one value per case from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `expand`
    /// wraps an inner strategy into a branch, applied up to `depth`
    /// times. `desired_size` and `expected_branch_size` are accepted for
    /// API compatibility but unused — recursion depth alone bounds the
    /// generated structures.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At every level, half the mass stays on leaves so the
            // expected size remains bounded.
            current = Union::new(vec![leaf.clone(), expand(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erases the strategy so heterogeneous implementations can be
    /// stored together (e.g. by [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len());
        self.variants[i].generate(rng)
    }
}

/// See [`crate::option::of`].
#[derive(Debug, Clone)]
pub struct OptionOf<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionOf<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Length bounds for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// Generic over `rand::SampleUniform` (rather than one impl per concrete
// integer type) so integer-literal ranges unify with the value type and
// infer through the default fallback, as in upstream proptest.
impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_uniform(self.start, self.end, false, rng.core())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng.core())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
