//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is meaningful in this stand-in;
/// the struct still supports functional-update syntax
/// (`ProptestConfig { cases: 128, ..ProptestConfig::default() }`) for
/// source compatibility with upstream.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// `cases`, capped by the `PROPTEST_CASES` environment variable when
    /// set (for fast CI smoke runs).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

/// A failed test case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> TestCaseError {
        TestCaseError(s)
    }
}

/// The RNG driving generation: seeded from the test's fully-qualified
/// name so every run of a given test replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        self.below_u64(bound as u64) as usize
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: zero bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// The underlying entropy source, for `rand`-generic samplers.
    pub fn core(&mut self) -> &mut dyn RngCore {
        &mut self.inner
    }
}
