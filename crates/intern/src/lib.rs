#![warn(missing_docs)]
//! `xust-intern` — symbol interning for XML labels.
//!
//! Every evaluation method in the workspace — `topDown`'s selecting NFA,
//! the two-pass filtering NFA, and the fused `twoPassSAX` — spends its
//! inner loop comparing element labels against transition labels. With
//! `String` names that is a byte-compare per node/event; with interned
//! [`Sym`] handles it is a single `u32` compare.
//!
//! The design rules are:
//!
//! * **One global interner.** All production code interns through
//!   [`Interner::global`] (or the [`intern`] shorthand), so a `Sym`
//!   means the same label everywhere in the process: in a parsed
//!   document, in a compiled automaton, across every `DocStore` shard
//!   and snapshot. Two `Sym`s are equal iff their labels are equal.
//! * **Interned strings live forever.** Labels are drawn from schemas,
//!   not data values, so the set is small and bounded; leaking the
//!   backing storage buys lock-free `Sym → &'static str` resolution
//!   with no reference counting on any hot path.
//! * **Interning is concurrent.** [`Interner`] takes a read lock on the
//!   fast path (label already known) and a write lock only for the
//!   first occurrence of a label, so parallel parsers and batch
//!   executors can share it without serializing.
//!
//! Fresh [`Interner`] instances exist for tests of the interner itself;
//! `Sym`s from different interners must never be mixed.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned label: a dense `u32` handle that compares, hashes, and
/// copies in O(1). Equality of `Sym`s obtained from the same interner is
/// equivalent to equality of the underlying strings. The `Ord` instance
/// follows allocation order (first-interned sorts first), *not*
/// lexicographic order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw handle (an index into the owning interner's table).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Resolves this symbol against the global interner.
    ///
    /// All `Sym`s embedded in documents, events, and automata come from
    /// [`Interner::global`], so this is the right resolution everywhere
    /// outside interner-specific tests (which use [`Interner::resolve`]).
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({} {:?})", self.0, self.as_str())
    }
}

/// Conversion into a [`Sym`] via the global interner — lets APIs accept
/// `&str`, `String`, or an already-interned `Sym` interchangeably, so a
/// hot caller holding a `Sym` never re-interns while test code keeps
/// passing literals.
pub trait IntoSym {
    /// Produces the interned symbol.
    fn into_sym(self) -> Sym;
}

impl IntoSym for Sym {
    fn into_sym(self) -> Sym {
        self
    }
}

impl IntoSym for &str {
    fn into_sym(self) -> Sym {
        intern(self)
    }
}

impl IntoSym for String {
    fn into_sym(self) -> Sym {
        intern(&self)
    }
}

impl IntoSym for &String {
    fn into_sym(self) -> Sym {
        intern(self)
    }
}

// String comparisons resolve the symbol (cold paths and assertions; the
// hot paths compare `Sym == Sym`, which is the derived `u32` compare).
impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        intern(&s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        intern(s)
    }
}

/// Interns `label` in the global interner.
pub fn intern(label: &str) -> Sym {
    Interner::global().intern(label)
}

struct Inner {
    map: HashMap<&'static str, Sym>,
    len: usize,
}

/// Number of doubling chunks in the resolution table: chunk `k` holds
/// `2^k` entries, covering handles `[2^k - 1, 2^(k+1) - 1)` — 32 chunks
/// cover ids `0..u32::MAX`, matching the capacity guard in `intern`
/// (id `u32::MAX` is never issued).
const CHUNK_COUNT: usize = 32;

/// A concurrent string interner. See the module docs for the sharing
/// rules; almost all code wants [`Interner::global`], not a fresh one.
///
/// Writes (first occurrence of a label) go through the `RwLock`;
/// resolution is **lock-free**: symbols index a chunked table of
/// `OnceLock` slots (chunk `k` spans handles `[2^k - 1, 2^(k+1) - 1)`),
/// so `Sym → &'static str` costs two acquire loads and no lock — the
/// price serialization pays per element stays contention-free however
/// many serve workers resolve concurrently.
pub struct Interner {
    inner: RwLock<Inner>,
    /// The resolution table. A slot is initialized (under the write
    /// lock) before its `Sym` is ever handed out, so any thread that
    /// legitimately holds a `Sym` finds its slot set.
    chunks: [OnceLock<Box<[OnceLock<&'static str>]>>; CHUNK_COUNT],
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits a symbol handle into (chunk, offset) in the doubling layout.
#[inline]
fn chunk_of(index: usize) -> (usize, usize) {
    let k = usize::BITS as usize - 1 - (index + 1).leading_zeros() as usize;
    (k, index + 1 - (1 << k))
}

impl Interner {
    /// Creates an empty interner (for interner-local tests; production
    /// code shares [`Interner::global`]).
    pub fn new() -> Interner {
        Interner {
            inner: RwLock::new(Inner {
                map: HashMap::new(),
                len: 0,
            }),
            chunks: [const { OnceLock::new() }; CHUNK_COUNT],
        }
    }

    /// The process-global interner every layer of the stack shares: the
    /// SAX parser resolves names through it at scan time, automata
    /// compile their transition labels through it, and `xust-serve`
    /// hands it out for every shard and snapshot.
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(Interner::new)
    }

    /// Interns `label`, returning its symbol. O(1) amortized; takes a
    /// read lock when the label is already known.
    pub fn intern(&self, label: &str) -> Sym {
        if let Some(&sym) = self
            .inner
            .read()
            .expect("interner lock poisoned")
            .map
            .get(label)
        {
            return sym;
        }
        let mut inner = self.inner.write().expect("interner lock poisoned");
        // Double-check: another thread may have interned it between the
        // read unlock and the write lock.
        if let Some(&sym) = inner.map.get(label) {
            return sym;
        }
        // Reject at u32::MAX - 1: the chunked table covers 0..u32::MAX,
        // and try_from alone would admit the one id past its last chunk.
        assert!(inner.len < u32::MAX as usize, "interner table full");
        let id = inner.len as u32;
        // Leak the backing storage: the label vocabulary is bounded (see
        // module docs), and a 'static str makes resolution allocation-
        // and lock-free.
        let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
        let sym = Sym(id);
        // Publish the resolution slot BEFORE the map entry: once a Sym
        // can be observed anywhere, its slot is set.
        let (k, off) = chunk_of(inner.len);
        let chunk = self.chunks[k].get_or_init(|| vec![OnceLock::new(); 1 << k].into_boxed_slice());
        chunk[off].set(leaked).expect("slot written once");
        inner.len += 1;
        inner.map.insert(leaked, sym);
        sym
    }

    /// Looks up `label` without interning it. `None` means no document,
    /// query, or event in the process has ever used this label — so
    /// nothing can match it.
    pub fn lookup(&self, label: &str) -> Option<Sym> {
        self.inner
            .read()
            .expect("interner lock poisoned")
            .map
            .get(label)
            .copied()
    }

    /// Resolves a symbol to its label — lock-free (two acquire loads
    /// into the chunked table, no `RwLock`).
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &'static str {
        let (k, off) = chunk_of(sym.0 as usize);
        self.chunks[k]
            .get()
            .and_then(|chunk| chunk[off].get())
            .copied()
            .expect("Sym resolved against an interner that did not issue it")
    }

    /// Number of distinct labels interned so far — exposed so a serving
    /// deployment can watch vocabulary growth (see the trust note in
    /// DESIGN.md: untrusted inputs minting unbounded fresh labels grow
    /// this table, and the table never shrinks).
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner lock poisoned").len
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("part");
        let b = i.intern("part");
        let c = i.intern("supplier");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "part");
        assert_eq!(i.resolve(c), "supplier");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_does_not_insert() {
        let i = Interner::new();
        assert_eq!(i.lookup("ghost"), None);
        assert!(i.is_empty());
        let s = i.intern("ghost");
        assert_eq!(i.lookup("ghost"), Some(s));
    }

    #[test]
    fn global_round_trips_via_as_str() {
        let s = intern("xust-intern-test-label");
        assert_eq!(s.as_str(), "xust-intern-test-label");
        assert_eq!("xust-intern-test-label".into_sym(), s);
        assert_eq!(String::from("xust-intern-test-label").into_sym(), s);
        assert_eq!(s.into_sym(), s);
        assert_eq!(format!("{s}"), "xust-intern-test-label");
        assert!(format!("{s:?}").contains("xust-intern-test-label"));
    }

    #[test]
    fn resolution_crosses_chunk_boundaries() {
        // The chunked table doubles at handles 1, 3, 7, 15, …; intern
        // enough labels to span several chunks and resolve every one.
        let i = Interner::new();
        let syms: Vec<Sym> = (0..1000).map(|n| i.intern(&format!("label-{n}"))).collect();
        assert_eq!(i.len(), 1000);
        for (n, s) in syms.iter().enumerate() {
            assert_eq!(i.resolve(*s), format!("label-{n}"));
            assert_eq!(i.lookup(&format!("label-{n}")), Some(*s));
        }
    }

    #[test]
    fn concurrent_interning_resolves_identically() {
        // N threads race to intern the same label set in different
        // orders; every thread must observe the same label → Sym map.
        use std::sync::Arc;
        let interner = Arc::new(Interner::new());
        let labels: Vec<String> = (0..64).map(|i| format!("label{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let interner = Arc::clone(&interner);
                let labels = labels.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..labels.len() {
                        // Different threads walk the labels in different
                        // orders so first-intern races actually happen.
                        let ix = (i * 7 + t * 13) % labels.len();
                        out.push((ix, interner.intern(&labels[ix])));
                    }
                    out
                })
            })
            .collect();
        let mut reference: HashMap<usize, Sym> = HashMap::new();
        for h in handles {
            for (ix, sym) in h.join().unwrap() {
                match reference.get(&ix) {
                    Some(&prev) => assert_eq!(prev, sym, "thread disagreed on label{ix}"),
                    None => {
                        reference.insert(ix, sym);
                    }
                }
            }
        }
        assert_eq!(interner.len(), labels.len());
        for (ix, sym) in reference {
            assert_eq!(interner.resolve(sym), labels[ix]);
        }
    }
}
