//! `xust-bench` — shared workload definitions and helpers for the
//! experiment harness (Section 7 of the paper).
//!
//! The workload is Fig. 11 verbatim: ten insertion transform queries that
//! differ only in their embedded XPath expressions, evaluated over XMark
//! documents. `cargo run -p xust-bench --release --bin experiments` prints
//! the tables/series behind every figure; the Criterion benches under
//! `benches/` regenerate the same comparisons with statistical rigor at
//! reduced scale.

pub mod strbaseline;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use xust_compose::UserQuery;
use xust_core::{evaluate, two_pass_sax_str, Method, TransformQuery};
use xust_tree::Document;
use xust_xmark::{generate, generate_to_file, XmarkConfig};
use xust_xpath::parse_path;

/// The embedded XPath expressions U1–U10 of Fig. 11.
pub const WORKLOAD: [&str; 10] = [
    "/site/people/person",
    "/site/people/person[@id = \"person10\"]",
    "/site/people/person[profile/age > 20]",
    "/site/regions//item",
    "/site//description",
    "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
    "/site/open_auctions/open_auction[bidder/increase>5]/annotation[happiness < 20]/description//text",
    "/site/open_auctions/open_auction[initial > 10 and reserve >50]/bidder",
    "/site/regions//item[location =\"United States\"]",
    "/site//open_auctions/open_auction[not(@id =\"open_auction2\")]/bidder[increase > 10]",
];

/// Display name of Uᵢ (1-based).
pub fn u_name(i: usize) -> String {
    format!("U{}", i + 1)
}

/// The constant element inserted by the insertion transform queries.
pub fn insert_element() -> Document {
    Document::parse("<xust-mark><origin>bench</origin></xust-mark>").expect("static XML")
}

/// The insertion transform query for workload entry `i` (0-based).
pub fn insert_query(i: usize) -> TransformQuery {
    TransformQuery::insert(
        "xmark",
        parse_path(WORKLOAD[i]).expect("workload paths parse"),
        insert_element(),
    )
}

/// A delete variant (used by the composition pairs).
pub fn delete_query(i: usize) -> TransformQuery {
    TransformQuery::delete(
        "xmark",
        parse_path(WORKLOAD[i]).expect("workload paths parse"),
    )
}

/// A transform query over workload path `i` for any update kind — the
/// `ops` experiment behind the paper's remark that "transform queries of
/// the other types consistently yield qualitatively similar results".
/// Kinds: `insert`, `insert-first`, `insert-before`, `insert-after`,
/// `delete`, `replace`, `rename`.
pub fn op_query(i: usize, kind: &str) -> TransformQuery {
    use xust_core::InsertPos;
    let path = parse_path(WORKLOAD[i]).expect("workload paths parse");
    match kind {
        "insert" => TransformQuery::insert("xmark", path, insert_element()),
        "insert-first" => {
            TransformQuery::insert_at("xmark", path, insert_element(), InsertPos::FirstInto)
        }
        "insert-before" => {
            TransformQuery::insert_at("xmark", path, insert_element(), InsertPos::Before)
        }
        "insert-after" => {
            TransformQuery::insert_at("xmark", path, insert_element(), InsertPos::After)
        }
        "delete" => TransformQuery::delete("xmark", path),
        "replace" => TransformQuery::replace("xmark", path, insert_element()),
        "rename" => TransformQuery::rename("xmark", path, "renamed"),
        other => panic!("unknown update kind '{other}'"),
    }
}

/// A realistic k-rule policy-style multi-update over XMark, used by the
/// `multi` experiment and the extensions bench. The first `k` of four
/// rules are taken.
pub fn multi_query(k: usize) -> xust_core::MultiTransformQuery {
    use xust_core::{InsertPos, MultiTransformQuery, UpdateOp};
    let rules: Vec<(&str, UpdateOp)> = vec![
        ("/site/people/person/creditcard", UpdateOp::Delete),
        (
            "/site/regions//item",
            UpdateOp::Insert {
                elem: insert_element(),
                pos: InsertPos::FirstInto,
            },
        ),
        (
            "/site/people/person/profile",
            UpdateOp::Replace {
                elem: Document::parse("<profile>withheld</profile>").unwrap(),
            },
        ),
        (
            "/site/open_auctions/open_auction",
            UpdateOp::Rename {
                name: "auction".into(),
            },
        ),
    ];
    MultiTransformQuery::new(
        "xmark",
        rules
            .into_iter()
            .take(k)
            .map(|(p, op)| (parse_path(p).expect("rule paths parse"), op))
            .collect(),
    )
}

/// The k views of `bench_smoke`'s `multi_view` row: single-update
/// transform queries over one XMark document sharing the
/// qualifier-bearing descendant prefix `/site//open_auction[…]//` and
/// branching only on the final label (each view projects away a
/// different content class). Descendant steps keep several automaton
/// states live at every node, so each *private* pass re-pays that
/// multi-state walk — and the shared qualifier — per view; the
/// factorised pass pays the union walk once and only the per-view
/// output copies k times.
pub fn shared_view_queries(k: usize) -> Vec<TransformQuery> {
    const SUFFIXES: [&str; 8] = [
        "annotation",
        "description",
        "parlist",
        "listitem",
        "text",
        "emph",
        "keyword",
        "bold",
    ];
    (0..k)
        .map(|i| {
            let path = parse_path(&format!(
                "/site//open_auction[bidder/increase > 5]//{}",
                SUFFIXES[i % SUFFIXES.len()]
            ))
            .expect("view paths parse");
            TransformQuery::delete("xmark", path)
        })
        .collect()
}

/// The wrapped user query over workload path `i`.
pub fn user_query(i: usize) -> UserQuery {
    UserQuery::parse(&format!(
        "<result>{{ for $x in doc(\"xmark\"){} return $x }}</result>",
        WORKLOAD[i]
    ))
    .expect("workload user queries parse")
}

/// The four (transform, user) pairs of Section 7.2 / Fig. 15:
/// (U1 ins, U2), (U9 ins, U1), (U9 del, U4), (U8 del, U10).
pub fn composition_pairs() -> Vec<(&'static str, TransformQuery, UserQuery)> {
    vec![
        ("(U1,U2)", insert_query(0), user_query(1)),
        ("(U9,U1)", insert_query(8), user_query(0)),
        ("(U9,U4)", delete_query(8), user_query(3)),
        ("(U8,U10)", delete_query(7), user_query(9)),
    ]
}

/// Generates (or reuses) the XMark document for a factor.
pub fn xmark_doc(factor: f64) -> Document {
    generate(XmarkConfig::new(factor))
}

/// The mixed read/write ("hot writer + same-shard neighbours") workload
/// shared by `bench_smoke`'s CI-gated `serve_mixed` row and the
/// criterion `serve_mixed` bench — one definition so the smoke check
/// and the trend benchmark always measure the same workload.
pub struct MixedWorkload {
    /// One store shard, so every document is the hot writer's
    /// neighbour; `hot` plus [`MixedWorkload::neighbours`] loaded, the
    /// `nopeople` view registered, and every `(view, doc)` result
    /// warmed into the cache.
    pub server: xust_serve::Server,
    /// The neighbour document names.
    pub neighbours: [&'static str; 3],
    /// Write applied to `hot` on even rounds…
    pub insert: &'static str,
    /// …and its inverse for odd rounds, so the document (and the work
    /// per round) stays the same size across the run.
    pub delete: &'static str,
}

/// Builds [`MixedWorkload`]: server + documents + view, fully warmed.
pub fn mixed_workload(factor: f64) -> MixedWorkload {
    mixed_workload_with(factor, true)
}

/// [`mixed_workload`] with request tracing switched on or off — the
/// two sides of `bench_smoke`'s `obs_overhead` comparison (everything
/// else about the servers is identical).
pub fn mixed_workload_with(factor: f64, tracing: bool) -> MixedWorkload {
    use xust_serve::{Request, Server};
    let server = Server::builder()
        .threads(4)
        .shards(1)
        .tracing(tracing)
        .build();
    server.load_doc("hot", xmark_doc(factor));
    let neighbours = ["calm0", "calm1", "calm2"];
    for n in neighbours {
        server.load_doc(n, xmark_doc(factor));
    }
    server
        .register_view(
            "nopeople",
            r#"transform copy $a := doc("xmark") modify do delete $a/site/people return $a"#,
        )
        .expect("view registers");
    for doc in std::iter::once("hot").chain(neighbours) {
        server
            .handle(&Request::View {
                view: "nopeople".into(),
                doc: doc.into(),
            })
            .expect("warm-up view serves");
    }
    MixedWorkload {
        server,
        neighbours,
        insert: r#"transform copy $a := doc("hot") modify do insert <xust-mark><t>w</t></xust-mark> into $a/site return $a"#,
        delete: r#"transform copy $a := doc("hot") modify do delete $a//xust-mark return $a"#,
    }
}

/// Generates (or reuses) an XMark file on disk; returns its path and size
/// in bytes. Files are cached under the target directory keyed by factor.
pub fn xmark_file(factor: f64) -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join("xust-bench-data");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let path = dir.join(format!("xmark-{factor}.xml"));
    if !path.exists() {
        generate_to_file(XmarkConfig::new(factor), &path).expect("generate file");
    }
    let size = std::fs::metadata(&path).expect("stat").len();
    (path, size)
}

/// Runs one evaluation method the way the paper's experiment would: DOM
/// methods get the pre-parsed document (Qizx's loaded store), twoPassSAX
/// gets serialized input and produces serialized output (its two parses
/// are part of its measured work). Returns the serialized result length
/// as a sanity witness.
pub fn run_method(doc: &Document, xml: &str, q: &TransformQuery, m: Method) -> usize {
    match m {
        Method::TwoPassSax => two_pass_sax_str(xml, q).expect("streaming transform").len(),
        other => evaluate(doc, q, other).expect("evaluation").arena_len(),
    }
}

/// Wall-clock one invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed(), out)
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_parses_and_builds() {
        for i in 0..10 {
            let q = insert_query(i);
            assert_eq!(q.op.kind(), "insert");
            assert_eq!(u_name(i), format!("U{}", i + 1));
        }
        assert_eq!(composition_pairs().len(), 4);
    }

    #[test]
    fn xmark_file_cached() {
        let (p1, s1) = xmark_file(0.0004);
        let (p2, s2) = xmark_file(0.0004);
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
        assert!(s1 > 1000);
    }
}
