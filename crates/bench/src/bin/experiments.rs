//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 7).
//!
//! ```text
//! cargo run -p xust-bench --release --bin experiments -- all
//! cargo run -p xust-bench --release --bin experiments -- fig12 [--factor 0.02]
//! cargo run -p xust-bench --release --bin experiments -- fig13 --full
//! ```
//!
//! Absolute times are not comparable to the paper's 2007 Pentium IV +
//! Qizx numbers; the *shape* (method ordering, growth with |T|, memory
//! independence of twoPassSAX, Compose vs Naive composition) is what the
//! harness reproduces. See EXPERIMENTS.md for recorded runs.

use std::time::Instant;

use xust_bench::*;
use xust_compose::{compose, naive_composition_in_engine};
use xust_core::{evaluate, two_pass_sax_files, LdStorage, Method};
use xust_xquery::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let full = args.iter().any(|a| a == "--full");
    let factor = args
        .iter()
        .position(|a| a == "--factor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());

    match which {
        "fig11" => fig11(),
        "fig12" => fig12(factor.unwrap_or(0.02)),
        "fig13" => fig13(full),
        "fig14" => fig14(full),
        "fig15" => fig15(full),
        "ablations" => ablations(),
        "ops" => ops(factor.unwrap_or(0.02)),
        "multi" => multi(factor.unwrap_or(0.02)),
        "streamcompose" => streamcompose(full),
        "all" => {
            fig11();
            fig12(factor.unwrap_or(0.02));
            fig13(full);
            fig14(full);
            fig15(full);
            ablations();
            ops(factor.unwrap_or(0.02));
            multi(factor.unwrap_or(0.02));
            streamcompose(full);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; use \
                 fig11|fig12|fig13|fig14|fig15|ablations|ops|multi|streamcompose|all"
            );
            std::process::exit(2);
        }
    }
}

/// Fig. 11 — the workload table itself (validated by parsing).
fn fig11() {
    println!("== Fig. 11: embedded XPath queries ==");
    for (i, p) in WORKLOAD.iter().enumerate() {
        let parsed = xust_xpath::parse_path(p).expect("workload parses");
        println!("  {:<4} |p|={:<3} {p}", u_name(i), parsed.size());
    }
    println!();
}

/// Fig. 12 — execution time of the five methods on U1–U10.
fn fig12(factor: f64) {
    let doc = xmark_doc(factor);
    let xml = doc.serialize();
    let bytes = xml.len();
    println!(
        "== Fig. 12: method comparison, insert transforms, XMark factor {factor} ({:.2} MB) ==",
        bytes as f64 / 1e6
    );
    let methods = [
        Method::CopyUpdate,
        Method::Naive,
        Method::TwoPass,
        Method::TopDown,
        Method::TwoPassSax,
    ];
    print!("{:<6}", "query");
    for m in methods {
        print!("{:>14}", m.paper_name());
    }
    println!("   (seconds)");
    for i in 0..WORKLOAD.len() {
        let q = insert_query(i);
        print!("{:<6}", u_name(i));
        for m in methods {
            let (d, _) = time_once(|| run_method(&doc, &xml, &q, m));
            print!("{:>14}", secs(d));
        }
        println!();
    }
    // The XQuery-engine realization of NAIVE, reported once (it is the
    // paper's portability artifact, not a performance contender here).
    let q = insert_query(1);
    let (d, _) = time_once(|| evaluate(&doc, &q, Method::NaiveXQuery).expect("evaluation"));
    println!(
        "  (NAIVE as generated XQuery text on xust-xquery, U2: {} s)",
        secs(d)
    );
    println!();
}

/// Fig. 13 — scalability with file size for U2, U4, U7, U10.
fn fig13(full: bool) {
    let factors: &[f64] = if full {
        &[0.02, 0.1, 0.18, 0.26, 0.34]
    } else {
        &[0.02, 0.06, 0.1]
    };
    let queries = [1usize, 3, 6, 9]; // U2, U4, U7, U10
    let methods = [
        Method::CopyUpdate,
        Method::Naive,
        Method::TwoPass,
        Method::TopDown,
        Method::TwoPassSax,
    ];
    println!("== Fig. 13: scalability with XMark factor (insert transforms; seconds) ==");
    for &qi in &queries {
        println!("-- {} : {}", u_name(qi), WORKLOAD[qi]);
        print!("{:<8}", "factor");
        for m in methods {
            print!("{:>14}", m.paper_name());
        }
        println!();
        for &f in factors {
            let doc = xmark_doc(f);
            let xml = doc.serialize();
            let q = insert_query(qi);
            print!("{:<8}", f);
            for m in methods {
                let (d, _) = time_once(|| run_method(&doc, &xml, &q, m));
                print!("{:>14}", secs(d));
            }
            println!();
        }
    }
    println!();
}

/// Fig. 14 — twoPassSAX on large files, streaming file→file.
fn fig14(full: bool) {
    let factors: &[f64] = if full {
        &[0.5, 1.0, 2.0, 4.0]
    } else {
        &[0.2, 0.5, 1.0]
    };
    let queries = [1usize, 3, 6, 9];
    println!("== Fig. 14: twoPassSAX on large files (streaming; seconds) ==");
    print!("{:<8}{:>10}", "factor", "MB");
    for &qi in &queries {
        print!("{:>10}", u_name(qi));
    }
    println!("{:>12}{:>10}", "Ld entries", "depth");
    for &f in factors {
        let (path, size) = xmark_file(f);
        print!("{:<8}{:>10.1}", f, size as f64 / 1e6);
        let mut last_stats = None;
        for &qi in &queries {
            let q = insert_query(qi);
            let out = std::env::temp_dir().join("xust-fig14-out.xml");
            let t = Instant::now();
            let stats = two_pass_sax_files(&path, &q, &out, LdStorage::TempFile).expect("stream");
            print!("{:>10.3}", t.elapsed().as_secs_f64());
            last_stats = Some(stats);
            std::fs::remove_file(&out).ok();
        }
        let stats = last_stats.expect("at least one query ran");
        println!("{:>12}{:>10}", stats.ld_entries, stats.max_depth);
    }
    println!("  (stack depth constant across factors = memory independent of |T|)");
    println!();
}

/// Fig. 15 — composition: Compose vs Naive Composition.
fn fig15(full: bool) {
    let factors: &[f64] = if full {
        &[0.02, 0.1, 0.18, 0.26, 0.34]
    } else {
        &[0.02, 0.06, 0.1]
    };
    println!("== Fig. 15: composition of user and transform queries (seconds) ==");
    for (name, qt, uq) in composition_pairs() {
        let qc = compose(&qt, &uq).expect("composable");
        println!(
            "-- pair {name}: composed size {}, topDown sites {}, fallbacks {}",
            qc.size(),
            qc.transform_sites(),
            qc.fallback_sites
        );
        println!("{:<8}{:>18}{:>12}", "factor", "NaiveComposition", "Compose");
        for &f in factors {
            // Fair fixture: each strategy queries a freshly loaded store
            // holding the same document (the paper's setup on Qizx);
            // best of 3 runs to damp allocator noise.
            let doc = xmark_doc(f);
            let mut best_naive = std::time::Duration::MAX;
            let mut best_comp = std::time::Duration::MAX;
            let mut answers = (String::new(), String::new());
            for _ in 0..3 {
                let mut e1 = Engine::new();
                e1.load_doc("xmark", doc.clone());
                let (d, a) =
                    time_once(|| naive_composition_in_engine(&mut e1, &qt, &uq).expect("naive"));
                best_naive = best_naive.min(d);
                let mut e2 = Engine::new();
                e2.load_doc("xmark", doc.clone());
                let (d, b) = time_once(|| qc.execute_in_engine(&mut e2).expect("composed"));
                best_comp = best_comp.min(d);
                answers = (a, b);
            }
            assert_eq!(answers.0, answers.1, "composition answers must agree");
            println!("{:<8}{:>18}{:>12}", f, secs(best_naive), secs(best_comp));
        }
    }
    println!();
}

/// Extension: all update kinds on representative paths — checks the
/// paper's remark that non-insert transforms "consistently yield
/// qualitatively similar results" (Section 7, experimental setup).
fn ops(factor: f64) {
    let doc = xmark_doc(factor);
    let xml = doc.serialize();
    let kinds = [
        "insert",
        "insert-first",
        "insert-before",
        "insert-after",
        "delete",
        "replace",
        "rename",
    ];
    let methods = [Method::Naive, Method::TopDown, Method::TwoPassSax];
    println!("== Extension: update kinds on U2/U4/U9, XMark factor {factor} (seconds) ==");
    for &qi in &[1usize, 3, 8] {
        println!("-- {}", u_name(qi));
        print!("{:<16}", "kind");
        for m in methods {
            print!("{:>14}", m.paper_name());
        }
        println!();
        for kind in kinds {
            let q = op_query(qi, kind);
            print!("{:<16}", kind);
            for m in methods {
                let (d, _) = time_once(|| run_method(&doc, &xml, &q, m));
                print!("{:>14}", secs(d));
            }
            println!();
        }
    }
    println!("  (per method, kinds should sit within a small constant of each other)");
    println!();
}

/// Extension: multi-update transforms — one fused k-automaton pass vs
/// the snapshot reference vs k chained single-update topDown passes.
fn multi(factor: f64) {
    use xust_core::{apply_chain, multi_snapshot, multi_top_down, TransformQuery};
    let doc = xmark_doc(factor);
    println!("== Extension: multi-update transforms, XMark factor {factor} (seconds) ==");
    println!(
        "{:<8}{:>12}{:>12}{:>14}",
        "k rules", "fused", "snapshot", "k topDown"
    );
    for k in 1..=4 {
        let mq = multi_query(k);
        let chain: Vec<TransformQuery> = mq
            .updates
            .iter()
            .map(|(p, op)| TransformQuery {
                var: "a".into(),
                doc_name: "xmark".into(),
                path: p.clone(),
                op: op.clone(),
            })
            .collect();
        let (fused, _) = time_once(|| multi_top_down(&doc, &mq));
        let (snap, _) = time_once(|| multi_snapshot(&doc, &mq));
        let (chained, _) = time_once(|| apply_chain(&doc, &chain));
        println!(
            "{:<8}{:>12}{:>12}{:>14}",
            k,
            secs(fused),
            secs(snap),
            secs(chained)
        );
    }
    println!("  (fused grows sub-linearly in k; chained pays one traversal per rule;");
    println!("   chained and snapshot answers differ when rules interact — see multi.rs docs)");
    println!();
}

/// Extension: streaming composition (3 SAX passes, no DOM) vs the DOM
/// Compose Method vs Naive composition on the Fig. 15 pairs.
fn streamcompose(full: bool) {
    use xust_compose::compose_sax_files;
    let factors: &[f64] = if full {
        &[0.02, 0.1, 0.18]
    } else {
        &[0.02, 0.06]
    };
    println!("== Extension: streaming composition (seconds) ==");
    for (name, qt, uq) in composition_pairs() {
        let qc = compose(&qt, &uq).expect("composable");
        println!("-- pair {name}");
        println!(
            "{:<8}{:>18}{:>12}{:>14}{:>16}",
            "factor", "NaiveComposition", "Compose", "streamCompose", "peak buf nodes"
        );
        for &f in factors {
            let doc = xmark_doc(f);
            let (path, _) = xmark_file(f);
            let mut e1 = Engine::new();
            e1.load_doc("xmark", doc.clone());
            let (naive_d, a) =
                time_once(|| naive_composition_in_engine(&mut e1, &qt, &uq).expect("naive"));
            let mut e2 = Engine::new();
            e2.load_doc("xmark", doc.clone());
            let (comp_d, b) = time_once(|| qc.execute_in_engine(&mut e2).expect("composed"));
            let out = std::env::temp_dir().join("xust-streamcompose-out.xml");
            let (stream_d, stats) =
                time_once(|| compose_sax_files(&path, &qt, &uq, &out).expect("stream composition"));
            let c = std::fs::read_to_string(&out).expect("read result");
            std::fs::remove_file(&out).ok();
            assert_eq!(a, b, "Compose must agree with naive composition");
            assert_eq!(a, c, "streaming must agree with naive composition");
            println!(
                "{:<8}{:>18}{:>12}{:>14}{:>16}",
                f,
                secs(naive_d),
                secs(comp_d),
                secs(stream_d),
                stats.peak_buffer_nodes
            );
        }
    }
    println!("  (streaming pays 3 parses but never builds a DOM; peak buffer is the");
    println!("   largest matched binding, independent of the factor)");
    println!();
}

/// Ablations called out in DESIGN.md.
fn ablations() {
    println!("== Ablations ==");
    let doc = xmark_doc(0.02);

    // 1. NFA subtree pruning on/off (topDown).
    println!("-- pruning (GENTOP with/without empty-state subtree copy-out; seconds)");
    for &qi in &[1usize, 5] {
        let q = insert_query(qi);
        let (with, _) = time_once(|| xust_core::top_down(&doc, &q));
        let (without, _) = time_once(|| xust_core::top_down_no_prune(&doc, &q));
        println!(
            "  {:<4} with pruning {:>8}   without {:>8}",
            u_name(qi),
            secs(with),
            secs(without)
        );
    }

    // 2. Qualifier strategy: native (GENTOP) vs annotations (TD-BU).
    println!("-- qualifier strategy (simple U3 vs complex U7; seconds)");
    for &qi in &[2usize, 6] {
        let q = insert_query(qi);
        let (gentop, _) = time_once(|| evaluate(&doc, &q, Method::TopDown).unwrap());
        let (tdbu, _) = time_once(|| evaluate(&doc, &q, Method::TwoPass).unwrap());
        println!(
            "  {:<4} GENTOP {:>8}   TD-BU {:>8}",
            u_name(qi),
            secs(gentop),
            secs(tdbu)
        );
    }

    // 3. Ld storage: memory vs temp file.
    println!("-- Ld storage (twoPassSAX, U7; seconds)");
    let (path, _) = xmark_file(0.05);
    let q = insert_query(6);
    for (label, storage) in [("memory", LdStorage::Memory), ("file", LdStorage::TempFile)] {
        let out = std::env::temp_dir().join("xust-abl-out.xml");
        let t = Instant::now();
        two_pass_sax_files(&path, &q, &out, storage).expect("stream");
        println!("  Ld in {label:<7} {:>8.3}", t.elapsed().as_secs_f64());
        std::fs::remove_file(&out).ok();
    }
    println!();
}
