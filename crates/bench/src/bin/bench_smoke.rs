//! Quick-mode bench smoke harness: runs the label-matching race
//! (interned `Sym` vs `String` compare in the NFA hot loop), a
//! served-throughput sample, and a mixed read/write workload (hot
//! writer + same-shard neighbour reads), prints a table, and optionally
//! records the numbers as a `BENCH_*.json` baseline so future PRs have
//! a perf trajectory to compare against.
//!
//! ```text
//! cargo run -p xust-bench --release --bin bench_smoke            # print
//! cargo run -p xust-bench --release --bin bench_smoke -- --quick # CI mode
//! cargo run -p xust-bench --release --bin bench_smoke -- --out BENCH_baseline.json
//! ```
//!
//! `--check` additionally exits non-zero if any label row's speedup
//! falls below [`CHECK_MARGIN`] — a regression tripwire, not a race to
//! the last nanosecond: full runs show ~1.5x, and the margin absorbs
//! shared-runner scheduling noise so CI does not flake on timing — or
//! if the mixed workload's neighbour hit rate falls below
//! [`NEIGHBOUR_HIT_MARGIN`]. The hit rate is deterministic (counter
//! arithmetic, not timing): with the result cache keyed by per-document
//! versions a hot writer causes *zero* neighbour misses, so anything
//! under the margin is a real re-keying regression, not jitter.

use std::io::Cursor;
use std::time::Instant;

use xust_automata::SelectingNfa;
use xust_bench::strbaseline::{drive_interned, drive_string, LabelStream, StringSelectingNfa};
use xust_bench::{
    mixed_workload, mixed_workload_with, shared_view_queries, u_name, xmark_doc, MixedWorkload,
    WORKLOAD,
};
use xust_core::{multi_view_with_stats, two_pass, TransformQuery};
use xust_serve::{serve_pipelined, PipelineOptions, Request, Server};
use xust_tree::Document;
use xust_xpath::parse_path;

struct LabelRow {
    name: String,
    path: String,
    interned_ns_per_elem: f64,
    string_ns_per_elem: f64,
    speedup: f64,
}

struct ServeRow {
    name: String,
    requests_per_sec: f64,
}

struct MixedRow {
    workload: String,
    requests_per_sec: f64,
    neighbour_hit_rate: f64,
}

struct ObsRow {
    workload: String,
    instrumented_rps: f64,
    no_trace_rps: f64,
    overhead_pct: f64,
}

struct MultiViewRow {
    views: usize,
    shared_ms: f64,
    single_sum_ms: f64,
    /// shared / single_sum; the factorisation pays off below 1.0.
    ratio: f64,
}

struct StaticRow {
    workload: String,
    requests_per_sec: f64,
    /// Fraction of retain decisions resolved by the precomputed
    /// update–view commutation table (no dynamic three-way test ran).
    static_share: f64,
    /// Slowest per-view registration-time analysis in the run.
    max_analysis_micros: u64,
}

struct PipelinedRow {
    /// Requests in flight before the client reads a reply.
    depth: usize,
    requests_per_sec: f64,
    /// Pipelined req/s over the same run's blocking `serve_throughput`
    /// U1 row — the "how much does not waiting per request buy" ratio.
    speedup_vs_u1: f64,
}

struct WalRow {
    workload: String,
    wal_rps: f64,
    no_wal_rps: f64,
    overhead_pct: f64,
}

struct IvmPatchRow {
    /// Elements in the written document (the gate is stated against an
    /// 8K+-element document in full mode).
    elements: usize,
    patch_micros_per_write: f64,
    recompute_micros_per_write: f64,
    /// patch / recompute write time; sublinear maintenance pays off
    /// below 1.0 and the `--check` gate demands ≤ [`IVM_PATCH_MARGIN`].
    ratio: f64,
}

/// Minimum interned-vs-string speedup `--check` accepts per row. Kept
/// below 1.0 so a noisy-neighbour transient on a shared CI runner
/// cannot fail an unrelated PR, while a real regression (interned path
/// meaningfully slower than the string baseline) still trips.
const CHECK_MARGIN: f64 = 0.9;

/// Minimum neighbour result-cache hit rate `--check` accepts for the
/// mixed read/write workload. Per-document version keying makes the
/// true value exactly 1.0 (a hot writer moves neither a neighbour's
/// version nor its cache shard); under the old shard-epoch keying it
/// was ~0 (every write un-keyed every same-shard neighbour). The
/// margin only forgives counter noise, never a keying regression.
const NEIGHBOUR_HIT_MARGIN: f64 = 0.99;

/// Maximum `multi_view` cost ratio `--check` accepts: one factorised
/// sweep answering k=8 views must cost under half of the k private
/// `two_pass` evaluations it replaces (the ISSUE gate "8 views < 4×
/// one view"). The true ratio sits well below: the shared pass walks
/// the tree once and checks the views' common qualifier once per node,
/// where the private passes do both k times — only the per-view result
/// copies are inherently k-fold. The headroom absorbs runner noise,
/// not a lost factorisation.
const MULTI_VIEW_MARGIN: f64 = 0.5;

/// Minimum fraction of retain decisions the `static_maintain`
/// workload must resolve via the registration-time commutation table.
/// Like the neighbour hit rate this is counter arithmetic, not timing:
/// three of every four hot writes are the anchored insert (statically
/// clear against every registered rename view), the fourth is the
/// unanchored inverse delete (deletes never classify, so the dynamic
/// test resolves it), giving exactly 0.75. The gate asks for ≥ 0.5 —
/// a third of the static hits would have to vanish before it trips,
/// so a failure is a classifier or table regression, never jitter.
const STATIC_SHARE_MARGIN: f64 = 0.5;

/// Budget for the slowest per-view registration-time analysis, in
/// microseconds: satisfiability + footprint extraction must add < 1 ms
/// per view to `VIEW REGISTER`. Measured cost is a few microseconds —
/// the NFAs are already built for evaluation, analysis only walks
/// them — so the budget is two orders of magnitude of headroom.
const ANALYSIS_MICROS_BUDGET: u64 = 1_000;

/// Minimum pipelined-over-blocking speedup `--check` accepts: depth-16
/// pipelined view reads through `serve_pipelined` must serve at least
/// 4× the same run's blocking `serve_throughput` U1 requests/s (the
/// ISSUE gate, stated against the seed baseline's 469.6 req/s U1 —
/// comparing against the same-run U1 keeps the gate meaningful on any
/// machine). The true ratio sits orders of magnitude above: U1 runs a
/// full transform per request, while the pipelined row's maintained
/// views answer from the result cache and whole batches share one
/// framing/flush cycle — so a trip means the pipelined front end (or
/// the result cache behind it) broke, not that the runner was slow.
const PIPELINED_SPEEDUP_MARGIN: f64 = 4.0;

/// Maximum write-ahead-log overhead (percent of wall-clock on a pure
/// update loop, WAL attached vs not) `--check` accepts. Each applied
/// update appends one length+CRC framed record and flushes the
/// `BufWriter` (no fsync), a few microseconds against an update path
/// that parses, applies, and maintains — measured cost is single-digit
/// percent. The comparison takes the minimum over order-alternated
/// pass pairs and re-measures once before reporting a breach, so a
/// trip means logging itself got more expensive, not runner jitter.
const WAL_OVERHEAD_MARGIN: f64 = 15.0;

/// Maximum observability overhead (tracing + histograms, percent of
/// wall-clock on the mixed workload) `--check` accepts. The budget in
/// DESIGN.md is 3%; the measured cost sits around 1%. The comparison
/// takes the minimum over 24 order-alternated pass pairs per mode, on
/// one server toggled at runtime, and re-measures once before
/// reporting a breach, so a trip means the instrumentation itself got
/// slower, not that the runner hiccuped.
const OBS_OVERHEAD_MARGIN: f64 = 3.0;

/// Maximum patch-over-recompute write-time ratio `--check` accepts for
/// the ivm_patch row: after a single-subtree write into an
/// 8K+-element document's cached view, splicing the affected fragments
/// of the provenance-annotated result must cost at most a quarter of
/// recomputing the view from scratch (the ISSUE gate). The true ratio
/// sits far below: the patch re-evaluates one probe-sized subtree and
/// splices its bytes into the retained serialisation, where the
/// recompute walks every element. Fates are counter-verified before
/// anything is timed, so a trip means localisation itself degraded
/// (e.g. every write spills past the span threshold), not jitter.
const IVM_PATCH_MARGIN: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let factor = if quick { 0.002 } else { 0.005 };
    let reps = if quick { 20 } else { 60 };
    let doc = xmark_doc(factor);
    let stream = LabelStream::of(&doc);
    println!(
        "# bench_smoke: xmark factor {factor}, {} elements, {} reps{}",
        stream.len(),
        reps,
        if quick { " (quick)" } else { "" }
    );

    // ---- label matching: interned vs string hot loop ----
    let mut label_rows = Vec::new();
    println!("\n## label_matching (ns/element, lower is better)");
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "query", "interned", "string", "speedup"
    );
    for i in [0, 3, 4, 6] {
        let path = parse_path(WORKLOAD[i]).expect("workload paths parse");
        let interned = SelectingNfa::new(&path);
        let string = StringSelectingNfa::new(&path);
        assert_eq!(
            drive_interned(&stream, &interned),
            drive_string(&stream, &string),
            "baseline NFA diverges on {}",
            WORKLOAD[i]
        );
        // Warm both paths once, then interleave timed runs so neither
        // side benefits from cache warm-up order.
        drive_interned(&stream, &interned);
        drive_string(&stream, &string);
        let (mut t_int, mut t_str) = (0u128, 0u128);
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(drive_interned(&stream, &interned));
            t_int += t.elapsed().as_nanos();
            let t = Instant::now();
            std::hint::black_box(drive_string(&stream, &string));
            t_str += t.elapsed().as_nanos();
        }
        let denom = (reps as f64) * (stream.len() as f64);
        let row = LabelRow {
            name: u_name(i),
            path: WORKLOAD[i].to_string(),
            interned_ns_per_elem: t_int as f64 / denom,
            string_ns_per_elem: t_str as f64 / denom,
            speedup: t_str as f64 / t_int as f64,
        };
        println!(
            "{:<6} {:>10.2} {:>10.2} {:>7.2}x",
            row.name, row.interned_ns_per_elem, row.string_ns_per_elem, row.speedup
        );
        label_rows.push(row);
    }

    // ---- multi_view: one factorised sweep vs k private passes ----
    let mv_row = run_multi_view(&doc, if quick { 6 } else { 16 });
    println!("\n## multi_view (k views of one document, shared sweep vs k private two_pass)");
    println!(
        "{:<6} {:>12} {:>14} {:>8}",
        "views", "shared_ms", "single_sum_ms", "ratio"
    );
    println!(
        "{:<6} {:>12.2} {:>14.2} {:>8.3}",
        mv_row.views, mv_row.shared_ms, mv_row.single_sum_ms, mv_row.ratio
    );

    // ---- served throughput through the full stack ----
    let server = Server::builder().threads(4).build();
    server.load_doc("xmark", doc);
    let mut serve_rows = Vec::new();
    println!("\n## serve_throughput (requests/s through prepared cache + planner)");
    for i in [0, 4] {
        let request = Request::Transform {
            doc: "xmark".into(),
            query: format!(
                r#"transform copy $a := doc("xmark") modify do delete $a{} return $a"#,
                WORKLOAD[i]
            ),
        };
        for _ in 0..4 {
            server.handle(&request).expect("warm-up request serves");
        }
        let n = if quick { 12 } else { 40 };
        let t = Instant::now();
        for _ in 0..n {
            std::hint::black_box(server.handle(&request).expect("request serves").body.len());
        }
        let rps = n as f64 / t.elapsed().as_secs_f64();
        println!("{:<6} {:>10.1} req/s", u_name(i), rps);
        serve_rows.push(ServeRow {
            name: u_name(i),
            requests_per_sec: rps,
        });
    }

    // ---- pipelined serving: depth-16 batches through the front end ----
    let u1_rps = serve_rows[0].requests_per_sec;
    let pipe_row = run_pipelined(factor, 16, quick, u1_rps);
    println!("\n## serve_pipelined (depth-16 pipelined view reads, in-memory transport)");
    println!(
        "depth={:<3} {:>12.1} req/s  {:>8.1}x vs blocking U1",
        pipe_row.depth, pipe_row.requests_per_sec, pipe_row.speedup_vs_u1
    );

    // ---- mixed read/write: hot writer vs same-shard neighbours ----
    // One store shard, so every document is the hot writer's neighbour
    // — the layout that used to collapse neighbour hit rates under
    // shard-epoch keying (see ROADMAP history / DESIGN "Update path").
    let mixed_rows = run_mixed_workload(factor, if quick { 6 } else { 20 });
    println!("\n## serve_mixed (hot-writer updates interleaved with neighbour view reads)");
    for r in &mixed_rows {
        println!(
            "{:<22} {:>10.1} req/s  neighbour_hit_rate={:.3}",
            r.workload, r.requests_per_sec, r.neighbour_hit_rate
        );
    }

    // ---- static maintenance: precomputed commutation vs dynamic ----
    let static_row = run_static_maintain(factor, if quick { 8 } else { 24 });
    println!("\n## static_maintain (hot writer, disjoint rename views, precomputed commutation)");
    println!(
        "{:<22} {:>10.1} req/s  static_share={:.3}  max_analysis_micros={}",
        static_row.workload,
        static_row.requests_per_sec,
        static_row.static_share,
        static_row.max_analysis_micros
    );

    // ---- observability overhead: instrumented vs --no-trace ----
    // Longer passes than serve_mixed: the effect measured here is ~1%
    // per request, so each pass must be long enough (tens of
    // milliseconds) that scheduler jitter cannot masquerade as
    // instrumentation cost.
    let obs_row = run_obs_overhead(factor, 50);
    println!("\n## obs_overhead (mixed workload, tracing+histograms vs --no-trace)");
    println!(
        "{:<22} {:>10.1} req/s instrumented  {:>10.1} req/s no-trace  overhead={:.2}%",
        obs_row.workload, obs_row.instrumented_rps, obs_row.no_trace_rps, obs_row.overhead_pct
    );

    // ---- durability overhead: WAL attached vs not, pure update loop ----
    let wal_row = run_wal_overhead(factor, if quick { 8 } else { 24 });
    println!("\n## wal_overhead (update loop, length+CRC framed log appended before install)");
    println!(
        "{:<22} {:>10.1} req/s wal  {:>10.1} req/s no-wal  overhead={:.2}%",
        wal_row.workload, wal_row.wal_rps, wal_row.no_wal_rps, wal_row.overhead_pct
    );

    // ---- IVM patching: spliced fragments vs full view recompute ----
    // Always the full-size document, even in quick mode: the gate is
    // stated against an 8K+-element doc, and the smaller quick doc
    // would narrow the recompute/patch gap enough to make the 0.25
    // margin noise-sensitive.
    let ivm_row = run_ivm_patch(0.005, if quick { 8 } else { 24 });
    println!("\n## ivm_patch (single-subtree write into a cached view: splice vs recompute)");
    println!(
        "{:>10.1} µs/write patched  {:>10.1} µs/write recomputed  ratio={:.4}  ({} elements)",
        ivm_row.patch_micros_per_write,
        ivm_row.recompute_micros_per_write,
        ivm_row.ratio,
        ivm_row.elements
    );

    if let Some(path) = out_path {
        let json = render_json(
            factor,
            stream.len(),
            quick,
            &label_rows,
            &mv_row,
            &serve_rows,
            &pipe_row,
            &mixed_rows,
            &static_row,
            &obs_row,
            &wal_row,
            &ivm_row,
        );
        std::fs::write(&path, json).expect("baseline file written");
        println!("\nbaseline recorded to {path}");
    }

    if check {
        let slow: Vec<&LabelRow> = label_rows
            .iter()
            .filter(|r| r.speedup < CHECK_MARGIN)
            .collect();
        let mut failed = false;
        if !slow.is_empty() {
            for r in slow {
                eprintln!(
                    "FAIL {}: speedup {:.2} below margin {CHECK_MARGIN} (interned {:.2}ns, string {:.2}ns)",
                    r.name, r.speedup, r.interned_ns_per_elem, r.string_ns_per_elem
                );
            }
            failed = true;
        }
        for r in mixed_rows
            .iter()
            .filter(|r| r.neighbour_hit_rate < NEIGHBOUR_HIT_MARGIN)
        {
            eprintln!(
                "FAIL {}: neighbour hit rate {:.3} below margin {NEIGHBOUR_HIT_MARGIN} — \
                 a hot writer is evicting neighbour entries again",
                r.workload, r.neighbour_hit_rate
            );
            failed = true;
        }
        if mv_row.ratio >= MULTI_VIEW_MARGIN {
            eprintln!(
                "FAIL multi_view: shared sweep {:.2}ms is {:.3}× the {} private passes' {:.2}ms, \
                 at or above the {MULTI_VIEW_MARGIN} margin — the factorised pass lost its edge",
                mv_row.shared_ms, mv_row.ratio, mv_row.views, mv_row.single_sum_ms
            );
            failed = true;
        }
        if static_row.static_share < STATIC_SHARE_MARGIN {
            eprintln!(
                "FAIL {}: static share {:.3} below margin {STATIC_SHARE_MARGIN} — retain \
                 decisions are falling back to the dynamic three-way commutation test",
                static_row.workload, static_row.static_share
            );
            failed = true;
        }
        if static_row.max_analysis_micros >= ANALYSIS_MICROS_BUDGET {
            eprintln!(
                "FAIL {}: slowest registration-time analysis {}µs at or above the \
                 {ANALYSIS_MICROS_BUDGET}µs budget",
                static_row.workload, static_row.max_analysis_micros
            );
            failed = true;
        }
        if pipe_row.speedup_vs_u1 < PIPELINED_SPEEDUP_MARGIN {
            eprintln!(
                "FAIL serve_pipelined: {:.1} req/s is only {:.1}× the blocking U1 row's \
                 {:.1} req/s, below the {PIPELINED_SPEEDUP_MARGIN}× margin — pipelined \
                 batches are no longer amortising per-request costs",
                pipe_row.requests_per_sec, pipe_row.speedup_vs_u1, u1_rps
            );
            failed = true;
        }
        if wal_row.overhead_pct > WAL_OVERHEAD_MARGIN {
            eprintln!(
                "FAIL {}: WAL overhead {:.2}% above the {WAL_OVERHEAD_MARGIN}% budget \
                 (wal {:.1} req/s vs no-wal {:.1} req/s)",
                wal_row.workload, wal_row.overhead_pct, wal_row.wal_rps, wal_row.no_wal_rps
            );
            failed = true;
        }
        if obs_row.overhead_pct > OBS_OVERHEAD_MARGIN {
            eprintln!(
                "FAIL {}: observability overhead {:.2}% above the {OBS_OVERHEAD_MARGIN}% budget \
                 (instrumented {:.1} req/s vs no-trace {:.1} req/s)",
                obs_row.workload,
                obs_row.overhead_pct,
                obs_row.instrumented_rps,
                obs_row.no_trace_rps
            );
            failed = true;
        }
        if ivm_row.ratio > IVM_PATCH_MARGIN {
            eprintln!(
                "FAIL ivm_patch: patched write {:.1}µs is {:.4}× the recomputed write's \
                 {:.1}µs, above the {IVM_PATCH_MARGIN} margin — fragment localisation is \
                 no longer sublinear in the document",
                ivm_row.patch_micros_per_write, ivm_row.ratio, ivm_row.recompute_micros_per_write
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "\ncheck passed: label rows at or above the {CHECK_MARGIN} speedup margin, \
             shared multi_view sweep under {MULTI_VIEW_MARGIN}× the private passes, \
             pipelined serving at or above {PIPELINED_SPEEDUP_MARGIN}× the blocking U1 row, \
             neighbour hit rate at or above {NEIGHBOUR_HIT_MARGIN}, \
             static retain share at or above {STATIC_SHARE_MARGIN} with per-view analysis \
             under {ANALYSIS_MICROS_BUDGET}µs, \
             observability overhead within {OBS_OVERHEAD_MARGIN}%, \
             WAL overhead within {WAL_OVERHEAD_MARGIN}%, \
             patched maintenance under {IVM_PATCH_MARGIN}× a full recompute"
        );
    }
}

/// Times the factorised sweep against the k private passes it
/// replaces: one `multi_view` call over k=8 views sharing the
/// qualifier-bearing `open_auction[bidder/increase>5]` prefix, vs the
/// sum of the same views' individual `two_pass` evaluations over the
/// same document. Outputs are asserted byte-identical first, so the
/// timed comparison cannot drift onto different work.
fn run_multi_view(doc: &Document, reps: usize) -> MultiViewRow {
    let queries = shared_view_queries(8);
    let refs: Vec<&TransformQuery> = queries.iter().collect();
    let (results, stats) = multi_view_with_stats(doc, &refs);
    assert_eq!(
        stats.shared_views,
        queries.len(),
        "every bench view must ride the shared pass (none may fall back)"
    );
    assert_eq!(stats.passes, 1);
    for (q, r) in queries.iter().zip(&results) {
        assert_eq!(
            r.doc.serialize(),
            two_pass(doc, q).serialize(),
            "shared pass diverges from private two_pass on {}",
            q.path
        );
    }
    // Warm both sides once, then interleave timed runs so neither
    // benefits from cache warm-up order (same shape as label_matching).
    std::hint::black_box(multi_view_with_stats(doc, &refs).0.len());
    for q in &queries {
        std::hint::black_box(two_pass(doc, q).arena_len());
    }
    let (mut t_shared, mut t_single) = (0u128, 0u128);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(multi_view_with_stats(doc, &refs).0.len());
        t_shared += t.elapsed().as_nanos();
        let t = Instant::now();
        for q in &queries {
            std::hint::black_box(two_pass(doc, q).arena_len());
        }
        t_single += t.elapsed().as_nanos();
    }
    let denom = reps as f64 * 1e6;
    MultiViewRow {
        views: queries.len(),
        shared_ms: t_shared as f64 / denom,
        single_sum_ms: t_single as f64 / denom,
        ratio: t_shared as f64 / t_single as f64,
    }
}

/// Drives the mixed workload: a server with ONE store shard holding a
/// hot document plus three neighbours, all with a warmed cached view;
/// each round applies one `UPDATE` to the hot document and reads every
/// neighbour's view. Reports overall request throughput and the
/// neighbours' result-cache hit rate across the run.
fn run_mixed_workload(factor: f64, rounds: usize) -> Vec<MixedRow> {
    // Setup (server + docs + view + warm-up) is shared with the
    // criterion `serve_mixed` bench so both measure the same workload.
    let w = mixed_workload(factor / 2.0);
    let server = &w.server;
    let hits_before = server.stats().result_hits;
    let misses_before = server.stats().result_misses;
    let (requests, elapsed) = mixed_pass(&w, rounds);
    let stats = server.stats();
    let neighbour_reads = (rounds * w.neighbours.len()) as f64;
    let hits = (stats.result_hits - hits_before) as f64;
    let misses = (stats.result_misses - misses_before) as f64;
    assert_eq!(
        hits + misses,
        neighbour_reads,
        "every neighbour read consults the result cache exactly once"
    );
    vec![MixedRow {
        workload: "hot_writer_neighbours".into(),
        requests_per_sec: requests as f64 / elapsed,
        neighbour_hit_rate: hits / neighbour_reads,
    }]
}

/// One timed pass of the mixed workload: `rounds` hot writes, each
/// followed by every neighbour's view read. Returns `(requests,
/// seconds)`. Rounds alternate insert/delete, so any even count leaves
/// the hot document at its starting size — passes are repeatable.
fn mixed_pass(w: &MixedWorkload, rounds: usize) -> (usize, f64) {
    assert!(
        rounds.is_multiple_of(2),
        "odd round counts grow the hot document"
    );
    let mut requests = 0usize;
    let t = Instant::now();
    for round in 0..rounds {
        // Alternating insert/delete keeps the hot document the same
        // size across rounds, so every round measures the same work.
        let update = if round % 2 == 0 { w.insert } else { w.delete };
        w.server
            .update_doc("hot", update)
            .expect("hot write applies");
        requests += 1;
        for n in w.neighbours {
            let req = Request::View {
                view: "nopeople".into(),
                doc: n.into(),
            };
            std::hint::black_box(
                w.server
                    .handle(&req)
                    .expect("neighbour view serves")
                    .body
                    .len(),
            );
            requests += 1;
        }
    }
    (requests, t.elapsed().as_secs_f64())
}

/// Drives the static-maintenance workload: the hot-writer shape of
/// `serve_mixed`, but every registered view is a rename whose analyzed
/// write footprint is disjoint from the hot writes — the layout the
/// registration-time commutation table exists for. Three of every
/// four writes are the anchored insert (statically clear: the cached
/// view entries are retained without running the dynamic three-way
/// test), the fourth is the unanchored inverse delete (deletes never
/// classify, so it exercises the dynamic fallback and restores the
/// document to its starting size). Reports throughput, the
/// counter-verified static share of retain decisions, and the slowest
/// per-view registration-time analysis cost.
fn run_static_maintain(factor: f64, rounds: usize) -> StaticRow {
    assert!(
        rounds.is_multiple_of(4),
        "rounds cycle insert,insert,insert,delete to keep the hot document a fixed size"
    );
    let server = Server::builder().threads(4).shards(1).build();
    server.load_doc("hot", xmark_doc(factor / 2.0));
    let views = [
        ("kw", "keyword", "kw2"),
        ("em", "emph", "em2"),
        ("pp", "person", "pp2"),
        ("bd", "bidder", "bd2"),
    ];
    for (name, from, to) in views {
        server
            .register_view(
                name,
                &format!(
                    // The link must name the written document: the
                    // registration-time commutation table only covers
                    // views registered against the doc being written.
                    r#"transform copy $a := doc("hot") modify do rename $a//{from} as {to} return $a"#
                ),
            )
            .expect("rename view registers");
    }
    let max_analysis_micros = views
        .iter()
        .map(|(name, _, _)| server.analyze(name).expect("view analyzes").micros)
        .max()
        .expect("at least one view registered");
    for (name, _, _) in views {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "hot".into(),
            })
            .expect("warm-up view serves");
    }
    let insert = r#"transform copy $a := doc("hot") modify do insert <xust-mark><t>w</t></xust-mark> into $a/site return $a"#;
    let delete = r#"transform copy $a := doc("hot") modify do delete $a//xust-mark return $a"#;
    let before = server.stats();
    let mut requests = 0usize;
    let t = Instant::now();
    for round in 0..rounds {
        let update = if round % 4 == 3 { delete } else { insert };
        server.update_doc("hot", update).expect("hot write applies");
        requests += 1;
    }
    let elapsed = t.elapsed().as_secs_f64();
    let stats = server.stats();
    let retained = stats.delta_retained - before.delta_retained;
    let statics = stats.static_retained - before.static_retained;
    assert_eq!(
        retained as usize,
        rounds * views.len(),
        "every warmed view entry must be retained on every hot write"
    );
    StaticRow {
        workload: "hot_writer_static_views".into(),
        requests_per_sec: requests as f64 / elapsed,
        static_share: statics as f64 / retained as f64,
        max_analysis_micros,
    }
}

/// Drives the pipelined front end the way a batching client would:
/// `n` `VIEW` lines (cycling four maintained views of one XMark
/// document) are written before any reply is read, and
/// [`serve_pipelined`] serves them over an in-memory transport
/// (`Cursor` in, `Vec` out) with `max_batch = depth` — the depth-16
/// shape of the ISSUE gate. Views are registered and warmed first, so
/// the steady state is what a pipelined deployment sees: result-cache
/// hits, with whole batches sharing one decode/frame/flush cycle. The
/// blocking comparison point is the same run's `serve_throughput` U1
/// row (full transform per request, one reply awaited per send).
fn run_pipelined(factor: f64, depth: usize, quick: bool, u1_rps: f64) -> PipelinedRow {
    let server = Server::builder().threads(4).build();
    server.load_doc("xmark", xmark_doc(factor));
    let views = [
        ("pv-people", "people"),
        ("pv-regions", "regions"),
        ("pv-categories", "categories"),
        ("pv-closed", "closed_auctions"),
    ];
    for (name, target) in views {
        server
            .register_view(
                name,
                &format!(
                    r#"transform copy $a := doc("xmark") modify do delete $a/site/{target} return $a"#
                ),
            )
            .expect("pipelined view registers");
    }
    for (name, _) in views {
        server
            .handle(&Request::View {
                view: name.into(),
                doc: "xmark".into(),
            })
            .expect("warm-up view serves");
    }
    let n = if quick { 512 } else { 2048 };
    let mut input = String::new();
    for i in 0..n {
        let (name, _) = views[i % views.len()];
        input.push_str(&format!("VIEW {name} xmark\n"));
    }
    input.push_str("QUIT\n");
    let opts = PipelineOptions {
        max_batch: depth,
        ..PipelineOptions::default()
    };
    // One untimed pass warms the reply path (allocator, result-cache
    // serialisations) before the timed passes.
    let mut sink = Vec::new();
    serve_pipelined(&server, Cursor::new(input.as_bytes()), &mut sink, &opts)
        .expect("pipelined warm-up pass serves");
    let reps = if quick { 3 } else { 6 };
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..reps {
        out.clear();
        let t = Instant::now();
        serve_pipelined(&server, Cursor::new(input.as_bytes()), &mut out, &opts)
            .expect("pipelined pass serves");
        best = best.min(t.elapsed().as_secs_f64());
    }
    // Reply bodies are serialized XML (every line starts with '<'), so
    // counting `OK ` prefixes counts exactly the reply frames.
    let ok = out
        .split(|&b| b == b'\n')
        .filter(|line| line.starts_with(b"OK "))
        .count();
    assert_eq!(ok, n, "every pipelined VIEW must reply OK, in order");
    let rps = n as f64 / best;
    PipelinedRow {
        depth,
        requests_per_sec: rps,
        speedup_vs_u1: rps / u1_rps,
    }
}

/// Measures what durability costs on the write path: two identically
/// loaded servers run the same alternating insert/delete update loop
/// on a hot document, one with a WAL attached (every applied update
/// appends a length+CRC framed record and flushes before the reply)
/// and one without. Pass pairs alternate which server goes first and
/// the fastest pass per side is compared, same estimator as
/// `obs_overhead`; an apparent breach gets one re-measure before it
/// counts.
fn run_wal_overhead(factor: f64, rounds: usize) -> WalRow {
    assert!(
        rounds.is_multiple_of(2),
        "odd round counts grow the hot document"
    );
    let wal_path = std::env::temp_dir().join(format!("xust-bench-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);
    let build = || {
        let server = Server::builder().threads(4).shards(1).build();
        server.load_doc("hot", xmark_doc(factor / 2.0));
        server
    };
    let walled = build();
    walled.attach_wal(&wal_path).expect("fresh WAL attaches");
    let plain = build();
    let insert = r#"transform copy $a := doc("hot") modify do insert <xust-mark><t>w</t></xust-mark> into $a/site return $a"#;
    let delete = r#"transform copy $a := doc("hot") modify do delete $a//xust-mark return $a"#;
    let update_pass = |server: &Server| -> f64 {
        let t = Instant::now();
        for round in 0..rounds {
            let update = if round % 2 == 0 { insert } else { delete };
            server.update_doc("hot", update).expect("hot write applies");
        }
        t.elapsed().as_secs_f64()
    };
    // Untimed warm-up per server so neither pays first-run effects.
    update_pass(&walled);
    update_pass(&plain);
    const PASSES: usize = 12;
    let measure = || -> (f64, f64) {
        let (mut best_wal, mut best_plain) = (f64::INFINITY, f64::INFINITY);
        for i in 0..PASSES {
            let (w, p) = if i % 2 == 0 {
                let w = update_pass(&walled);
                (w, update_pass(&plain))
            } else {
                let p = update_pass(&plain);
                (update_pass(&walled), p)
            };
            best_wal = best_wal.min(w);
            best_plain = best_plain.min(p);
        }
        (best_wal, best_plain)
    };
    let (mut best_wal, mut best_plain) = measure();
    if best_wal / best_plain - 1.0 > WAL_OVERHEAD_MARGIN / 100.0 {
        // Same rationale as obs_overhead: the min estimator shrugs off
        // slow outliers but not a CPU-frequency step between the two
        // sides' fastest passes. A real logging regression reproduces.
        let (w2, p2) = measure();
        if w2 / p2 < best_wal / best_plain {
            (best_wal, best_plain) = (w2, p2);
        }
    }
    let _ = std::fs::remove_file(&wal_path);
    WalRow {
        workload: "hot_writer_wal".into(),
        wal_rps: rounds as f64 / best_wal,
        no_wal_rps: rounds as f64 / best_plain,
        overhead_pct: ((best_wal / best_plain) - 1.0).max(0.0) * 100.0,
    }
}

/// Measures what in-place result patching buys on the write path: two
/// identically loaded servers (patching on vs `.patching(false)`) each
/// hold a warmed rename view of an XMark document with a
/// `patch-probe-zone` element grafted in as the root's first child.
/// Rounds alternate inserting and deleting a `<keyword>` probe inside
/// the zone — a single-subtree write whose delta intersects the view's
/// alphabet, so the cached entry can never be retained: the patching
/// server localises the write against the provenance map and splices
/// the affected fragments, the control recomputes the whole view.
/// Fates are counter-verified and the served bodies asserted
/// byte-identical before anything is timed; the timed comparison takes
/// the minimum over order-alternated pass pairs with one re-measure on
/// an apparent breach, same estimator as `wal_overhead`.
fn run_ivm_patch(factor: f64, rounds: usize) -> IvmPatchRow {
    assert!(
        rounds.is_multiple_of(2),
        "odd round counts grow the probed document"
    );
    let base = xmark_doc(factor).serialize();
    let open_end = base.find('>').expect("xmark has a root tag") + 1;
    let spiked = format!(
        "{}<patch-probe-zone/>{}",
        &base[..open_end],
        &base[open_end..]
    );
    let probed = Document::parse(&spiked).expect("probed xmark parses");
    let elements = LabelStream::of(&probed).len();
    let view = Request::View {
        view: "kwren".into(),
        doc: "xmark".into(),
    };
    let build = |patching: bool| {
        let server = Server::builder()
            .threads(4)
            .shards(1)
            .patching(patching)
            .build();
        server.load_doc("xmark", probed.clone());
        server
            .register_view(
                "kwren",
                r#"transform copy $a := doc("xmark") modify do rename $a//keyword as kw return $a"#,
            )
            .expect("rename view registers");
        server.handle(&view).expect("warm-up view serves");
        server
    };
    let patcher = build(true);
    let control = build(false);
    let insert = r#"transform copy $a := doc("xmark") modify do insert <keyword>probe</keyword> into $a/site/patch-probe-zone return $a"#;
    let delete = r#"transform copy $a := doc("xmark") modify do delete $a/site/patch-probe-zone/keyword return $a"#;
    let update_pass = |server: &Server| -> f64 {
        let t = Instant::now();
        for round in 0..rounds {
            let update = if round % 2 == 0 { insert } else { delete };
            server
                .update_doc("xmark", update)
                .expect("probe write applies");
        }
        t.elapsed().as_secs_f64()
    };
    // One counter-verified warm-up pass per server: the comparison only
    // means anything if every probe write takes its intended fate.
    update_pass(&patcher);
    update_pass(&control);
    let (ps, cs) = (patcher.stats(), control.stats());
    assert_eq!(
        ps.delta_patched as usize, rounds,
        "every probe write against the patching server must take the patch fate"
    );
    assert_eq!(
        ps.delta_recomputed, 0,
        "no probe write may spill past the span threshold into a recompute"
    );
    assert_eq!(
        cs.delta_patched, 0,
        "the patching(false) control must never patch"
    );
    assert_eq!(
        cs.delta_recomputed as usize, rounds,
        "every control write must recompute the view"
    );
    assert_eq!(
        patcher.handle(&view).expect("patched view serves").body,
        control.handle(&view).expect("recomputed view serves").body,
        "patched view body must stay byte-identical to the recomputed one"
    );
    const PASSES: usize = 8;
    let measure = || -> (f64, f64) {
        let (mut best_patch, mut best_rec) = (f64::INFINITY, f64::INFINITY);
        for i in 0..PASSES {
            let (p, r) = if i % 2 == 0 {
                let p = update_pass(&patcher);
                (p, update_pass(&control))
            } else {
                let r = update_pass(&control);
                (update_pass(&patcher), r)
            };
            best_patch = best_patch.min(p);
            best_rec = best_rec.min(r);
        }
        (best_patch, best_rec)
    };
    let (mut best_patch, mut best_rec) = measure();
    if best_patch / best_rec > IVM_PATCH_MARGIN {
        // Same rationale as wal_overhead: the min estimator shrugs off
        // slow outliers but not a CPU-frequency step between the two
        // sides' fastest passes. A real localisation regression
        // reproduces; a drift artifact does not.
        let (p2, r2) = measure();
        if p2 / r2 < best_patch / best_rec {
            (best_patch, best_rec) = (p2, r2);
        }
    }
    IvmPatchRow {
        elements,
        patch_micros_per_write: best_patch / rounds as f64 * 1e6,
        recompute_micros_per_write: best_rec / rounds as f64 * 1e6,
        ratio: best_patch / best_rec,
    }
}

/// Measures what the tracing/histogram layer costs: ONE server runs
/// the mixed workload with tracing toggled on and off between passes
/// (`Server::set_tracing`), so heap layout, caches, and documents are
/// byte-identical across the comparison — only the instrumentation
/// differs. Pass pairs alternate which mode goes first (drift hits
/// both sides alike) and the fastest pass per mode is compared: the
/// min estimates the true floor, noise only ever inflates a pass.
fn run_obs_overhead(factor: f64, rounds: usize) -> ObsRow {
    let w = mixed_workload_with(factor / 2.0, true);
    // One untimed pass per mode so neither side pays first-run cache
    // effects inside a timed window.
    w.server.set_tracing(true);
    mixed_pass(&w, 2);
    w.server.set_tracing(false);
    mixed_pass(&w, 2);
    const PASSES: usize = 24;
    let mut requests = 0usize;
    let mut measure = || -> (f64, f64) {
        let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
        let mut timed = |on: bool| -> f64 {
            w.server.set_tracing(on);
            let (n, secs) = mixed_pass(&w, rounds);
            requests = n;
            secs
        };
        for i in 0..PASSES {
            let (a, b) = if i % 2 == 0 {
                let a = timed(true);
                (a, timed(false))
            } else {
                let b = timed(false);
                (timed(true), b)
            };
            best_on = best_on.min(a);
            best_off = best_off.min(b);
        }
        (best_on, best_off)
    };
    let (mut best_on, mut best_off) = measure();
    if best_on / best_off - 1.0 > OBS_OVERHEAD_MARGIN / 100.0 {
        // An apparent breach gets one re-measure: the min estimator is
        // immune to slow outliers but not to a CPU-frequency step
        // between the two modes' fastest passes. A real regression
        // reproduces; a drift artifact does not.
        let (on2, off2) = measure();
        if on2 / off2 < best_on / best_off {
            (best_on, best_off) = (on2, off2);
        }
    }
    w.server.set_tracing(true);
    ObsRow {
        workload: "hot_writer_neighbours".into(),
        instrumented_rps: requests as f64 / best_on,
        no_trace_rps: requests as f64 / best_off,
        overhead_pct: ((best_on / best_off) - 1.0).max(0.0) * 100.0,
    }
}

/// Hand-rolled JSON (the workspace is offline — no serde).
#[allow(clippy::too_many_arguments)]
fn render_json(
    factor: f64,
    elements: usize,
    quick: bool,
    labels: &[LabelRow],
    mv: &MultiViewRow,
    serve: &[ServeRow],
    pipe: &PipelinedRow,
    mixed: &[MixedRow],
    stat: &StaticRow,
    obs: &ObsRow,
    wal: &WalRow,
    ivm: &IvmPatchRow,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"harness\": \"bench_smoke\",\n");
    s.push_str(&format!("  \"xmark_factor\": {factor},\n"));
    s.push_str(&format!("  \"elements\": {elements},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"label_matching\": [\n");
    for (i, r) in labels.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query\": \"{}\", \"path\": \"{}\", \"interned_ns_per_elem\": {:.3}, \"string_ns_per_elem\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.path.replace('"', "\\\""),
            r.interned_ns_per_elem,
            r.string_ns_per_elem,
            r.speedup,
            if i + 1 < labels.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"multi_view\": {{\"views\": {}, \"shared_ms\": {:.3}, \"single_sum_ms\": {:.3}, \"ratio\": {:.3}}},\n",
        mv.views, mv.shared_ms, mv.single_sum_ms, mv.ratio
    ));
    s.push_str("  \"serve_throughput\": [\n");
    for (i, r) in serve.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"query\": \"{}\", \"requests_per_sec\": {:.1}}}{}\n",
            r.name,
            r.requests_per_sec,
            if i + 1 < serve.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"serve_pipelined\": {{\"depth\": {}, \"requests_per_sec\": {:.1}, \"speedup_vs_u1\": {:.1}}},\n",
        pipe.depth, pipe.requests_per_sec, pipe.speedup_vs_u1
    ));
    s.push_str("  \"serve_mixed\": [\n");
    for (i, r) in mixed.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"requests_per_sec\": {:.1}, \"neighbour_hit_rate\": {:.3}}}{}\n",
            r.workload,
            r.requests_per_sec,
            r.neighbour_hit_rate,
            if i + 1 < mixed.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"static_maintain\": {{\"workload\": \"{}\", \"requests_per_sec\": {:.1}, \"static_share\": {:.3}, \"max_analysis_micros\": {}}},\n",
        stat.workload, stat.requests_per_sec, stat.static_share, stat.max_analysis_micros
    ));
    s.push_str(&format!(
        "  \"obs_overhead\": {{\"workload\": \"{}\", \"instrumented_rps\": {:.1}, \"no_trace_rps\": {:.1}, \"overhead_pct\": {:.2}}},\n",
        obs.workload, obs.instrumented_rps, obs.no_trace_rps, obs.overhead_pct
    ));
    s.push_str(&format!(
        "  \"wal_overhead\": {{\"workload\": \"{}\", \"wal_rps\": {:.1}, \"no_wal_rps\": {:.1}, \"overhead_pct\": {:.2}}},\n",
        wal.workload, wal.wal_rps, wal.no_wal_rps, wal.overhead_pct
    ));
    s.push_str(&format!(
        "  \"ivm_patch\": {{\"elements\": {}, \"patch_micros_per_write\": {:.1}, \"recompute_micros_per_write\": {:.1}, \"ratio\": {:.4}}}\n",
        ivm.elements, ivm.patch_micros_per_write, ivm.recompute_micros_per_write, ivm.ratio
    ));
    s.push_str("}\n");
    s
}
