//! The pre-interning selecting NFA, preserved verbatim as a benchmark
//! baseline.
//!
//! Until the [`xust_intern`] refactor, `SelectingNfa` transitions stored
//! `String` labels and `next_states` did a byte-compare per node/event.
//! The `label_matching` bench (and the `bench_smoke` baseline recorder)
//! race this implementation against the interned one over XMark label
//! streams, so every future PR can see what the integer-compare hot loop
//! is worth — and whether it regressed.
//!
//! What the race measures, precisely: the **old per-node label path**
//! end to end — the byte-compare inside `next_states` *and* the
//! per-node `String` clone the old `topDown` performed to get the label
//! out of the node (the borrow forced it). The interned side does a
//! `u32` copy and compare. The delta therefore includes allocator cost
//! by design; it is the cost the refactor actually removed, not a pure
//! instruction-level comparison.

use xust_automata::{SelectingNfa, StateSet};
use xust_intern::Sym;
use xust_tree::Document;
use xust_xpath::{Path, StepKind};

/// One state of the string-labelled selecting NFA (the old layout).
#[derive(Debug, Clone)]
pub struct StrSelState {
    /// `δ(s, l)` for a specific label, compared byte-by-byte.
    pub label_trans: Option<(String, usize)>,
    /// `δ(s, ∗)` to the next state.
    pub star_trans: Option<usize>,
    /// `δ(s, ∗) = {s}` self-loop.
    pub self_loop: bool,
    /// `δ(s, ε)` into a descendant step state.
    pub eps: Option<usize>,
    /// The step carries a qualifier (the old `next_states` consulted the
    /// path per surviving state; mirrored so both racers do the same
    /// filtered pass).
    pub has_qual: bool,
}

/// The string-compare selecting NFA — identical structure to
/// `xust_automata::SelectingNfa`, different label representation.
#[derive(Debug, Clone)]
pub struct StringSelectingNfa {
    /// States indexed by position; state 0 is the start state.
    pub states: Vec<StrSelState>,
    /// The final state.
    pub final_state: usize,
}

impl StringSelectingNfa {
    /// Builds the automaton from a path — same construction as the
    /// interned NFA.
    pub fn new(path: &Path) -> StringSelectingNfa {
        let mut states = vec![StrSelState {
            label_trans: None,
            star_trans: None,
            self_loop: false,
            eps: None,
            has_qual: false,
        }];
        let mut prev = 0usize;
        for step in &path.steps {
            let id = states.len();
            states.push(StrSelState {
                label_trans: None,
                star_trans: None,
                self_loop: false,
                eps: None,
                has_qual: step.qualifier.is_some(),
            });
            match &step.kind {
                StepKind::Label(l) => states[prev].label_trans = Some((l.clone(), id)),
                StepKind::Wildcard => states[prev].star_trans = Some(id),
                StepKind::Descendant => {
                    states[prev].eps = Some(id);
                    states[id].self_loop = true;
                }
            }
            prev = id;
        }
        StringSelectingNfa {
            states,
            final_state: prev,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True for a degenerate automaton with only the start state.
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    /// Initial state set (ε-closure of the start state).
    pub fn initial(&self) -> StateSet {
        let mut s = StateSet::singleton(self.len(), 0);
        self.eps_closure(&mut s);
        s
    }

    fn eps_closure(&self, s: &mut StateSet) {
        for id in 0..self.len() {
            if s.contains(id) {
                if let Some(t) = self.states[id].eps {
                    s.insert(t);
                }
            }
        }
    }

    /// `nextStates()` with the pre-interning `&str` label compare and
    /// the same two-phase shape as the real `next_states` (transition
    /// pass, qualifier-filter pass over a second state set, ε-closure).
    /// Note the race measures the *whole old per-node label path* — the
    /// byte-compare here plus the per-node `String` clone in
    /// [`drive_string`] — not the comparison instruction in isolation.
    pub fn next_states(&self, s: &StateSet, label: &str) -> StateSet {
        let mut out = StateSet::new(self.len());
        for id in s.iter() {
            let st = &self.states[id];
            if st.self_loop {
                out.insert(id);
            }
            if let Some(t) = st.star_trans {
                out.insert(t);
            }
            if let Some((l, t)) = &st.label_trans {
                if l == label {
                    out.insert(*t);
                }
            }
        }
        // Mirror of the qualifier filtering (Fig. 4 line 3) with the
        // `|_, _| true` oracle the unchecked variant uses.
        let mut filtered = StateSet::new(self.len());
        for id in out.iter() {
            // The `|_, _| true` oracle, kept behind a call so the
            // filtered pass does the same per-state work as the real
            // automaton instead of being folded away.
            let keep = !self.states[id].has_qual || always_true();
            if keep {
                filtered.insert(id);
            }
        }
        self.eps_closure(&mut filtered);
        filtered
    }
}

#[inline(never)]
fn always_true() -> bool {
    std::hint::black_box(true)
}

/// A preorder element-label stream extracted from a document once, so
/// the timed loops touch no interner, no tree, and no allocator: the
/// interned driver reads `Sym`s (copy), the string driver reads owned
/// `String`s (byte-compare) — exactly the data each hot loop saw before
/// and after the refactor.
pub struct LabelStream {
    /// `(depth, interned label, owned label)` per element, preorder.
    pub entries: Vec<(usize, Sym, String)>,
}

impl LabelStream {
    /// Extracts the stream from `doc`.
    pub fn of(doc: &Document) -> LabelStream {
        let mut entries = Vec::new();
        if let Some(root) = doc.root() {
            let mut stack = vec![(root, 0usize)];
            while let Some((n, depth)) = stack.pop() {
                if let Some(sym) = doc.name_sym(n) {
                    entries.push((depth, sym, sym.as_str().to_string()));
                    let children: Vec<_> = doc.children(n).collect();
                    for &c in children.iter().rev() {
                        if c != n && doc.kind(c).is_element() {
                            stack.push((c, depth + 1));
                        }
                    }
                }
            }
        }
        LabelStream { entries }
    }

    /// Number of elements in the stream.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Drives the *interned* NFA over the stream in document order (a
/// depth-indexed stack of state sets, the same discipline `topDown` and
/// the SAX passes use) and returns the number of final-state hits.
pub fn drive_interned(stream: &LabelStream, nfa: &SelectingNfa) -> u64 {
    let mut hits = 0u64;
    let mut stack: Vec<StateSet> = vec![nfa.initial()];
    for (depth, sym, _) in &stream.entries {
        stack.truncate(depth + 1);
        let next = nfa.next_states_unchecked(&stack[*depth], *sym);
        if next.contains(nfa.final_state) {
            hits += 1;
        }
        stack.push(next);
    }
    hits
}

/// Drives the *string* baseline NFA over the same stream, reproducing
/// the pre-interning per-node path faithfully: the old `topDown` cloned
/// the element's `String` name out of the node before every
/// `next_states` call (the borrow forced it), so the clone is part of
/// what the refactor removed and belongs in the baseline's ledger.
pub fn drive_string(stream: &LabelStream, nfa: &StringSelectingNfa) -> u64 {
    let mut hits = 0u64;
    let mut stack: Vec<StateSet> = vec![nfa.initial()];
    for (depth, _, label) in &stream.entries {
        stack.truncate(depth + 1);
        let label = std::hint::black_box(label.clone());
        let next = nfa.next_states(&stack[*depth], &label);
        if next.contains(nfa.final_state) {
            hits += 1;
        }
        stack.push(next);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_intern::intern;
    use xust_xpath::parse_path;

    /// Both drivers must report identical selections over a real
    /// document stream.
    #[test]
    fn drivers_agree_on_hits() {
        let doc = Document::parse(
            "<site><people><person/><person><x><person/></x></person></people></site>",
        )
        .unwrap();
        let stream = LabelStream::of(&doc);
        assert_eq!(stream.len(), 6);
        for p in ["/site/people/person", "//person", "site/*"] {
            let path = parse_path(p).unwrap();
            let a = drive_interned(&stream, &SelectingNfa::new(&path));
            let b = drive_string(&stream, &StringSelectingNfa::new(&path));
            assert_eq!(a, b, "hit counts diverge on {p}");
        }
    }

    /// The baseline must stay equivalent to the interned NFA on raw
    /// reachability, or the bench compares different computations.
    #[test]
    fn baseline_matches_interned_nfa() {
        let labels = ["site", "people", "person", "item", "x"];
        for p in ["/site/people/person", "/site//item", "a/*/c", "//person"] {
            let path = parse_path(p).unwrap();
            let interned = SelectingNfa::new(&path);
            let baseline = StringSelectingNfa::new(&path);
            let mut si = interned.initial();
            let mut sb = baseline.initial();
            for l in labels {
                si = interned.next_states_unchecked(&si, intern(l));
                sb = baseline.next_states(&sb, l);
                let vi: Vec<usize> = si.iter().collect();
                let vb: Vec<usize> = sb.iter().collect();
                assert_eq!(vi, vb, "divergence on {p} after {l}");
            }
        }
    }
}
