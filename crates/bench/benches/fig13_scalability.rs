//! Fig. 13 — scalability with document size for U2, U4, U7, U10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xust_bench::{insert_query, u_name, xmark_doc};
use xust_core::{evaluate, Method};

fn fig13(c: &mut Criterion) {
    let factors = [0.005, 0.01, 0.02];
    let queries = [1usize, 3, 6, 9];
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    for f in factors {
        let doc = xmark_doc(f);
        let bytes = doc.serialize().len() as u64;
        g.throughput(Throughput::Bytes(bytes));
        for qi in queries {
            let q = insert_query(qi);
            for m in [Method::Naive, Method::TwoPass, Method::TopDown] {
                g.bench_with_input(
                    BenchmarkId::new(
                        format!("{}/{}", u_name(qi), m.paper_name()),
                        format!("f{f}"),
                    ),
                    &q,
                    |b, q| b.iter(|| evaluate(&doc, q, m).expect("evaluation")),
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
