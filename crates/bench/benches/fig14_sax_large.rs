//! Fig. 14 — twoPassSAX streaming over files; throughput scales linearly
//! and memory stays bounded by document depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xust_bench::{insert_query, u_name, xmark_file};
use xust_core::{two_pass_sax_files, LdStorage};

fn fig14(c: &mut Criterion) {
    let factors = [0.02, 0.05, 0.1];
    let queries = [1usize, 3, 6, 9];
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for f in factors {
        let (path, size) = xmark_file(f);
        g.throughput(Throughput::Bytes(size));
        for qi in queries {
            let q = insert_query(qi);
            let out = std::env::temp_dir().join(format!("xust-bench14-{f}-{qi}.xml"));
            g.bench_with_input(BenchmarkId::new(u_name(qi), format!("f{f}")), &q, |b, q| {
                b.iter(|| two_pass_sax_files(&path, q, &out, LdStorage::Memory).expect("stream"))
            });
            std::fs::remove_file(&out).ok();
        }
    }
    g.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
