//! Ablation benches for the design choices called out in DESIGN.md:
//! subtree pruning, qualifier strategy, Ld storage, state-set
//! representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xust_automata::{SelectingNfa, StateSet};
use xust_bench::{insert_query, u_name, xmark_doc, xmark_file};
use xust_core::{evaluate, two_pass_sax_files, LdStorage, Method};
use xust_xpath::parse_path;

fn pruning(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let mut g = c.benchmark_group("ablation_pruning");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    for qi in [1usize, 5] {
        let q = insert_query(qi);
        g.bench_with_input(BenchmarkId::new("with", u_name(qi)), &q, |b, q| {
            b.iter(|| xust_core::top_down(&doc, q))
        });
        g.bench_with_input(BenchmarkId::new("without", u_name(qi)), &q, |b, q| {
            b.iter(|| xust_core::top_down_no_prune(&doc, q))
        });
    }
    g.finish();
}

fn qualifiers(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let mut g = c.benchmark_group("ablation_qualifiers");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    for qi in [2usize, 6, 7] {
        let q = insert_query(qi);
        g.bench_with_input(BenchmarkId::new("GENTOP", u_name(qi)), &q, |b, q| {
            b.iter(|| evaluate(&doc, q, Method::TopDown).expect("evaluation"))
        });
        g.bench_with_input(BenchmarkId::new("TD-BU", u_name(qi)), &q, |b, q| {
            b.iter(|| evaluate(&doc, q, Method::TwoPass).expect("evaluation"))
        });
    }
    g.finish();
}

fn ld_storage(c: &mut Criterion) {
    let (path, _) = xmark_file(0.02);
    let q = insert_query(6);
    let out = std::env::temp_dir().join("xust-abl-ld.xml");
    let mut g = c.benchmark_group("ablation_ld_storage");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    g.bench_function("memory", |b| {
        b.iter(|| two_pass_sax_files(&path, &q, &out, LdStorage::Memory).expect("stream"))
    });
    g.bench_function("tempfile", |b| {
        b.iter(|| two_pass_sax_files(&path, &q, &out, LdStorage::TempFile).expect("stream"))
    });
    std::fs::remove_file(&out).ok();
    g.finish();
}

/// Bitset state sets (the shipped representation) vs a plain-vector
/// simulation of nextStates, on a long path with self-loops.
fn stateset(c: &mut Criterion) {
    let path = parse_path("/site//open_auctions/open_auction//annotation//description//text")
        .expect("path parses");
    let nfa = SelectingNfa::new(&path);
    let labels = [
        "site",
        "open_auctions",
        "open_auction",
        "x",
        "annotation",
        "y",
        "description",
        "text",
    ];
    let mut g = c.benchmark_group("ablation_stateset");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    let syms: Vec<xust_core::Sym> = labels.iter().map(|l| xust_core::intern(l)).collect();
    g.bench_function("bitset", |b| {
        b.iter(|| {
            let mut s = nfa.initial();
            for _ in 0..100 {
                for &l in &syms {
                    s = nfa.next_states_unchecked(&s, l);
                }
            }
            s.len()
        })
    });
    g.bench_function("vec", |b| {
        b.iter(|| {
            // Same transition relation over a sorted Vec<usize>.
            let mut s: Vec<usize> = nfa.initial().iter().collect();
            for _ in 0..100 {
                for &l in &syms {
                    let mut set = StateSet::new(nfa.len());
                    for &id in &s {
                        set.insert(id);
                    }
                    let next = nfa.next_states_unchecked(&set, l);
                    s = next.iter().collect();
                    s.sort_unstable();
                    s.dedup();
                }
            }
            s.len()
        })
    });
    g.finish();
}

criterion_group!(benches, pruning, qualifiers, ld_storage, stateset);
criterion_main!(benches);
