//! `xust-serve` throughput: prepared + planned execution versus fixed
//! methods that re-parse and re-compile per request (what a naive
//! service would do).
//!
//! The `served/*` rows go through the full serving stack — prepared
//! cache, adaptive planner, stats — and should comfortably beat the
//! worst fixed method (and, warmed up, track the best one) on the same
//! XMark workload. The batch row measures the multi-document entry
//! point fanning out over the worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xust_bench::{u_name, xmark_doc, WORKLOAD};
use xust_core::{evaluate, parse_transform, Method};
use xust_serve::{Request, Server};

const FACTOR: f64 = 0.005;

fn transform_syntax(i: usize) -> String {
    format!(
        r#"transform copy $a := doc("xmark") modify do insert <xust-mark><origin>bench</origin></xust-mark> into $a{} return $a"#,
        WORKLOAD[i]
    )
}

/// Fixed-method baseline: parse + compile + evaluate on every request,
/// as a stateless handler would.
fn fixed(c: &mut Criterion) {
    let doc = xmark_doc(FACTOR);
    let mut g = c.benchmark_group("serve_fixed");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    for i in [0, 3, 7] {
        let text = transform_syntax(i);
        for m in [Method::CopyUpdate, Method::Naive, Method::TwoPass] {
            g.bench_with_input(
                BenchmarkId::new(format!("{m}"), u_name(i)),
                &text,
                |b, text| {
                    b.iter(|| {
                        // A stateless handler's full request cost:
                        // parse, compile, evaluate, serialize the body.
                        let q = parse_transform(text).expect("parses");
                        evaluate(&doc, &q, m).expect("evaluates").serialize().len()
                    })
                },
            );
        }
    }
    g.finish();
}

/// The serving stack: compiled once, planned per request.
fn served(c: &mut Criterion) {
    let doc = xmark_doc(FACTOR);
    let server = Server::builder().threads(8).build();
    server.load_doc("xmark", doc);
    let mut g = c.benchmark_group("serve_prepared");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    for i in [0, 3, 7] {
        let request = Request::Transform {
            doc: "xmark".into(),
            query: transform_syntax(i),
        };
        // Warm the cache and the planner's latency model.
        for _ in 0..8 {
            server.handle(&request).expect("served");
        }
        g.bench_with_input(
            BenchmarkId::new("planned", u_name(i)),
            &request,
            |b, request| b.iter(|| server.handle(request).expect("served").body.len()),
        );
    }
    let snap = server.stats();
    assert!(
        snap.cache_hits > snap.compiles,
        "bench must exercise the cache: {snap}"
    );
    println!("serve stats after bench: {snap}");
    g.finish();
}

/// The batched multi-document entry point, 64 requests per batch.
fn batched(c: &mut Criterion) {
    let server = Server::builder().threads(8).build();
    server.load_doc("xmark", xmark_doc(FACTOR));
    server.load_doc("xmark2", xmark_doc(FACTOR / 2.0));
    server
        .register_view(
            "nopeople",
            r#"transform copy $a := doc("xmark") modify do delete $a/site/people return $a"#,
        )
        .expect("registers");
    let mut g = c.benchmark_group("serve_batch");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    let batch: Vec<Request> = (0..64)
        .map(|i| match i % 3 {
            0 => Request::View {
                view: "nopeople".into(),
                doc: "xmark".into(),
            },
            1 => Request::View {
                view: "nopeople".into(),
                doc: "xmark2".into(),
            },
            _ => Request::Transform {
                doc: "xmark".into(),
                query: transform_syntax(0),
            },
        })
        .collect();
    g.bench_function("batch64", |b| {
        b.iter(|| {
            let results = server.execute_batch(batch.clone());
            assert!(results.iter().all(|r| r.is_ok()));
            results.len()
        })
    });
    g.finish();
}

/// Work-stealing batch execution across shard counts vs a sequential
/// loop over the same requests: the speedup the sharded store + parallel
/// executor buy, and the cost (if any) of finer sharding.
fn sharded_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_sharded_batch");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    let docs: Vec<_> = (0..8)
        .map(|i| (format!("doc{i}"), xmark_doc(FACTOR / 4.0)))
        .collect();
    let batch: Vec<Request> = (0..64)
        .map(|i| Request::Transform {
            doc: format!("doc{}", i % docs.len()),
            query: transform_syntax(i % 3),
        })
        .collect();
    for shards in [1usize, 8] {
        let server = Server::builder().threads(8).shards(shards).build();
        for (name, doc) in &docs {
            server.load_doc(name.clone(), doc.clone());
        }
        // Warm the prepared cache so the rows measure execution.
        for r in server.execute_batch(batch.clone()) {
            r.expect("warms");
        }
        g.bench_with_input(
            BenchmarkId::new("parallel", format!("shards{shards}")),
            &server,
            |b, server| {
                b.iter(|| {
                    let results = server.execute_batch(batch.clone());
                    assert!(results.iter().all(|r| r.is_ok()));
                    results.len()
                })
            },
        );
        if shards == 8 {
            g.bench_with_input(
                BenchmarkId::new("sequential", format!("shards{shards}")),
                &server,
                |b, server| {
                    b.iter(|| {
                        batch
                            .iter()
                            .map(|r| server.handle(r).expect("serves").body.len())
                            .sum::<usize>()
                    })
                },
            );
        }
    }
    g.finish();
}

/// Mixed read/write: one `UPDATE` to a hot document followed by view
/// reads of three same-store-shard neighbours per iteration. With the
/// result cache keyed by per-document versions the neighbour reads are
/// all cache hits (asserted after the group) — the row measures the
/// cost of a write *plus* three hits, and regresses loudly if neighbour
/// reads ever fall back to re-materialization.
fn mixed_read_write(c: &mut Criterion) {
    // Setup shared with bench_smoke's CI-gated `serve_mixed` row — the
    // trend benchmark and the smoke check measure the same workload.
    let w = xust_bench::mixed_workload(FACTOR / 2.0);
    let server = &w.server;
    let mut g = c.benchmark_group("serve_mixed");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    let hits_before = server.stats().result_hits;
    let misses_before = server.stats().result_misses;
    let mut flip = false;
    g.bench_function("hot_writer_neighbours", |b| {
        b.iter(|| {
            flip = !flip;
            server
                .update_doc("hot", if flip { w.insert } else { w.delete })
                .expect("writes");
            w.neighbours
                .iter()
                .map(|n| {
                    server
                        .handle(&Request::View {
                            view: "nopeople".into(),
                            doc: (*n).into(),
                        })
                        .expect("serves")
                        .body
                        .len()
                })
                .sum::<usize>()
        })
    });
    g.finish();
    let snap = server.stats();
    assert_eq!(
        snap.result_misses, misses_before,
        "a hot writer must cause zero neighbour misses: {snap}"
    );
    assert!(snap.result_hits > hits_before);
}

criterion_group!(
    benches,
    fixed,
    served,
    batched,
    sharded_batch,
    mixed_read_write
);
criterion_main!(benches);
