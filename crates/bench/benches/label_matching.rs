//! The cost of a label compare in the NFA hot loop: interned `Sym`
//! (u32 equality) versus the pre-interning `String` byte-compare, over
//! real XMark label streams and the Fig. 11 workload paths.
//!
//! This is the microbench behind the interning tentpole: `next_states`
//! is executed once per element per automaton by every method in the
//! system, so shaving its label test compounds through topDown, TD-BU,
//! and twoPassSAX alike. `bench_smoke` records the same comparison as a
//! JSON baseline for the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xust_automata::SelectingNfa;
use xust_bench::strbaseline::{drive_interned, drive_string, LabelStream, StringSelectingNfa};
use xust_bench::{u_name, xmark_doc, WORKLOAD};
use xust_xpath::parse_path;

const FACTOR: f64 = 0.005;

fn label_matching(c: &mut Criterion) {
    let doc = xmark_doc(FACTOR);
    let stream = LabelStream::of(&doc);
    let mut g = c.benchmark_group("label_matching");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    g.throughput(Throughput::Elements(stream.len() as u64));
    for i in [0, 3, 4, 6] {
        let path = parse_path(WORKLOAD[i]).expect("workload paths parse");
        let interned = SelectingNfa::new(&path);
        let string = StringSelectingNfa::new(&path);
        // Sanity: both automata select the same elements, or the race
        // is meaningless.
        assert_eq!(
            drive_interned(&stream, &interned),
            drive_string(&stream, &string),
            "baseline diverges on {}",
            WORKLOAD[i]
        );
        g.bench_with_input(
            BenchmarkId::new("interned", u_name(i)),
            &stream,
            |b, stream| b.iter(|| drive_interned(stream, &interned)),
        );
        g.bench_with_input(
            BenchmarkId::new("string", u_name(i)),
            &stream,
            |b, stream| b.iter(|| drive_string(stream, &string)),
        );
    }
    g.finish();
}

criterion_group!(benches, label_matching);
criterion_main!(benches);
