//! Fig. 12 — execution time of the evaluation methods on U1–U10
//! (insert transform queries over an XMark document).
//!
//! Criterion variant at reduced scale; `experiments -- fig12` prints the
//! paper-scale single-shot table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xust_bench::{insert_query, run_method, u_name, xmark_doc, WORKLOAD};
use xust_core::Method;

fn fig12(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let xml = doc.serialize();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(900));
    for i in 0..WORKLOAD.len() {
        let q = insert_query(i);
        for m in [
            Method::CopyUpdate,
            Method::Naive,
            Method::TwoPass,
            Method::TopDown,
            Method::TwoPassSax,
        ] {
            g.bench_with_input(BenchmarkId::new(m.paper_name(), u_name(i)), &q, |b, q| {
                b.iter(|| run_method(&doc, &xml, q, m))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
