//! Fig. 15 — Compose vs Naive Composition on the four (Qt, Q) pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xust_bench::{composition_pairs, xmark_doc};
use xust_compose::{compose, naive_composition_in_engine};
use xust_xquery::Engine;

fn fig15(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (name, qt, uq) in composition_pairs() {
        let qc = compose(&qt, &uq).expect("composable");
        g.bench_with_input(BenchmarkId::new("NaiveComposition", name), &qt, |b, qt| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    e.load_doc("xmark", doc.clone());
                    e
                },
                |mut e| naive_composition_in_engine(&mut e, qt, &uq).expect("naive"),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("Compose", name), &qc, |b, qc| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    e.load_doc("xmark", doc.clone());
                    e
                },
                |mut e| qc.execute_in_engine(&mut e).expect("composed"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
