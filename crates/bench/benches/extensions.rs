//! Extension benches (beyond the paper's figures):
//!
//! * `ops` — every update kind through GENTOP (the paper's "other types
//!   yield qualitatively similar results" remark, measured);
//! * `multi` — fused k-automaton multi-update vs k chained topDown
//!   passes vs the snapshot reference;
//! * `stream_compose` — streaming composition vs the DOM Compose Method
//!   (pair (U1,U2), where composition is fully static).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xust_bench::{composition_pairs, multi_query, op_query, xmark_doc};
use xust_compose::{compose, compose_sax_str};
use xust_core::{apply_chain, multi_snapshot, multi_top_down, top_down, TransformQuery};

fn ops(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let mut g = c.benchmark_group("ops");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for kind in [
        "insert",
        "insert-first",
        "insert-before",
        "insert-after",
        "delete",
        "replace",
        "rename",
    ] {
        // U9: descendant + qualifier, a representative mixed path.
        let q = op_query(8, kind);
        g.bench_with_input(BenchmarkId::new("gentop-U9", kind), &q, |b, q| {
            b.iter(|| top_down(&doc, q))
        });
    }
    g.finish();
}

fn multi(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let mut g = c.benchmark_group("multi");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for k in [1usize, 2, 4] {
        let mq = multi_query(k);
        let chain: Vec<TransformQuery> = mq
            .updates
            .iter()
            .map(|(p, op)| TransformQuery {
                var: "a".into(),
                doc_name: "xmark".into(),
                path: p.clone(),
                op: op.clone(),
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("fused", k), &mq, |b, mq| {
            b.iter(|| multi_top_down(&doc, mq))
        });
        g.bench_with_input(BenchmarkId::new("snapshot", k), &mq, |b, mq| {
            b.iter(|| multi_snapshot(&doc, mq))
        });
        g.bench_with_input(BenchmarkId::new("chained", k), &chain, |b, chain| {
            b.iter(|| apply_chain(&doc, chain))
        });
    }
    g.finish();
}

fn stream_compose(c: &mut Criterion) {
    let doc = xmark_doc(0.01);
    let xml = doc.serialize();
    let mut g = c.benchmark_group("stream_compose");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    let (name, qt, uq) = composition_pairs().remove(0);
    let qc = compose(&qt, &uq).expect("composable");
    g.bench_function(BenchmarkId::new("dom-compose", name), |b| {
        b.iter(|| qc.execute_to_string(&doc).expect("composed"))
    });
    g.bench_function(BenchmarkId::new("streaming", name), |b| {
        b.iter(|| compose_sax_str(&xml, &qt, &uq).expect("streamed"))
    });
    g.finish();
}

criterion_group!(benches, ops, multi, stream_compose);
criterion_main!(benches);
