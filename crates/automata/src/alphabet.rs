//! Label alphabets of the compiled NFAs — the static footprint a
//! transform's automata can ever *test*.
//!
//! The delta-aware cache maintenance in `xust-serve` needs to answer one
//! question per write: *can this update possibly change what that view's
//! automata see?* The sound building block is the NFA's label alphabet —
//! every `Sym` appearing on a label transition of the selecting or
//! filtering NFA — plus a wildcard bit for `*` transitions (a wildcard
//! can match labels that do not exist yet, so an automaton carrying one
//! is sensitive to *any* vocabulary change). `//` self-loops are
//! deliberately **not** wildcards here: a self-loop only forwards state
//! across a node, it never selects or tests one — reaching a final or
//! qualifier state still requires one of the explicit label transitions,
//! which the alphabet records.

use std::collections::HashSet;

use xust_intern::Sym;

use crate::filtering::FilteringNfa;
use crate::selecting::SelectingNfa;

/// A set of interned labels with a wildcard bit. Used both for static
/// automaton alphabets and for dynamic update deltas (the labels a write
/// actually touched).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelSet {
    syms: HashSet<Sym>,
    wildcard: bool,
}

impl LabelSet {
    /// An empty set (no labels, no wildcard).
    pub fn new() -> LabelSet {
        LabelSet::default()
    }

    /// Adds one label.
    pub fn insert(&mut self, sym: Sym) {
        self.syms.insert(sym);
    }

    /// Marks the set as containing a wildcard: it then intersects every
    /// non-empty set.
    pub fn mark_wildcard(&mut self) {
        self.wildcard = true;
    }

    /// True when a wildcard has been recorded.
    pub fn has_wildcard(&self) -> bool {
        self.wildcard
    }

    /// True when the set is empty (no labels *and* no wildcard).
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty() && !self.wildcard
    }

    /// Number of explicit labels (the wildcard is not counted).
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when `sym` is in the set (wildcard counts as everything).
    pub fn contains(&self, sym: Sym) -> bool {
        self.wildcard || self.syms.contains(&sym)
    }

    /// Folds `other` in (labels and wildcard bit).
    pub fn union_with(&mut self, other: &LabelSet) {
        self.wildcard |= other.wildcard;
        self.syms.extend(other.syms.iter().copied());
    }

    /// The relevance test: do the two sets share any label? A wildcard
    /// on either side intersects everything — except the empty set,
    /// because an update that touched *nothing* cannot affect even a
    /// wildcard automaton.
    pub fn intersects(&self, other: &LabelSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        if self.wildcard || other.wildcard {
            return true;
        }
        let (small, large) = if self.syms.len() <= other.syms.len() {
            (&self.syms, &other.syms)
        } else {
            (&other.syms, &self.syms)
        };
        small.iter().any(|s| large.contains(s))
    }

    /// The explicit labels, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = Sym> + '_ {
        self.syms.iter().copied()
    }
}

impl FromIterator<Sym> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Sym>>(iter: I) -> LabelSet {
        LabelSet {
            syms: iter.into_iter().collect(),
            wildcard: false,
        }
    }
}

impl SelectingNfa {
    /// Collects this automaton's label alphabet into `out`: every label
    /// transition's `Sym`, with the wildcard bit set if any state has a
    /// `*` transition to a *next* state (self-loops excluded — see the
    /// module docs).
    pub fn collect_alphabet(&self, out: &mut LabelSet) {
        for st in &self.states {
            if let Some((sym, _)) = st.label_trans {
                out.insert(sym);
            }
            if st.star_trans.is_some() {
                out.mark_wildcard();
            }
        }
    }
}

impl FilteringNfa {
    /// Collects this automaton's label alphabet into `out` — selecting
    /// path and all qualifier branches (which is what makes the filtering
    /// NFA the right source: a view is sensitive to a label even when it
    /// only appears inside a qualifier).
    pub fn collect_alphabet(&self, out: &mut LabelSet) {
        for st in &self.states {
            for (sym, _) in &st.label_trans {
                out.insert(*sym);
            }
            if !st.star_trans.is_empty() {
                out.mark_wildcard();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_intern::intern;
    use xust_xpath::parse_path;

    fn sel(p: &str) -> LabelSet {
        let mut out = LabelSet::new();
        SelectingNfa::new(&parse_path(p).unwrap()).collect_alphabet(&mut out);
        out
    }

    fn fil(p: &str) -> LabelSet {
        let mut out = LabelSet::new();
        FilteringNfa::new(&parse_path(p).unwrap()).collect_alphabet(&mut out);
        out
    }

    #[test]
    fn selecting_alphabet_is_the_label_transitions() {
        let a = sel("//part/price");
        assert!(a.contains(intern("part")) && a.contains(intern("price")));
        assert!(!a.contains(intern("supplier")));
        assert_eq!(a.len(), 2);
        assert!(!a.has_wildcard(), "// self-loops are not wildcards");
    }

    #[test]
    fn wildcard_steps_set_the_flag() {
        let a = sel("a/*/c");
        assert!(a.has_wildcard());
        // Wildcard intersects any non-empty set…
        let mut other = LabelSet::new();
        other.insert(intern("zzz"));
        assert!(a.intersects(&other));
        // …but never the empty one.
        assert!(!a.intersects(&LabelSet::new()));
    }

    #[test]
    fn filtering_alphabet_includes_qualifier_labels() {
        let a = fil("//part[supplier/sname = 'HP']/price");
        for l in ["part", "supplier", "sname", "price"] {
            assert!(a.contains(intern(l)), "{l} missing");
        }
        let s = sel("//part[supplier/sname = 'HP']/price");
        assert!(
            !s.contains(intern("sname")),
            "selecting NFA does not walk qualifier paths"
        );
    }

    #[test]
    fn qualifier_wildcards_count() {
        assert!(fil("a[*/b]").has_wildcard());
        assert!(!fil("a[c/b]").has_wildcard());
    }

    #[test]
    fn intersection_is_symmetric_and_empty_aware() {
        let a = sel("//x/y");
        let b = sel("//y/z");
        let c = sel("//p/q");
        assert!(a.intersects(&b) && b.intersects(&a));
        assert!(!a.intersects(&c) && !c.intersects(&a));
        assert!(!LabelSet::new().intersects(&a));
        let mut w = LabelSet::new();
        w.mark_wildcard();
        assert!(w.intersects(&a));
        assert!(!w.intersects(&LabelSet::new()));
        assert!(!w.is_empty());
    }

    #[test]
    fn union_folds_labels_and_wildcard() {
        let mut a = sel("//x");
        a.union_with(&sel("a/*"));
        assert!(a.contains(intern("x")) && a.contains(intern("a")));
        assert!(a.has_wildcard());
        let collected: LabelSet = [intern("x")].into_iter().collect();
        assert_eq!(collected.len(), 1);
        assert!(collected.iter().any(|s| s == intern("x")));
    }
}
