//! The selecting NFA of Section 3.4.
//!
//! Given an X expression in normal form β₁[q₁]/…/βₖ[qₖ], the selecting
//! NFA `Mp` has a start state plus one state per step. Transitions follow
//! the paper's construction exactly:
//!
//! * `βᵢ₊₁ = l` or `*`  →  `δ(sᵢ, βᵢ₊₁) = {sᵢ₊₁}`;
//! * `βᵢ₊₁ = //`        →  `δ(sᵢ, ε) = {sᵢ₊₁}` and `δ(sᵢ₊₁, ∗) = {sᵢ₊₁}`
//!   (the ∗ self-loop — the only cycles in the automaton, giving it the
//!   semi-linear structure the paper highlights).
//!
//! The automaton is built in O(|p|) time and has O(|p|) states.

use xust_intern::{intern, Sym};
use xust_xpath::{Path, Qualifier, StepKind};

use crate::stateset::StateSet;

/// Identifier of an NFA state (index into the state vector).
pub type StateId = usize;

/// One state of a selecting NFA.
#[derive(Debug, Clone)]
pub struct SelState {
    /// Index of the path step this state corresponds to (None for the
    /// start state). The step's qualifier is this state's `[q]`.
    pub step: Option<usize>,
    /// `δ(s, l)` for a specific label (interned at construction, so the
    /// per-node transition test is a `u32` compare).
    pub label_trans: Option<(Sym, StateId)>,
    /// `δ(s, ∗)` to the *next* state (wildcard step).
    pub star_trans: Option<StateId>,
    /// `δ(s, ∗) = {s}` self-loop (descendant step state).
    pub self_loop: bool,
    /// `δ(s, ε)` into a descendant step state.
    pub eps: Option<StateId>,
}

impl SelState {
    fn new(step: Option<usize>) -> Self {
        SelState {
            step,
            label_trans: None,
            star_trans: None,
            self_loop: false,
            eps: None,
        }
    }
}

/// The selecting NFA `Mp` of an X expression.
#[derive(Debug, Clone)]
pub struct SelectingNfa {
    /// States indexed by [`StateId`]; `states[start]` is the start state.
    pub states: Vec<SelState>,
    /// The start state `(s₀, [true])`.
    pub start: StateId,
    /// The final state `(sₖ, [qₖ])` — reaching it selects the node.
    pub final_state: StateId,
    /// The source path (states reference its steps for qualifiers).
    pub path: Path,
}

impl SelectingNfa {
    /// Builds `Mp` from a path — O(|p|).
    pub fn new(path: &Path) -> SelectingNfa {
        let mut states = vec![SelState::new(None)];
        let mut prev: StateId = 0;
        for (i, step) in path.steps.iter().enumerate() {
            let id = states.len();
            states.push(SelState::new(Some(i)));
            match &step.kind {
                StepKind::Label(l) => states[prev].label_trans = Some((intern(l), id)),
                StepKind::Wildcard => states[prev].star_trans = Some(id),
                StepKind::Descendant => {
                    states[prev].eps = Some(id);
                    states[id].self_loop = true;
                }
            }
            prev = id;
        }
        SelectingNfa {
            final_state: prev,
            states,
            start: 0,
            path: path.clone(),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True for the degenerate ε path (start == final).
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    /// The qualifier attached to a state, if any.
    pub fn qualifier(&self, state: StateId) -> Option<&Qualifier> {
        let step = self.states[state].step?;
        self.path.steps[step].qualifier.as_ref()
    }

    /// The initial state set: the ε-closure of the start state.
    pub fn initial(&self) -> StateSet {
        let mut s = StateSet::singleton(self.len(), self.start);
        self.eps_closure(&mut s);
        s
    }

    /// Extends `s` with everything reachable over ε transitions.
    pub fn eps_closure(&self, s: &mut StateSet) {
        // Semi-linear structure: ε edges point strictly forward, so one
        // ascending sweep reaches the fixpoint.
        for id in 0..self.len() {
            if s.contains(id) {
                if let Some(t) = self.states[id].eps {
                    s.insert(t);
                }
            }
        }
    }

    /// The `nextStates()` of Fig. 4: computes the states reached from `s`
    /// on reading a node labelled `label`, keeping only those whose
    /// qualifier passes `check` (the `checkp` oracle, abstracted so the
    /// same automaton serves GENTOP — native evaluation — and TD-BU —
    /// annotation lookup), then takes the ε-closure. `label` is the
    /// node's interned name: the hot-loop transition test below is an
    /// integer compare, never a string compare.
    pub fn next_states<F>(&self, s: &StateSet, label: Sym, mut check: F) -> StateSet
    where
        F: FnMut(usize, &Qualifier) -> bool,
    {
        let mut out = StateSet::new(self.len());
        for id in s.iter() {
            let st = &self.states[id];
            if st.self_loop {
                out.insert(id); // δ(s, ∗) = {s}
            }
            if let Some(t) = st.star_trans {
                out.insert(t);
            }
            if let Some((l, t)) = &st.label_trans {
                if *l == label {
                    out.insert(*t);
                }
            }
        }
        // Filter by qualifiers (Fig. 4 line 3). Self-loop re-entries have
        // qualifier [true] by construction (descendant states carry no
        // qualifier), so only genuine step states are checked.
        let mut filtered = StateSet::new(self.len());
        for id in out.iter() {
            let keep = match self.qualifier(id) {
                Some(q) => {
                    let step = self.states[id].step.expect("qualified states have steps");
                    check(step, q)
                }
                None => true,
            };
            if keep {
                filtered.insert(id);
            }
        }
        self.eps_closure(&mut filtered);
        filtered
    }

    /// Variant of `nextStates` without qualifier filtering — the raw
    /// reachability used by the composition algorithm (Section 4), which
    /// defers qualifier handling to rewrite time. Returns the new set; the
    /// caller inspects which states carry qualifiers.
    pub fn next_states_unchecked(&self, s: &StateSet, label: Sym) -> StateSet {
        self.next_states(s, label, |_, _| true)
    }

    /// δ′(S, ∗) for composition: a user-path wildcard step traverses
    /// *any* transition (label transitions included, per the paper's
    /// extension (1) of δ).
    pub fn next_states_wild(&self, s: &StateSet) -> StateSet {
        let mut out = StateSet::new(self.len());
        for id in s.iter() {
            let st = &self.states[id];
            if st.self_loop {
                out.insert(id);
            }
            if let Some(t) = st.star_trans {
                out.insert(t);
            }
            if let Some((_, t)) = &st.label_trans {
                out.insert(*t);
            }
        }
        self.eps_closure(&mut out);
        out
    }

    /// δ′(S, //) for composition: all states reachable via an unbounded
    /// sequence of ∗ (extension (2) of δ), including zero repetitions —
    /// `//` in a user path means descendant-or-self.
    pub fn desc_closure(&self, s: &StateSet) -> StateSet {
        let mut cur = s.clone();
        self.eps_closure(&mut cur);
        loop {
            let mut next = self.next_states_wild(&cur);
            next.union_with(&cur);
            if next == cur {
                return cur;
            }
            cur = next;
        }
    }

    /// Runs the automaton over a sequence of labels from the initial set
    /// (convenience for tests): returns whether the final state is
    /// reached, ignoring qualifiers.
    pub fn accepts_word(&self, labels: &[&str]) -> bool {
        let mut s = self.initial();
        for l in labels {
            s = self.next_states_unchecked(&s, intern(l));
            if s.is_empty() {
                return false;
            }
        }
        s.contains(self.final_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn nfa(p: &str) -> SelectingNfa {
        SelectingNfa::new(&parse_path(p).unwrap())
    }

    #[test]
    fn fig5_structure() {
        // p1 = //part[q1]//part[q2] → 5 states (Fig. 5).
        let m = nfa("//part[pname = 'keyboard']//part[supplier]");
        assert_eq!(m.len(), 5);
        // s0 --ε--> s1 (self-loop) --part--> s2 --ε--> s3 (self-loop) --part--> s4
        assert_eq!(m.states[0].eps, Some(1));
        assert!(m.states[1].self_loop);
        assert_eq!(m.states[1].label_trans, Some((intern("part"), 2)));
        assert_eq!(m.states[2].eps, Some(3));
        assert!(m.states[3].self_loop);
        assert_eq!(m.states[3].label_trans, Some((intern("part"), 4)));
        assert_eq!(m.final_state, 4);
        assert!(m.qualifier(2).is_some());
        assert!(m.qualifier(4).is_some());
        assert!(m.qualifier(1).is_none());
    }

    #[test]
    fn initial_closure_includes_descendant_state() {
        let m = nfa("//part");
        let init = m.initial();
        assert!(init.contains(0) && init.contains(1));
    }

    #[test]
    fn word_acceptance_simple_path() {
        let m = nfa("/site/people/person");
        assert!(m.accepts_word(&["site", "people", "person"]));
        assert!(!m.accepts_word(&["site", "people"]));
        assert!(!m.accepts_word(&["site", "regions", "person"]));
    }

    #[test]
    fn word_acceptance_descendant() {
        let m = nfa("/site//description");
        assert!(m.accepts_word(&["site", "description"]));
        assert!(m.accepts_word(&["site", "a", "b", "description"]));
        assert!(!m.accepts_word(&["other", "description"]));
        // Matching at any depth keeps the loop state alive.
        let m = nfa("//item");
        assert!(m.accepts_word(&["item"]));
        assert!(m.accepts_word(&["x", "y", "item"]));
    }

    #[test]
    fn word_acceptance_wildcard() {
        let m = nfa("a/*/c");
        assert!(m.accepts_word(&["a", "anything", "c"]));
        assert!(!m.accepts_word(&["a", "c"]));
    }

    #[test]
    fn qualifier_filtering_blocks_transition() {
        let m = nfa("a[x]/b");
        let init = m.initial();
        // With the qualifier reported false, state for `a` is dropped and
        // `b` is unreachable.
        let s = m.next_states(&init, intern("a"), |_, _| false);
        assert!(s.is_empty());
        let s = m.next_states(&init, intern("a"), |_, _| true);
        assert!(s.contains(1));
    }

    #[test]
    fn empty_set_stays_empty() {
        let m = nfa("a/b");
        let empty = StateSet::new(m.len());
        let s = m.next_states_unchecked(&empty, intern("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn wild_transition_for_composition() {
        let m = nfa("a/b");
        let s = m.next_states_wild(&m.initial());
        // A user-path `*` step can traverse the `a` transition.
        assert!(s.contains(1));
    }

    #[test]
    fn desc_closure_reaches_everything() {
        let m = nfa("a/b/c");
        let s = m.desc_closure(&m.initial());
        // `//` can stand for any number of steps: every state reachable.
        for id in 0..m.len() {
            assert!(s.contains(id), "state {id} missing from closure");
        }
    }

    #[test]
    fn size_linear_in_path() {
        let m = nfa("/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword");
        assert_eq!(m.len(), 13);
    }

    #[test]
    fn epsilon_path() {
        let m = SelectingNfa::new(&Path::empty());
        assert_eq!(m.len(), 1);
        assert_eq!(m.start, m.final_state);
        assert!(m.initial().contains(m.final_state));
    }
}
