//! A prefix-shared union of several selecting NFAs — the factorised
//! evaluation plan behind `multi_view` in `xust-core`.
//!
//! Registered views of one document typically share long path prefixes
//! (`/site/open_auctions/open_auction[...]/...`). Evaluating each view
//! with its own [`SelectingNfa`](crate::SelectingNfa) re-runs the shared
//! steps — and re-evaluates the shared *qualifiers*, the expensive part —
//! once per view. [`SharedNfa`] unions up to [`MAX_SHARED_VIEWS`] paths
//! into one trie-shaped automaton: structurally equal steps (same kind,
//! same label, same qualifier) collapse into one state, so one
//! `next_states` sweep per node drives every view at once and each shared
//! qualifier is checked exactly once per node.
//!
//! Per-view identity survives the union through two bitmasks on every
//! state:
//!
//! * `tags` — which views route through this state. A view whose tag has
//!   disappeared from the live state set is *dead* at that subtree (its
//!   own automaton would have an empty state set — the wholesale-copy
//!   prune of topDown applies for it).
//! * `accepts` — which views have this state as their final state.
//!   A view's bit in [`SharedNfa::accept_mask`] means the current node is
//!   in that view's `r[[p]]`.
//!
//! Because every state a view is tagged on forms a chain isomorphic to
//! the view's own [`SelectingNfa`](crate::SelectingNfa) (the trie only
//! merges structurally identical transitions), projecting a shared run
//! onto one view's tag reproduces that view's private run exactly — the
//! differential fuzzer in `tests/shared_eval.rs` holds the two
//! byte-identical.
//!
//! The construction preserves the semi-linear invariant of the per-path
//! automaton: ε edges and all transitions point to strictly larger state
//! ids (children are created after their trie parent), so the ε-closure
//! is still a single ascending sweep.

use xust_intern::{intern, Sym};
use xust_xpath::{Path, Qualifier, Step, StepKind};

use crate::selecting::StateId;
use crate::stateset::StateSet;

/// The widest union one [`SharedNfa`] supports: per-view tags live in a
/// `u64` bitmask. Callers with more views run several passes.
pub const MAX_SHARED_VIEWS: usize = 64;

/// One state of a shared (union) selecting NFA. Unlike
/// [`SelState`](crate::SelState), a state can fan out to several
/// successors per transition kind — the trie branches where paths stop
/// sharing.
#[derive(Debug, Clone)]
pub struct SharedState {
    /// `δ(s, l)` per interned label (one entry per distinct child label).
    pub label_trans: Vec<(Sym, StateId)>,
    /// `δ(s, ∗)` into wildcard-step states.
    pub star_trans: Vec<StateId>,
    /// `δ(s, ε)` into descendant-step states (each with a ∗ self-loop).
    pub eps: Vec<StateId>,
    /// `δ(s, ∗) = {s}` self-loop (descendant-step state).
    pub self_loop: bool,
    /// The step's qualifier, owned by the state so structurally equal
    /// qualifiers are both shared and checked once per node.
    pub qualifier: Option<Qualifier>,
    /// Views routed through this state.
    pub tags: u64,
    /// Views whose final state this is.
    pub accepts: u64,
}

impl SharedState {
    fn new(qualifier: Option<Qualifier>) -> SharedState {
        SharedState {
            label_trans: Vec::new(),
            star_trans: Vec::new(),
            eps: Vec::new(),
            self_loop: false,
            qualifier,
            tags: 0,
            accepts: 0,
        }
    }
}

/// A prefix-shared union of up to [`MAX_SHARED_VIEWS`] selecting NFAs,
/// run once per document node for all views simultaneously.
#[derive(Debug, Clone)]
pub struct SharedNfa {
    /// States indexed by [`StateId`]; `states[0]` is the shared start.
    pub states: Vec<SharedState>,
    nviews: usize,
}

impl SharedNfa {
    /// Unions `paths` into one trie-shaped automaton, tagging each path
    /// with its index bit. Returns `None` when the union cannot be built:
    /// no paths, more than [`MAX_SHARED_VIEWS`], or any ε path (an ε path
    /// selects the root directly — there is no automaton to share, and
    /// callers fall back to the per-view evaluator).
    pub fn build(paths: &[&Path]) -> Option<SharedNfa> {
        if paths.is_empty() || paths.len() > MAX_SHARED_VIEWS {
            return None;
        }
        if paths.iter().any(|p| p.is_empty()) {
            return None;
        }
        let mut nfa = SharedNfa {
            states: vec![SharedState::new(None)],
            nviews: paths.len(),
        };
        for (v, path) in paths.iter().enumerate() {
            let bit = 1u64 << v;
            nfa.states[0].tags |= bit;
            let mut cur: StateId = 0;
            for step in &path.steps {
                cur = nfa.extend(cur, step, bit);
            }
            nfa.states[cur].accepts |= bit;
        }
        Some(nfa)
    }

    /// Walks (or grows) the trie edge for `step` out of `from`, tagging
    /// the target with `bit`. An existing child is reused only when both
    /// the transition wiring *and* the qualifier are structurally equal —
    /// sharing a state with a different qualifier would change which
    /// nodes pass the `checkp` filter for one of the views.
    fn extend(&mut self, from: StateId, step: &Step, bit: u64) -> StateId {
        let candidates: Vec<StateId> = match &step.kind {
            StepKind::Label(l) => {
                let sym = intern(l);
                self.states[from]
                    .label_trans
                    .iter()
                    .filter(|(s, _)| *s == sym)
                    .map(|&(_, t)| t)
                    .collect()
            }
            StepKind::Wildcard => self.states[from].star_trans.clone(),
            StepKind::Descendant => self.states[from].eps.clone(),
        };
        if let Some(&t) = candidates
            .iter()
            .find(|&&t| self.states[t].qualifier == step.qualifier)
        {
            self.states[t].tags |= bit;
            return t;
        }
        let id = self.states.len();
        let mut st = SharedState::new(step.qualifier.clone());
        if matches!(step.kind, StepKind::Descendant) {
            st.self_loop = true;
        }
        st.tags = bit;
        self.states.push(st);
        match &step.kind {
            StepKind::Label(l) => self.states[from].label_trans.push((intern(l), id)),
            StepKind::Wildcard => self.states[from].star_trans.push(id),
            StepKind::Descendant => self.states[from].eps.push(id),
        }
        id
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the automaton has only its start state (never the case
    /// for a [`SharedNfa::build`] result, which rejects ε paths).
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    /// Number of views unioned into this automaton.
    pub fn views(&self) -> usize {
        self.nviews
    }

    /// The initial state set: the ε-closure of the shared start state.
    pub fn initial(&self) -> StateSet {
        let mut s = StateSet::singleton(self.len(), 0);
        self.eps_closure(&mut s);
        s
    }

    /// Extends `s` with everything reachable over ε transitions. All ε
    /// edges point to strictly larger ids (trie children are created
    /// after their parent), so one ascending sweep reaches the fixpoint.
    pub fn eps_closure(&self, s: &mut StateSet) {
        for id in 0..self.len() {
            if s.contains(id) {
                for &t in &self.states[id].eps {
                    s.insert(t);
                }
            }
        }
    }

    /// The shared `nextStates()`: states reached from `s` on a node
    /// labelled `label`, filtered by their qualifiers via `check`, then
    /// ε-closed. Each surviving state's qualifier is passed to `check`
    /// exactly once — the factorised win: a qualifier shared by k views
    /// is evaluated once per node instead of k times.
    pub fn next_states<F>(&self, s: &StateSet, label: Sym, mut check: F) -> StateSet
    where
        F: FnMut(StateId, &Qualifier) -> bool,
    {
        let mut out = StateSet::new(self.len());
        for id in s.iter() {
            let st = &self.states[id];
            if st.self_loop {
                out.insert(id); // δ(s, ∗) = {s}
            }
            for &t in &st.star_trans {
                out.insert(t);
            }
            for &(l, t) in &st.label_trans {
                if l == label {
                    out.insert(t);
                }
            }
        }
        let mut filtered = StateSet::new(self.len());
        for id in out.iter() {
            let keep = match &self.states[id].qualifier {
                Some(q) => check(id, q),
                None => true,
            };
            if keep {
                filtered.insert(id);
            }
        }
        self.eps_closure(&mut filtered);
        filtered
    }

    /// Which views are still alive in `s` (the union of resident tags).
    /// A cleared bit means that view's private automaton would have an
    /// empty state set here — its subtree prune applies.
    pub fn alive_mask(&self, s: &StateSet) -> u64 {
        let mut mask = 0u64;
        for id in s.iter() {
            mask |= self.states[id].tags;
        }
        mask
    }

    /// Which views accept in `s` (the union of resident accept bits):
    /// bit v set means the current node is in view v's `r[[p]]`.
    pub fn accept_mask(&self, s: &StateSet) -> u64 {
        let mut mask = 0u64;
        for id in s.iter() {
            mask |= self.states[id].accepts;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selecting::SelectingNfa;
    use xust_xpath::parse_path;

    fn paths(ps: &[&str]) -> Vec<Path> {
        ps.iter().map(|p| parse_path(p).unwrap()).collect()
    }

    fn shared(ps: &[&str]) -> SharedNfa {
        let parsed = paths(ps);
        SharedNfa::build(&parsed.iter().collect::<Vec<_>>()).unwrap()
    }

    /// Runs the shared automaton over a label word (qualifiers forced
    /// true) and returns the accept mask at the end — the union analogue
    /// of `SelectingNfa::accepts_word`.
    fn accepts_views(nfa: &SharedNfa, word: &[&str]) -> u64 {
        let mut s = nfa.initial();
        for l in word {
            s = nfa.next_states(&s, intern(l), |_, _| true);
            if s.is_empty() {
                return 0;
            }
        }
        nfa.accept_mask(&s)
    }

    #[test]
    fn shared_prefix_collapses_into_one_chain() {
        // Three paths sharing /site/people: the union has one state per
        // distinct step, not per (view, step).
        let n = shared(&[
            "/site/people/person",
            "/site/people/person/profile",
            "/site/regions",
        ]);
        // start + site + people + person + profile + regions = 6.
        assert_eq!(n.len(), 6);
        assert_eq!(n.states[0].tags, 0b111);
        // `person` carries views 0 and 1, accepts only view 0.
        let person = n
            .states
            .iter()
            .position(|s| s.accepts == 0b001)
            .expect("person state");
        assert_eq!(n.states[person].tags, 0b011);
    }

    #[test]
    fn differing_qualifiers_do_not_share_a_state() {
        let n = shared(&["a[x]/b", "a[y]/c", "a[x]/d"]);
        // Two distinct `a` states: one for [x] (shared by views 0 and 2),
        // one for [y].
        let a_states: Vec<_> = n.states.iter().filter(|s| s.qualifier.is_some()).collect();
        assert_eq!(a_states.len(), 2);
        assert!(a_states.iter().any(|s| s.tags == 0b101));
        assert!(a_states.iter().any(|s| s.tags == 0b010));
    }

    #[test]
    fn union_run_matches_each_private_run() {
        let specs = [
            "/site/people/person",
            "/site//description",
            "/site/people/person/profile",
            "//item",
            "a/*/c",
            "/site/regions//item",
        ];
        let parsed = paths(&specs);
        let n = SharedNfa::build(&parsed.iter().collect::<Vec<_>>()).unwrap();
        let privates: Vec<SelectingNfa> = parsed.iter().map(SelectingNfa::new).collect();
        let words: &[&[&str]] = &[
            &["site", "people", "person"],
            &["site", "people", "person", "profile"],
            &["site", "regions", "item"],
            &["site", "x", "y", "description"],
            &["a", "q", "c"],
            &["item"],
            &["site"],
            &["other", "item"],
            &[],
        ];
        for word in words {
            let mask = accepts_views(&n, word);
            for (v, p) in privates.iter().enumerate() {
                assert_eq!(
                    mask & (1 << v) != 0,
                    p.accepts_word(word),
                    "view {v} ({}) disagrees on {word:?}",
                    specs[v]
                );
            }
        }
    }

    #[test]
    fn alive_mask_tracks_per_view_death() {
        let n = shared(&["/site/people/person", "/site/regions/item"]);
        let mut s = n.initial();
        s = n.next_states(&s, intern("site"), |_, _| true);
        assert_eq!(n.alive_mask(&s), 0b11, "both alive under site");
        let dead_branch = n.next_states(&s, intern("regions"), |_, _| true);
        assert_eq!(
            n.alive_mask(&dead_branch),
            0b10,
            "view 0 dead under regions"
        );
        let gone = n.next_states(&dead_branch, intern("nope"), |_, _| true);
        assert_eq!(n.alive_mask(&gone), 0, "empty set → no view alive");
    }

    #[test]
    fn qualifier_checked_once_per_node_for_shared_state() {
        let n = shared(&["a[x]/b", "a[x]/c"]);
        let mut checks = 0;
        let s = n.next_states(&n.initial(), intern("a"), |_, _| {
            checks += 1;
            true
        });
        assert_eq!(checks, 1, "shared qualifier evaluated once, not per view");
        assert_eq!(n.alive_mask(&s), 0b11);
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(SharedNfa::build(&[]).is_none());
        let eps = Path::empty();
        let ok = parse_path("/a").unwrap();
        assert!(SharedNfa::build(&[&ok, &eps]).is_none());
        let many: Vec<Path> = (0..65).map(|_| parse_path("/a").unwrap()).collect();
        assert!(SharedNfa::build(&many.iter().collect::<Vec<_>>()).is_none());
        assert!(SharedNfa::build(&[&ok]).is_some());
    }

    #[test]
    fn descendant_self_loops_survive_the_union() {
        let n = shared(&["//part", "//part/price"]);
        let m1 = accepts_views(&n, &["x", "y", "part"]);
        assert_eq!(m1, 0b01);
        let m2 = accepts_views(&n, &["x", "part", "price"]);
        // `//part` also matches nothing at `price`, `//part/price` accepts.
        assert_eq!(m2, 0b10);
    }
}
