/// A set of automaton states, bit-packed.
///
/// Selecting and filtering NFAs are linear in |p| (Section 3.4), so state
/// sets are one or two machine words for realistic queries; `nextStates`
/// becomes a handful of shifts and ORs. The `ablation_stateset` bench
/// compares this against a plain vector representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateSet {
    words: Vec<u64>,
}

impl StateSet {
    /// Empty set sized for an automaton with `n` states.
    pub fn new(n: usize) -> StateSet {
        StateSet {
            words: vec![0; n.div_ceil(64).max(1)],
        }
    }

    /// Singleton set.
    pub fn singleton(n: usize, state: usize) -> StateSet {
        let mut s = StateSet::new(n);
        s.insert(state);
        s
    }

    /// Adds a state.
    #[inline]
    pub fn insert(&mut self, state: usize) {
        self.words[state / 64] |= 1u64 << (state % 64);
    }

    /// Removes a state (no-op when absent).
    #[inline]
    pub fn remove(&mut self, state: usize) {
        self.words[state / 64] &= !(1u64 << (state % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, state: usize) -> bool {
        (self.words[state / 64] >> (state % 64)) & 1 == 1
    }

    /// True if no states are present — the pruning condition of
    /// `topDown` (Fig. 3 line 2) and `bottomUp` (Fig. 9 line 6).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of states present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over member states in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &StateSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Clears the set.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains() {
        let mut s = StateSet::new(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1) && !s.contains(65));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn iteration_order() {
        let mut s = StateSet::new(130);
        for i in [5, 70, 128, 2] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![2, 5, 70, 128]);
    }

    #[test]
    fn empty_and_union() {
        let mut a = StateSet::new(10);
        assert!(a.is_empty());
        let b = StateSet::singleton(10, 3);
        a.union_with(&b);
        assert!(!a.is_empty());
        assert!(a.contains(3));
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn zero_state_automaton() {
        let s = StateSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
