//! The filtering NFA of Section 5 (Fig. 8).
//!
//! `Mf` extends the selecting NFA: it is built on both the selecting path
//! *and* the qualifier paths of `p`, stripping the logical connectives.
//! `bottomUp` runs `Mf` top-down (without qualifier checks) purely to
//! decide *reachability*: a node with an empty state set can contribute
//! neither to the node-selecting path nor to any qualifier needed for a
//! selection decision, so its whole subtree is pruned (Fig. 9 line 6).
//!
//! Branch chains spawn recursively: a qualifier path's steps may carry
//! nested qualifiers, whose own paths spawn further branches — this is
//! what guarantees that every node whose `QualDP` value is ever consumed
//! is visited.

use xust_intern::{intern, Sym};
use xust_xpath::{Path, Qualifier, StepKind};

use crate::selecting::StateId;
use crate::stateset::StateSet;

/// One state of a filtering NFA. Unlike selecting states, a filtering
/// state can have several outgoing transitions per symbol (one selecting
/// continuation plus any number of qualifier branches).
#[derive(Debug, Clone, Default)]
pub struct FilterState {
    /// Transitions taken on a specific label (interned at
    /// construction).
    pub label_trans: Vec<(Sym, StateId)>,
    /// Transitions taken on any label (`*` steps).
    pub star_trans: Vec<StateId>,
    /// `*` self-loop introduced by a `//` step.
    pub self_loop: bool,
    /// ε transitions.
    pub eps: Vec<StateId>,
    /// For states mirroring the selecting path: the step index. Branch
    /// states have `None`.
    pub sel_step: Option<usize>,
}

/// The filtering NFA `Mf` of an X expression.
#[derive(Debug, Clone)]
pub struct FilteringNfa {
    /// States indexed by [`StateId`].
    pub states: Vec<FilterState>,
    /// The start state.
    pub start: StateId,
    /// State mirroring the final selecting state.
    pub final_state: StateId,
}

impl FilteringNfa {
    /// Builds `Mf` — O(|p|) states (selecting path + all qualifier paths).
    pub fn new(path: &Path) -> FilteringNfa {
        let mut b = Builder {
            states: vec![FilterState::default()],
        };
        let mut prev: StateId = 0;
        for (i, step) in path.steps.iter().enumerate() {
            let id = b.fresh(Some(i));
            match &step.kind {
                StepKind::Label(l) => b.states[prev].label_trans.push((intern(l), id)),
                StepKind::Wildcard => b.states[prev].star_trans.push(id),
                StepKind::Descendant => {
                    b.states[prev].eps.push(id);
                    b.states[id].self_loop = true;
                }
            }
            if let Some(q) = &step.qualifier {
                b.spawn_qualifier(id, q);
            }
            prev = id;
        }
        FilteringNfa {
            states: b.states,
            start: 0,
            final_state: prev,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True for a degenerate automaton with only the start state.
    pub fn is_empty(&self) -> bool {
        self.states.len() == 1
    }

    /// The filtering state mirroring selecting-path step `i` (the state
    /// whose presence means "a node here may anchor step i's qualifier").
    pub fn state_of_step(&self, step: usize) -> Option<usize> {
        self.states.iter().position(|s| s.sel_step == Some(step))
    }

    /// Initial state set (ε-closure of start).
    pub fn initial(&self) -> StateSet {
        let mut s = StateSet::singleton(self.len(), self.start);
        self.eps_closure(&mut s);
        s
    }

    fn eps_closure(&self, s: &mut StateSet) {
        // ε edges point strictly forward (states are allocated in
        // traversal order), so one ascending sweep suffices.
        for id in 0..self.len() {
            if s.contains(id) {
                for &t in &self.states[id].eps {
                    s.insert(t);
                }
            }
        }
    }

    /// State transition on a node label — Fig. 9 lines 1–2: the same
    /// shape as `nextStates` but *without* qualifier checks. `label` is
    /// interned, so the transition test is an integer compare.
    pub fn next_states(&self, s: &StateSet, label: Sym) -> StateSet {
        let mut out = StateSet::new(self.len());
        for id in s.iter() {
            let st = &self.states[id];
            if st.self_loop {
                out.insert(id);
            }
            for &t in &st.star_trans {
                out.insert(t);
            }
            for (l, t) in &st.label_trans {
                if *l == label {
                    out.insert(*t);
                }
            }
        }
        self.eps_closure(&mut out);
        out
    }
}

struct Builder {
    states: Vec<FilterState>,
}

impl Builder {
    fn fresh(&mut self, sel_step: Option<usize>) -> StateId {
        let id = self.states.len();
        self.states.push(FilterState {
            sel_step,
            ..FilterState::default()
        });
        id
    }

    /// Strips logical connectives and spawns a branch chain per qualifier
    /// path, anchored at `state`.
    fn spawn_qualifier(&mut self, state: StateId, q: &Qualifier) {
        match q {
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                self.spawn_qualifier(state, a);
                self.spawn_qualifier(state, b);
            }
            Qualifier::Not(a) => self.spawn_qualifier(state, a),
            Qualifier::LabelIs(_) => {}
            Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => {
                self.spawn_path(state, &qp.path);
            }
        }
    }

    fn spawn_path(&mut self, anchor: StateId, path: &Path) {
        let mut cur = anchor;
        for step in &path.steps {
            let id = self.fresh(None);
            match &step.kind {
                StepKind::Label(l) => self.states[cur].label_trans.push((intern(l), id)),
                StepKind::Wildcard => self.states[cur].star_trans.push(id),
                StepKind::Descendant => {
                    self.states[cur].eps.push(id);
                    self.states[id].self_loop = true;
                }
            }
            if let Some(q) = &step.qualifier {
                self.spawn_qualifier(id, q);
            }
            cur = id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn nfa(p: &str) -> FilteringNfa {
        FilteringNfa::new(&parse_path(p).unwrap())
    }

    #[test]
    fn fig8_structure() {
        // p1 = //part[pname='keyboard']//part[¬supplier/sname='HP' ∧
        // ¬supplier/price<15]. The paper's Fig. 8 draws 12 states (one
        // per sub-qualifier q3–q9); our construction allocates one state
        // per qualifier-path *step* instead (pname; supplier/sname;
        // supplier/price = 5 branch states + 5 selecting states), which
        // recognises exactly the same set of relevant nodes. The truth
        // values the paper attaches to extra states live in the QualTable
        // (`xust_xpath::QualTable`) rather than in automaton states.
        let m = nfa(
            "//part[pname = 'keyboard']//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
        );
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn qualifier_branches_reachable() {
        let m = nfa("//part[supplier/sname = 'HP']");
        // part → supplier → sname must all have states.
        let s0 = m.initial();
        let s1 = m.next_states(&s0, intern("part"));
        assert!(!s1.is_empty());
        let s2 = m.next_states(&s1, intern("supplier"));
        assert!(!s2.is_empty());
        let s3 = m.next_states(&s2, intern("sname"));
        assert!(!s3.is_empty());
        // An unrelated child of part keeps the //-loop alive (parts can
        // nest), but an unrelated child of supplier for a child-only
        // qualifier path dies out except for the // state.
        let s2b = m.next_states(&s1, intern("unrelated"));
        // the // self-loop from the selecting path survives everywhere
        assert!(!s2b.is_empty());
    }

    #[test]
    fn pruning_when_no_match_possible() {
        // Example 5.3 second part: p' = supplier//part at a root with no
        // supplier children → no states after the root.
        let m = nfa("supplier//part");
        let s0 = m.initial();
        let s1 = m.next_states(&s0, intern("db"));
        assert!(s1.is_empty());
    }

    #[test]
    fn nested_qualifier_paths_spawn_branches() {
        // b's qualifier contains c[d] — d must be reachable below c.
        let m = nfa("a[b[c[d]]]");
        let s = m.initial();
        let s = m.next_states(&s, intern("a"));
        let s = m.next_states(&s, intern("b"));
        let s = m.next_states(&s, intern("c"));
        let s = m.next_states(&s, intern("d"));
        assert!(!s.is_empty());
    }

    #[test]
    fn selecting_states_marked() {
        let m = nfa("a[x]/b");
        let marked: Vec<Option<usize>> = m.states.iter().map(|s| s.sel_step).collect();
        // start, a (step 0), branch x (None), b (step 1)
        assert_eq!(marked[0], None);
        assert!(marked.contains(&Some(0)));
        assert!(marked.contains(&Some(1)));
        assert!(marked.iter().filter(|s| s.is_none()).count() >= 2);
        assert_eq!(m.states[m.final_state].sel_step, Some(1));
    }

    #[test]
    fn descendant_qualifier_path_loops() {
        // Qualifier path with // keeps all descendants reachable.
        let m = nfa("a[.//flag]");
        let s = m.initial();
        let s = m.next_states(&s, intern("a"));
        let s1 = m.next_states(&s, intern("x"));
        assert!(!s1.is_empty());
        let s2 = m.next_states(&s1, intern("y"));
        assert!(!s2.is_empty());
        let s3 = m.next_states(&s2, intern("flag"));
        assert!(!s3.is_empty());
    }
}
