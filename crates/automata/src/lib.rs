#![warn(missing_docs)]
//! `xust-automata` — the automaton machinery of *Querying XML with Update
//! Syntax*.
//!
//! Two automata are built from the XPath expression `p` embedded in a
//! transform query:
//!
//! * the **selecting NFA** `Mp` (Section 3.4) drives the top-down
//!   transform ([`SelectingNfa::next_states`] is Fig. 4's `nextStates`)
//!   and the composition algorithm of Section 4 (via the δ′ extensions
//!   [`SelectingNfa::next_states_wild`] / [`SelectingNfa::desc_closure`]);
//! * the **filtering NFA** `Mf` (Section 5, Fig. 8) additionally tracks
//!   qualifier paths so the bottom-up qualifier pass can prune subtrees
//!   that affect neither selection nor any needed qualifier.
//!
//! Both are linear in |p| and have the semi-linear structure the paper
//! contrasts with the tree automata of Koch \[19\] and the AFAs of
//! Gupta–Suciu \[17\]: the only cycles are the ∗ self-loops introduced by
//! `//`.
//!
//! # Example
//!
//! ```
//! use xust_xpath::parse_path;
//! use xust_automata::SelectingNfa;
//!
//! let p = parse_path("//part[pname = 'keyboard']//part").unwrap();
//! let m = SelectingNfa::new(&p);
//! assert!(m.accepts_word(&["db", "part", "sub", "part"]));
//! ```

mod alphabet;
mod filtering;
mod selecting;
mod shared;
mod stateset;

pub use alphabet::LabelSet;
pub use filtering::{FilterState, FilteringNfa};
pub use selecting::{SelState, SelectingNfa, StateId};
pub use shared::{SharedNfa, SharedState, MAX_SHARED_VIEWS};
pub use stateset::StateSet;
