//! Word lists for synthetic text content.
//!
//! The original XMark generator draws its prose from Shakespeare; we use
//! a fixed vocabulary of common English words, which reproduces the
//! property that matters for the experiments: element text is incompressible
//! filler whose volume dominates document size.

/// Words used to fill `text`, `description`, and `name` elements.
pub const WORDS: &[&str] = &[
    "against", "ancient", "anything", "appear", "battle", "beauty", "because", "believe",
    "between", "blood", "bright", "broken", "brother", "castle", "change", "country", "courage",
    "crown", "danger", "daughter", "death", "desire", "dream", "earth", "empire", "enemy",
    "evening", "father", "feather", "fire", "flower", "follow", "forest", "fortune", "freedom",
    "friend", "garden", "gentle", "glory", "golden", "grace", "great", "heart", "heaven",
    "honest", "honour", "horse", "house", "hunger", "island", "journey", "justice", "kingdom",
    "knight", "labour", "letter", "light", "little", "lonely", "market", "marriage", "master",
    "memory", "mercy", "midnight", "mirror", "moment", "morning", "mother", "mountain", "murder",
    "music", "nature", "never", "night", "noble", "nothing", "ocean", "orange", "palace",
    "passion", "patience", "peace", "people", "perhaps", "pleasure", "poison", "power", "prince",
    "prison", "promise", "proud", "purple", "quarrel", "queen", "quiet", "reason", "remember",
    "return", "river", "royal", "sacred", "sailor", "season", "secret", "shadow", "silence",
    "silver", "simple", "sister", "soldier", "sorrow", "spirit", "spring", "stone", "storm",
    "stranger", "summer", "sunset", "sweet", "sword", "temple", "thunder", "tomorrow", "tonight",
    "treasure", "trouble", "trust", "truth", "valley", "velvet", "victory", "village", "virtue",
    "voyage", "wander", "warrior", "water", "weather", "welcome", "whisper", "window", "winter",
    "wisdom", "wonder", "worthy", "yellow", "yesterday", "young",
];

/// Countries used for `location` and `country` elements. The first entry
/// is weighted heavily for items in the `namerica` region, which is what
/// makes U9's `[location = "United States"]` selective but non-trivial —
/// mirroring real XMark, where roughly three quarters of items sit in
/// `namerica` with a United States location.
pub const COUNTRIES: &[&str] = &[
    "United States",
    "Germany",
    "France",
    "Japan",
    "Brazil",
    "Australia",
    "Canada",
    "Italy",
    "Spain",
    "Kenya",
    "Egypt",
    "India",
    "China",
    "Mexico",
    "Norway",
    "Poland",
];

/// Given names for `person/name`.
pub const FIRST_NAMES: &[&str] = &[
    "Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger", "Frances", "Grace", "Hedy", "John",
    "Katherine", "Kurt", "Leslie", "Margaret", "Niklaus", "Radia", "Robin", "Shafi", "Tim",
    "Vint",
];

/// Family names for `person/name`.
pub const LAST_NAMES: &[&str] = &[
    "Baker", "Chen", "Dubois", "Evans", "Fischer", "Garcia", "Hansen", "Ivanov", "Johnson",
    "Kim", "Larsen", "Moreau", "Nakamura", "Okafor", "Patel", "Quinn", "Rossi", "Schmidt",
    "Tanaka", "Weber",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_non_empty_and_unique() {
        assert!(WORDS.len() > 100);
        let mut sorted = WORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), WORDS.len(), "duplicate word in vocabulary");
        assert_eq!(COUNTRIES[0], "United States");
    }
}
