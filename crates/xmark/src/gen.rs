//! The generator proper: emits an XMark-like `site` document to any
//! [`XmlSink`].
//!
//! Schema coverage is driven by the paper's workload (Fig. 11): every
//! element and attribute that U1–U10 touch is produced with realistic
//! selectivity — `person/@id`, `profile/age`, `regions//item/location`,
//! `open_auction` `initial`/`reserve`/`bidder/increase`,
//! `annotation/happiness`, and descriptions with nested
//! `parlist/listitem/text/emph/keyword` structure (U6's 12-step path).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xust_tree::Document;

use crate::config::XmarkConfig;
use crate::sink::{TreeSink, WriteSink, XmlSink};
use crate::vocab::{COUNTRIES, FIRST_NAMES, LAST_NAMES, WORDS};

/// Generates an in-memory document.
pub fn generate(cfg: XmarkConfig) -> Document {
    let mut sink = TreeSink::new();
    Generator::new(cfg).run(&mut sink);
    sink.finish()
}

/// Generates directly to a writer with O(depth) memory.
pub fn generate_to_writer<W: Write>(cfg: XmarkConfig, out: W) -> io::Result<()> {
    let mut sink = WriteSink::new(out);
    Generator::new(cfg).run(&mut sink);
    sink.finish().map_err(|e| io::Error::other(e.to_string()))?;
    Ok(())
}

/// Generates to a file (buffered).
pub fn generate_to_file(cfg: XmarkConfig, path: impl AsRef<Path>) -> io::Result<()> {
    let f = BufWriter::new(File::create(path)?);
    generate_to_writer(cfg, f)
}

/// Generates serialized XML as a string.
pub fn generate_string(cfg: XmarkConfig) -> String {
    let mut buf = Vec::new();
    generate_to_writer(cfg, &mut buf).expect("in-memory generation cannot fail");
    String::from_utf8(buf).expect("generator produces UTF-8")
}

/// Region names with their share of items; `namerica` dominates as in
/// original XMark, making U9's `location = "United States"` qualifier
/// broad but not universal.
const REGIONS: &[(&str, f64)] = &[
    ("africa", 0.07),
    ("asia", 0.10),
    ("australia", 0.07),
    ("europe", 0.20),
    ("namerica", 0.50),
    ("samerica", 0.06),
];

struct Generator {
    cfg: XmarkConfig,
    rng: StdRng,
}

impl Generator {
    fn new(cfg: XmarkConfig) -> Generator {
        // Mix the factor into the seed so different scales produce
        // different (but reproducible) content.
        let seed = cfg.seed ^ cfg.factor.to_bits().rotate_left(17);
        Generator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn run(&mut self, s: &mut dyn XmlSink) {
        s.start("site", vec![]);
        self.regions(s);
        self.categories(s);
        self.catgraph(s);
        self.people(s);
        self.open_auctions(s);
        self.closed_auctions(s);
        s.end("site");
    }

    // ---- helpers ----

    fn word(&mut self) -> &'static str {
        WORDS[self.rng.gen_range(0..WORDS.len())]
    }

    fn words(&mut self, n: usize) -> String {
        let mut out = String::with_capacity(n * 8);
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word());
        }
        out
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    fn money(&mut self, max: f64) -> String {
        format!("{:.2}", self.rng.gen_range(0.0..max))
    }

    fn date(&mut self) -> String {
        format!(
            "{:02}/{:02}/{}",
            self.rng.gen_range(1..=12),
            self.rng.gen_range(1..=28),
            self.rng.gen_range(1998..=2001)
        )
    }

    fn simple(&mut self, s: &mut dyn XmlSink, name: &str, content: &str) {
        s.start(name, vec![]);
        s.text(content);
        s.end(name);
    }

    /// `<text>` with inline `emph`/`keyword` markup; `emph` occasionally
    /// nests a `keyword` (the tail of U6's path `…/text/emph/keyword`).
    fn rich_text(&mut self, s: &mut dyn XmlSink, mean_words: usize) {
        s.start("text", vec![]);
        let chunks = self.rng.gen_range(2..=4);
        for _ in 0..chunks {
            let n = (mean_words / chunks).max(3);
            let count = self.rng.gen_range(n / 2..=n + n / 2);
            let w = self.words(count);
            s.text(&w);
            match self.rng.gen_range(0..10) {
                0..=3 => {
                    // emph, half the time containing a keyword
                    s.start("emph", vec![]);
                    if self.chance(0.6) {
                        s.start("keyword", vec![]);
                        let count = self.rng.gen_range(1..=2);
                        let kw = self.words(count);
                        s.text(&kw);
                        s.end("keyword");
                        let tail = self.words(1);
                        s.text(&tail);
                    } else {
                        let count = self.rng.gen_range(1..=3);
                        let w = self.words(count);
                        s.text(&w);
                    }
                    s.end("emph");
                }
                4..=6 => {
                    s.start("keyword", vec![]);
                    let count = self.rng.gen_range(1..=2);
                    let w = self.words(count);
                    s.text(&w);
                    s.end("keyword");
                }
                _ => {}
            }
        }
        s.end("text");
    }

    /// `description`: either a flat `text` or a `parlist` of `listitem`s,
    /// where a listitem may nest another `parlist` (depth ≤ 2 as in U6).
    fn description(&mut self, s: &mut dyn XmlSink, nested_bias: f64) {
        s.start("description", vec![]);
        if self.chance(0.3) {
            self.rich_text(s, 40);
        } else {
            self.parlist(s, nested_bias, 0);
        }
        s.end("description");
    }

    fn parlist(&mut self, s: &mut dyn XmlSink, nested_bias: f64, depth: usize) {
        s.start("parlist", vec![]);
        let items = self.rng.gen_range(1..=3);
        for _ in 0..items {
            s.start("listitem", vec![]);
            if depth == 0 && self.chance(nested_bias) {
                self.parlist(s, nested_bias, 1);
            } else {
                self.rich_text(s, 30);
            }
            s.end("listitem");
        }
        s.end("parlist");
    }

    // ---- sections ----

    fn regions(&mut self, s: &mut dyn XmlSink) {
        s.start("regions", vec![]);
        let total = self.cfg.items();
        let mut item_id = 0usize;
        for (region, share) in REGIONS {
            s.start(region, vec![]);
            let count = ((total as f64) * share).round() as usize;
            for _ in 0..count {
                self.item(s, item_id, region);
                item_id += 1;
            }
            s.end(region);
        }
        s.end("regions");
    }

    fn item(&mut self, s: &mut dyn XmlSink, id: usize, region: &str) {
        s.start("item", vec![("id".into(), format!("item{id}"))]);
        let location = if region == "namerica" && self.chance(0.9) {
            COUNTRIES[0] // United States
        } else {
            COUNTRIES[self.rng.gen_range(1..COUNTRIES.len())]
        };
        self.simple(s, "location", location);
        let qty = self.rng.gen_range(1..=5).to_string();
        self.simple(s, "quantity", &qty);
        let name = self.words(2);
        self.simple(s, "name", &name);
        let payment = if self.chance(0.5) {
            "Creditcard"
        } else {
            "Money order, Cash"
        };
        self.simple(s, "payment", payment);
        self.description(s, 0.4);
        let shipping = if self.chance(0.5) {
            "Will ship internationally"
        } else {
            "Buyer pays fixed shipping charges"
        };
        self.simple(s, "shipping", shipping);
        for _ in 0..self.rng.gen_range(1..=3) {
            let cat = self.rng.gen_range(0..self.cfg.categories());
            s.start(
                "incategory",
                vec![("category".into(), format!("category{cat}"))],
            );
            s.end("incategory");
        }
        if self.chance(0.6) {
            s.start("mailbox", vec![]);
            for _ in 0..self.rng.gen_range(1..=2) {
                s.start("mail", vec![]);
                let from = self.person_ref_name();
                self.simple(s, "from", &from);
                let to = self.person_ref_name();
                self.simple(s, "to", &to);
                let d = self.date();
                self.simple(s, "date", &d);
                self.rich_text(s, 50);
                s.end("mail");
            }
            s.end("mailbox");
        }
        s.end("item");
    }

    fn person_ref_name(&mut self) -> String {
        let f = FIRST_NAMES[self.rng.gen_range(0..FIRST_NAMES.len())];
        let l = LAST_NAMES[self.rng.gen_range(0..LAST_NAMES.len())];
        format!("{f} {l}")
    }

    fn categories(&mut self, s: &mut dyn XmlSink) {
        s.start("categories", vec![]);
        for i in 0..self.cfg.categories() {
            s.start("category", vec![("id".into(), format!("category{i}"))]);
            let name = self.words(1);
            self.simple(s, "name", &name);
            self.description(s, 0.2);
            s.end("category");
        }
        s.end("categories");
    }

    fn catgraph(&mut self, s: &mut dyn XmlSink) {
        s.start("catgraph", vec![]);
        let n = self.cfg.categories();
        for _ in 0..n {
            let from = self.rng.gen_range(0..n);
            let to = self.rng.gen_range(0..n);
            s.start(
                "edge",
                vec![
                    ("from".into(), format!("category{from}")),
                    ("to".into(), format!("category{to}")),
                ],
            );
            s.end("edge");
        }
        s.end("catgraph");
    }

    fn people(&mut self, s: &mut dyn XmlSink) {
        s.start("people", vec![]);
        for i in 0..self.cfg.persons() {
            self.person(s, i);
        }
        s.end("people");
    }

    fn person(&mut self, s: &mut dyn XmlSink, id: usize) {
        s.start("person", vec![("id".into(), format!("person{id}"))]);
        let name = self.person_ref_name();
        self.simple(s, "name", &name);
        let email = format!(
            "mailto:{}@example.com",
            name.to_lowercase().replace(' ', ".")
        );
        self.simple(s, "emailaddress", &email);
        if self.chance(0.5) {
            let phone = format!(
                "+{} ({}) {}",
                self.rng.gen_range(1..99),
                self.rng.gen_range(100..999),
                self.rng.gen_range(1_000_000..9_999_999)
            );
            self.simple(s, "phone", &phone);
        }
        if self.chance(0.4) {
            s.start("address", vec![]);
            let street = format!("{} {} St", self.rng.gen_range(1..99), self.word());
            self.simple(s, "street", &street);
            let city = self.word().to_string();
            self.simple(s, "city", &city);
            let country = COUNTRIES[self.rng.gen_range(0..COUNTRIES.len())];
            self.simple(s, "country", country);
            let zip = self.rng.gen_range(10000..99999).to_string();
            self.simple(s, "zipcode", &zip);
            s.end("address");
        }
        if self.chance(0.3) {
            let hp = format!("http://example.com/~person{id}");
            self.simple(s, "homepage", &hp);
        }
        if self.chance(0.25) {
            let cc = format!(
                "{} {} {} {}",
                self.rng.gen_range(1000..9999),
                self.rng.gen_range(1000..9999),
                self.rng.gen_range(1000..9999),
                self.rng.gen_range(1000..9999)
            );
            self.simple(s, "creditcard", &cc);
        }
        // profile — U3's `profile/age > 20` needs age to exist often and
        // exceed 20 most of the time (ages 18–70).
        s.start("profile", vec![("income".into(), self.money(100_000.0))]);
        for _ in 0..self.rng.gen_range(0..=3) {
            let cat = self.rng.gen_range(0..self.cfg.categories());
            s.start(
                "interest",
                vec![("category".into(), format!("category{cat}"))],
            );
            s.end("interest");
        }
        if self.chance(0.3) {
            s.start("education", vec![]);
            s.text(
                ["High School", "College", "Graduate School", "Other"][self.rng.gen_range(0..4)],
            );
            s.end("education");
        }
        if self.chance(0.5) {
            let g = if self.chance(0.5) { "male" } else { "female" };
            self.simple(s, "gender", g);
        }
        let business = if self.chance(0.5) { "Yes" } else { "No" };
        self.simple(s, "business", business);
        if self.chance(0.7) {
            let age = self.rng.gen_range(18..=70).to_string();
            self.simple(s, "age", &age);
        }
        s.end("profile");
        if self.chance(0.4) {
            s.start("watches", vec![]);
            for _ in 0..self.rng.gen_range(1..=2) {
                let a = self.rng.gen_range(0..self.cfg.open_auctions());
                s.start(
                    "watch",
                    vec![("open_auction".into(), format!("open_auction{a}"))],
                );
                s.end("watch");
            }
            s.end("watches");
        }
        s.end("person");
    }

    fn open_auctions(&mut self, s: &mut dyn XmlSink) {
        s.start("open_auctions", vec![]);
        for i in 0..self.cfg.open_auctions() {
            self.open_auction(s, i);
        }
        s.end("open_auctions");
    }

    fn open_auction(&mut self, s: &mut dyn XmlSink, id: usize) {
        s.start(
            "open_auction",
            vec![("id".into(), format!("open_auction{id}"))],
        );
        // U8: initial > 10 (≈ 80% of auctions) and reserve > 50 (present
        // 45%, above 50 ≈ 70% of those).
        let initial = self.money(100.0);
        self.simple(s, "initial", &initial);
        if self.chance(0.45) {
            let r = format!("{:.2}", self.rng.gen_range(10.0..200.0));
            self.simple(s, "reserve", &r);
        }
        let bidders = self.rng.gen_range(0..=5);
        for _ in 0..bidders {
            s.start("bidder", vec![]);
            let d = self.date();
            self.simple(s, "date", &d);
            let t = format!(
                "{:02}:{:02}:{:02}",
                self.rng.gen_range(0..24),
                self.rng.gen_range(0..60),
                self.rng.gen_range(0..60)
            );
            self.simple(s, "time", &t);
            let p = self.rng.gen_range(0..self.cfg.persons());
            s.start("personref", vec![("person".into(), format!("person{p}"))]);
            s.end("personref");
            // U7: increase > 5; U10: increase > 10 — draw 1.5..30.
            let inc = format!("{:.2}", self.rng.gen_range(1.5..30.0));
            self.simple(s, "increase", &inc);
            s.end("bidder");
        }
        let current = self.money(300.0);
        self.simple(s, "current", &current);
        if self.chance(0.2) {
            self.simple(s, "privacy", "Yes");
        }
        let item = self.rng.gen_range(0..self.cfg.items());
        s.start("itemref", vec![("item".into(), format!("item{item}"))]);
        s.end("itemref");
        let seller = self.rng.gen_range(0..self.cfg.persons());
        s.start("seller", vec![("person".into(), format!("person{seller}"))]);
        s.end("seller");
        self.annotation(s);
        let qty = self.rng.gen_range(1..=5).to_string();
        self.simple(s, "quantity", &qty);
        let ty = if self.chance(0.7) {
            "Regular"
        } else {
            "Featured"
        };
        self.simple(s, "type", ty);
        s.start("interval", vec![]);
        let d = self.date();
        self.simple(s, "start", &d);
        let d = self.date();
        self.simple(s, "end", &d);
        s.end("interval");
        s.end("open_auction");
    }

    /// `annotation` with `happiness` drawn 0..30, so U7's
    /// `happiness < 20` holds for about two thirds of annotations.
    fn annotation(&mut self, s: &mut dyn XmlSink) {
        s.start("annotation", vec![]);
        let p = self.rng.gen_range(0..self.cfg.persons());
        s.start("author", vec![("person".into(), format!("person{p}"))]);
        s.end("author");
        // High nesting bias: U6 requires depth-2 parlists under
        // closed-auction descriptions.
        self.description(s, 0.6);
        let h = self.rng.gen_range(0..30).to_string();
        self.simple(s, "happiness", &h);
        s.end("annotation");
    }

    fn closed_auctions(&mut self, s: &mut dyn XmlSink) {
        s.start("closed_auctions", vec![]);
        for _ in 0..self.cfg.closed_auctions() {
            s.start("closed_auction", vec![]);
            let seller = self.rng.gen_range(0..self.cfg.persons());
            s.start("seller", vec![("person".into(), format!("person{seller}"))]);
            s.end("seller");
            let buyer = self.rng.gen_range(0..self.cfg.persons());
            s.start("buyer", vec![("person".into(), format!("person{buyer}"))]);
            s.end("buyer");
            let item = self.rng.gen_range(0..self.cfg.items());
            s.start("itemref", vec![("item".into(), format!("item{item}"))]);
            s.end("itemref");
            let price = self.money(400.0);
            self.simple(s, "price", &price);
            let d = self.date();
            self.simple(s, "date", &d);
            let qty = self.rng.gen_range(1..=5).to_string();
            self.simple(s, "quantity", &qty);
            let ty = if self.chance(0.7) {
                "Regular"
            } else {
                "Featured"
            };
            self.simple(s, "type", ty);
            self.annotation(s);
            s.end("closed_auction");
        }
        s.end("closed_auctions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::{eval_path_root, parse_path};

    #[test]
    fn deterministic() {
        let a = generate_string(XmarkConfig::new(0.005));
        let b = generate_string(XmarkConfig::new(0.005));
        assert_eq!(a, b);
        let c = generate_string(XmarkConfig::new(0.005).with_seed(7));
        assert_ne!(a, c);
    }

    #[test]
    fn tree_and_stream_agree() {
        let cfg = XmarkConfig::new(0.002);
        let doc = generate(cfg);
        let streamed = generate_string(cfg);
        assert_eq!(doc.serialize(), streamed);
    }

    #[test]
    fn top_level_structure() {
        let doc = generate(XmarkConfig::new(0.002));
        let root = doc.root().unwrap();
        assert_eq!(doc.name(root), Some("site"));
        let sections: Vec<_> = doc
            .element_children(root)
            .map(|n| doc.name(n).unwrap().to_string())
            .collect();
        assert_eq!(
            sections,
            [
                "regions",
                "categories",
                "catgraph",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn all_workload_paths_non_empty() {
        // Every U1–U10 path must select at least one node at factor 0.02,
        // otherwise the Fig. 12 experiment degenerates.
        let doc = generate(XmarkConfig::new(0.02));
        let queries = [
            "/site/people/person",
            "/site/people/person[@id = \"person10\"]",
            "/site/people/person[profile/age > 20]",
            "/site/regions//item",
            "/site//description",
            "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
            "/site/open_auctions/open_auction[bidder/increase>5]/annotation[happiness < 20]/description//text",
            "/site/open_auctions/open_auction[initial > 10 and reserve >50]/bidder",
            "/site/regions//item[location =\"United States\"]",
            "/site//open_auctions/open_auction[not(@id =\"open_auction2\")]/bidder[increase > 10]",
        ];
        for q in queries {
            let path = parse_path(q).unwrap();
            let hits = eval_path_root(&doc, &path);
            assert!(!hits.is_empty(), "{q} selected nothing");
        }
    }

    #[test]
    fn u2_selects_exactly_one_person() {
        let doc = generate(XmarkConfig::new(0.02));
        let path = parse_path("/site/people/person[@id = \"person10\"]").unwrap();
        assert_eq!(eval_path_root(&doc, &path).len(), 1);
    }

    #[test]
    fn size_scales_linearly() {
        let small = generate_string(XmarkConfig::new(0.002)).len();
        let large = generate_string(XmarkConfig::new(0.008)).len();
        let ratio = large as f64 / small as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "4x factor should give ≈4x bytes, got {ratio:.2}"
        );
    }

    #[test]
    fn calibration_factor_002_is_about_2mb() {
        let bytes = generate_string(XmarkConfig::new(0.02)).len();
        let mb = bytes as f64 / 1e6;
        assert!(
            (1.3..3.5).contains(&mb),
            "factor 0.02 should be ≈2.2 MB, got {mb:.2} MB"
        );
    }

    #[test]
    fn generate_to_file_roundtrip() {
        let path = std::env::temp_dir().join("xust_xmark_test.xml");
        generate_to_file(XmarkConfig::new(0.001), &path).unwrap();
        let doc = Document::parse_file(&path).unwrap();
        assert_eq!(doc.name(doc.root().unwrap()), Some("site"));
        std::fs::remove_file(&path).ok();
    }
}
