/// Configuration for the XMark-like generator.
///
/// `factor` is the XMark scaling factor: the paper's experiments use
/// 0.02–0.34 for the DOM algorithms (2.22 MB–37.8 MB documents) and 2–10
/// for the SAX algorithm (224 MB–1.1 GB). Entity counts scale linearly
/// with the factor, calibrated so factor 0.02 yields roughly a 2 MB
/// serialized document like the original generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmarkConfig {
    /// XMark scaling factor (> 0).
    pub factor: f64,
    /// RNG seed — generation is fully deterministic given (factor, seed).
    pub seed: u64,
}

/// Entity counts at scaling factor 1.0, matching the original XMark
/// proportions (items : persons : open : closed ≈ 21750 : 25500 : 12000 :
/// 9750).
pub(crate) const ITEMS_AT_1: f64 = 21750.0;
pub(crate) const PERSONS_AT_1: f64 = 25500.0;
pub(crate) const OPEN_AT_1: f64 = 12000.0;
pub(crate) const CLOSED_AT_1: f64 = 9750.0;
pub(crate) const CATEGORIES_AT_1: f64 = 1000.0;

impl XmarkConfig {
    /// Config with the default seed.
    pub fn new(factor: f64) -> XmarkConfig {
        assert!(factor > 0.0, "XMark factor must be positive");
        XmarkConfig {
            factor,
            seed: 0x5EED_0001,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> XmarkConfig {
        self.seed = seed;
        self
    }

    pub(crate) fn count(&self, at_1: f64) -> usize {
        ((at_1 * self.factor).round() as usize).max(1)
    }

    /// Number of `item` elements across all regions.
    pub fn items(&self) -> usize {
        self.count(ITEMS_AT_1)
    }

    /// Number of `person` elements.
    pub fn persons(&self) -> usize {
        self.count(PERSONS_AT_1)
    }

    /// Number of `open_auction` elements.
    pub fn open_auctions(&self) -> usize {
        self.count(OPEN_AT_1)
    }

    /// Number of `closed_auction` elements.
    pub fn closed_auctions(&self) -> usize {
        self.count(CLOSED_AT_1)
    }

    /// Number of `category` elements.
    pub fn categories(&self) -> usize {
        self.count(CATEGORIES_AT_1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_linearly() {
        let small = XmarkConfig::new(0.02);
        let large = XmarkConfig::new(0.2);
        assert_eq!(small.items(), 435);
        assert_eq!(large.items(), 4350);
        assert_eq!(small.persons(), 510);
        assert_eq!(small.open_auctions(), 240);
        assert_eq!(small.closed_auctions(), 195);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        XmarkConfig::new(0.0);
    }

    #[test]
    fn tiny_factor_still_produces_entities() {
        let c = XmarkConfig::new(0.00001);
        assert!(c.items() >= 1);
        assert!(c.persons() >= 1);
    }
}
