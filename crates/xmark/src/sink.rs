use std::io::Write;

use xust_sax::{SaxResult, SaxWriter};
use xust_tree::{Document, NodeId};

/// Destination for generated XML: either an in-memory [`Document`] or a
/// streaming writer. Streaming is what lets the Fig. 14 experiment
/// produce documents far larger than memory, exactly like the original
/// XMark C generator.
pub trait XmlSink {
    /// Opens an element.
    fn start(&mut self, name: &str, attrs: Vec<(String, String)>);
    /// Emits character data.
    fn text(&mut self, t: &str);
    /// Closes the innermost element.
    fn end(&mut self, name: &str);
}

/// Builds a [`Document`] in memory.
pub struct TreeSink {
    doc: Document,
    stack: Vec<NodeId>,
}

impl TreeSink {
    /// Empty sink.
    pub fn new() -> TreeSink {
        TreeSink {
            doc: Document::new(),
            stack: Vec::new(),
        }
    }

    /// Returns the built document (panics on unbalanced output).
    pub fn finish(self) -> Document {
        assert!(self.stack.is_empty(), "unbalanced generator output");
        self.doc
    }
}

impl Default for TreeSink {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlSink for TreeSink {
    fn start(&mut self, name: &str, attrs: Vec<(String, String)>) {
        let attrs = attrs
            .into_iter()
            .map(|(k, v)| (xust_sax::intern(&k), v))
            .collect();
        let node = self.doc.create_element_with_attrs(name, attrs);
        match self.stack.last() {
            Some(&parent) => self.doc.append_child(parent, node),
            None => self.doc.set_root(node),
        }
        self.stack.push(node);
    }

    fn text(&mut self, t: &str) {
        if let Some(&parent) = self.stack.last() {
            // Coalesce adjacent text so the in-memory tree matches what a
            // serialize→parse roundtrip produces (parsers merge runs of
            // character data into one node).
            if let Some(last) = self.doc.last_child(parent) {
                if let Some(existing) = self.doc.text(last) {
                    let merged = format!("{existing}{t}");
                    let n = self.doc.create_text(merged);
                    self.doc.replace(last, n);
                    return;
                }
            }
            let n = self.doc.create_text(t);
            self.doc.append_child(parent, n);
        }
    }

    fn end(&mut self, _name: &str) {
        self.stack.pop();
    }
}

/// Streams serialized XML to any [`Write`] target with O(depth) memory.
pub struct WriteSink<W: Write> {
    writer: SaxWriter<W>,
    error: Option<xust_sax::SaxError>,
}

impl<W: Write> WriteSink<W> {
    /// Wraps an output writer.
    pub fn new(out: W) -> WriteSink<W> {
        WriteSink {
            writer: SaxWriter::new(out),
            error: None,
        }
    }

    /// Flushes and returns the writer (or the first deferred error).
    pub fn finish(self) -> SaxResult<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.finish()
    }

    fn record<T>(&mut self, r: SaxResult<T>) {
        if let Err(e) = r {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> XmlSink for WriteSink<W> {
    fn start(&mut self, name: &str, attrs: Vec<(String, String)>) {
        let r = self.writer.start_element(name, &attrs);
        self.record(r);
    }

    fn text(&mut self, t: &str) {
        let r = self.writer.text(t);
        self.record(r);
    }

    fn end(&mut self, name: &str) {
        let r = self.writer.end_element(name);
        self.record(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_sink_builds_document() {
        let mut s = TreeSink::new();
        s.start("a", vec![("k".into(), "v".into())]);
        s.text("hello");
        s.start("b", vec![]);
        s.end("b");
        s.end("a");
        let doc = s.finish();
        assert_eq!(doc.serialize(), "<a k=\"v\">hello<b/></a>");
    }

    #[test]
    fn write_sink_streams() {
        let mut s = WriteSink::new(Vec::new());
        s.start("a", vec![]);
        s.text("x");
        s.end("a");
        let bytes = s.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "<a>x</a>");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn tree_sink_detects_unbalanced() {
        let mut s = TreeSink::new();
        s.start("a", vec![]);
        s.finish();
    }
}
