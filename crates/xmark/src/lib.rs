#![warn(missing_docs)]
//! `xust-xmark` — a deterministic XMark-like benchmark data generator.
//!
//! The paper's experiments (Section 7) run on documents produced by the
//! XMark generator \[24\] at scaling factors 0.02–0.34 (DOM experiments)
//! and 2–10 (SAX experiments). This crate is the substitute substrate: a
//! seeded, reproducible generator covering the slice of the XMark schema
//! that the workload queries U1–U10 exercise, with entity counts and
//! document sizes calibrated to the original's (factor 0.02 ≈ 2 MB).
//!
//! # Example
//!
//! ```
//! use xust_xmark::{generate, XmarkConfig};
//!
//! let doc = generate(XmarkConfig::new(0.001));
//! assert_eq!(doc.name(doc.root().unwrap()), Some("site"));
//! ```

mod config;
mod gen;
mod sink;
mod vocab;

pub use config::XmarkConfig;
pub use gen::{generate, generate_string, generate_to_file, generate_to_writer};
pub use sink::{TreeSink, WriteSink, XmlSink};
