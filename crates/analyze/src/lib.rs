//! Registration-time static analysis over transform views.
//!
//! Everything in this crate reasons about *syntax only* — paths, update
//! operations, and the NFAs compiled from them — never about a concrete
//! document. That is the point: the verdicts are computed once, when a
//! view is registered (or a transform prepared), and then consumed on
//! every hot-path decision without re-deriving anything per request or
//! per write. Four analyses:
//!
//! 1. **Qualifier constant folding** ([`fold_qualifier`],
//!    [`analyze_path`]) — a three-valued evaluation of qualifiers
//!    against the step they annotate. `[label() = l]` on an `l` step is
//!    a tautology (dropped); on an `l'` step it is unsatisfiable, which
//!    makes the whole linear path dead.
//! 2. **NFA satisfiability / dead states** ([`selecting_liveness`],
//!    [`filtering_liveness`]) — reachability × co-reachability over the
//!    selecting and filtering automata, with entry into statically
//!    false-qualified states blocked. A view whose every rule has an
//!    unreachable final state can never select a node: the transform is
//!    the identity, forever.
//! 3. **Containment / equivalence** ([`path_contains`],
//!    [`views_equivalent`]) — a guarded product simulation between
//!    selecting NFAs (sound, incomplete: a qualifier on the superset
//!    side must be absent, trivially true, or structurally identical to
//!    the subset side's). Mutually contained paths with identical
//!    update effects make two views interchangeable, so they can share
//!    one result-cache entry family.
//! 4. **Static update–view commutation** ([`link_footprint`],
//!    [`classify_update`], [`statically_commutes`]) — doc-independent
//!    upper bounds on the dynamic footprints the write path otherwise
//!    derives per write. When the bounds are disjoint the dynamic
//!    three-way relevance test is *provably* going to pass for any
//!    document state, so cache maintenance can retain the entry on an
//!    O(1) table lookup.
//!
//! Soundness contract (checked by `tests/static_analysis.rs` in the
//! facade crate): every static verdict must be *at most as permissive*
//! as the dynamic machinery it short-circuits. A bound that cannot be
//! established is `None` (unbounded), never guessed.

use xust_automata::{FilteringNfa, LabelSet, SelState, SelectingNfa, StateId};
use xust_core::{update_alphabet, value_alphabet_into, UpdateOp};
use xust_intern::{intern, Sym};
use xust_xpath::{Path, QPath, Qualifier, Step, StepKind};

mod sim;

pub use sim::path_contains;

/// Three-valued result of statically evaluating a qualifier against the
/// step it annotates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Holds for every node the step can select.
    True,
    /// Holds for no node the step can select.
    False,
    /// Depends on document content.
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

/// Statically evaluates `q` on a node selected by a step of kind
/// `kind`. Only content-free facts fold: `[.]` always holds,
/// `[label() = l]` folds against a label step, and the connectives
/// propagate three-valued truth. Anything that reads document content
/// (`Cmp`, attribute access, non-empty qualifier paths) is `Unknown`.
pub fn fold_qualifier(q: &Qualifier, kind: &StepKind) -> Tri {
    match q {
        Qualifier::Exists(QPath { path, attr: None }) if path.is_empty() => Tri::True,
        Qualifier::Exists(_) | Qualifier::Cmp(..) => Tri::Unknown,
        Qualifier::LabelIs(l) => match kind {
            StepKind::Label(sl) if sl == l => Tri::True,
            StepKind::Label(_) => Tri::False,
            StepKind::Wildcard | StepKind::Descendant => Tri::Unknown,
        },
        Qualifier::And(a, b) => match (fold_qualifier(a, kind), fold_qualifier(b, kind)) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        },
        Qualifier::Or(a, b) => match (fold_qualifier(a, kind), fold_qualifier(b, kind)) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        },
        Qualifier::Not(a) => fold_qualifier(a, kind).not(),
    }
}

/// A qualifier after constant folding.
enum Folded {
    /// Tautology: the step may drop it.
    True,
    /// Unsatisfiable: the step (and the whole linear path) is dead.
    False,
    /// Still content-dependent; sub-terms may have been reduced.
    Kept(Qualifier),
}

/// Folds constants out of `q`, reducing connectives around them
/// (`true and q → q`, `false or q → q`, …).
fn simplify_qualifier(q: &Qualifier, kind: &StepKind) -> Folded {
    match q {
        Qualifier::And(a, b) => match (simplify_qualifier(a, kind), simplify_qualifier(b, kind)) {
            (Folded::False, _) | (_, Folded::False) => Folded::False,
            (Folded::True, x) | (x, Folded::True) => x,
            (Folded::Kept(a), Folded::Kept(b)) => Folded::Kept(Qualifier::and(a, b)),
        },
        Qualifier::Or(a, b) => match (simplify_qualifier(a, kind), simplify_qualifier(b, kind)) {
            (Folded::True, _) | (_, Folded::True) => Folded::True,
            (Folded::False, x) | (x, Folded::False) => x,
            (Folded::Kept(a), Folded::Kept(b)) => Folded::Kept(Qualifier::or(a, b)),
        },
        Qualifier::Not(a) => match simplify_qualifier(a, kind) {
            Folded::True => Folded::False,
            Folded::False => Folded::True,
            Folded::Kept(a) => Folded::Kept(Qualifier::not(a)),
        },
        leaf => match fold_qualifier(leaf, kind) {
            Tri::True => Folded::True,
            Tri::False => Folded::False,
            Tri::Unknown => Folded::Kept(leaf.clone()),
        },
    }
}

/// The result of constant-folding one path.
#[derive(Debug, Clone)]
pub struct PathAnalysis {
    /// The path with tautological qualifiers dropped and constant
    /// sub-terms reduced. Selects exactly the same nodes as the input
    /// on every document (when `satisfiable`; a dead path selects
    /// nothing either way).
    pub simplified: Path,
    /// False iff some step's qualifier is statically unsatisfiable —
    /// the path selects nothing on any document.
    pub satisfiable: bool,
    /// Qualifier (sub-)terms eliminated by folding.
    pub folded: usize,
}

/// Constant-folds every qualifier in `p`. The path is linear, so one
/// statically false qualifier kills the whole selection.
pub fn analyze_path(p: &Path) -> PathAnalysis {
    let mut satisfiable = true;
    let mut folded = 0usize;
    let steps = p
        .steps
        .iter()
        .map(|step| {
            let qualifier = match &step.qualifier {
                None => None,
                Some(q) => {
                    let before = q.size();
                    match simplify_qualifier(q, &step.kind) {
                        Folded::True => {
                            folded += before;
                            None
                        }
                        Folded::False => {
                            satisfiable = false;
                            folded += before;
                            None
                        }
                        Folded::Kept(kept) => {
                            folded += before.saturating_sub(kept.size());
                            Some(kept)
                        }
                    }
                }
            };
            Step {
                kind: step.kind.clone(),
                qualifier,
            }
        })
        .collect();
    PathAnalysis {
        simplified: Path { steps },
        satisfiable,
        folded,
    }
}

/// Live/dead state counts of one automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Liveness {
    /// Total states.
    pub total: usize,
    /// States both reachable from the start and co-reachable to an
    /// accepting configuration.
    pub live: usize,
}

impl Liveness {
    /// States that can never participate in a selection.
    pub fn dead(&self) -> usize {
        self.total - self.live
    }
}

/// True when entering `state` is statically impossible (its step's
/// qualifier folds to false).
fn sel_entry_dead(nfa: &SelectingNfa, state: StateId) -> bool {
    match (nfa.qualifier(state), nfa.states[state].step) {
        (Some(q), Some(i)) => fold_qualifier(q, &nfa.path.steps[i].kind) == Tri::False,
        _ => false,
    }
}

fn sel_successors(s: &SelState) -> impl Iterator<Item = StateId> + '_ {
    s.label_trans
        .iter()
        .map(|&(_, t)| t)
        .chain(s.star_trans)
        .chain(s.eps)
}

/// Reachability × co-reachability over the selecting NFA, with entry
/// into statically-false-qualified states blocked. Returns the liveness
/// summary and the per-state live mask. The final state being dead
/// means the path is unsatisfiable — exactly the [`analyze_path`]
/// verdict, derived automaton-side (self-loops make no difference: they
/// re-enter the same state under the same qualifier).
pub fn selecting_liveness(nfa: &SelectingNfa) -> (Liveness, Vec<bool>) {
    let n = nfa.len();
    // Forward: the automaton's edges point (weakly) forward, so one
    // ascending sweep reaches the fixpoint, like `eps_closure`.
    let mut reach = vec![false; n];
    reach[nfa.start] = true;
    for id in 0..n {
        if !reach[id] {
            continue;
        }
        for t in sel_successors(&nfa.states[id]) {
            if !sel_entry_dead(nfa, t) {
                reach[t] = true;
            }
        }
    }
    // Backward: a descending sweep for the same reason.
    let mut coreach = vec![false; n];
    coreach[nfa.final_state] = !sel_entry_dead(nfa, nfa.final_state) || nfa.is_empty();
    for id in (0..n).rev() {
        if coreach[id] {
            continue;
        }
        coreach[id] =
            sel_successors(&nfa.states[id]).any(|t| coreach[t] && !sel_entry_dead(nfa, t));
    }
    let live: Vec<bool> = (0..n).map(|i| reach[i] && coreach[i]).collect();
    let summary = Liveness {
        total: n,
        live: live.iter().filter(|&&l| l).count(),
    };
    (summary, live)
}

/// Forward reachability over the filtering NFA, with every transition
/// *out of* a selecting-mirror state whose qualifier folds false
/// blocked: past a dead step, neither the selection nor the qualifier
/// branches spawned there can influence any decision. (`Mf` has no
/// accepting state of its own — every reachable state prunes — so
/// co-reachability degenerates to reachability.)
pub fn filtering_liveness(nfa: &FilteringNfa, path: &Path) -> (Liveness, Vec<bool>) {
    let n = nfa.len();
    let exit_dead = |id: StateId| -> bool {
        match nfa.states[id].sel_step {
            Some(i) => path.steps[i]
                .qualifier
                .as_ref()
                .is_some_and(|q| fold_qualifier(q, &path.steps[i].kind) == Tri::False),
            None => false,
        }
    };
    let mut reach = vec![false; n];
    reach[nfa.start] = true;
    // Branch chains are appended after the states that spawn them, so
    // edges still point forward and one sweep suffices.
    for id in 0..n {
        if !reach[id] || exit_dead(id) {
            continue;
        }
        let s = &nfa.states[id];
        for t in s
            .label_trans
            .iter()
            .map(|&(_, t)| t)
            .chain(s.star_trans.iter().copied())
            .chain(s.eps.iter().copied())
        {
            reach[t] = true;
        }
    }
    let summary = Liveness {
        total: n,
        live: reach.iter().filter(|&&l| l).count(),
    };
    (summary, reach)
}

/// True when `a` and `b` are the same update effect: applied to the
/// same target set they produce identical documents. Fragments compare
/// by serialization (a [`xust_tree::Document`] has no structural `Eq`).
pub fn ops_equivalent(a: &UpdateOp, b: &UpdateOp) -> bool {
    match (a, b) {
        (UpdateOp::Delete, UpdateOp::Delete) => true,
        (UpdateOp::Rename { name: n1 }, UpdateOp::Rename { name: n2 }) => n1 == n2,
        (UpdateOp::Insert { elem: e1, pos: p1 }, UpdateOp::Insert { elem: e2, pos: p2 }) => {
            p1 == p2 && e1.serialize() == e2.serialize()
        }
        (UpdateOp::Replace { elem: e1 }, UpdateOp::Replace { elem: e2 }) => {
            e1.serialize() == e2.serialize()
        }
        _ => false,
    }
}

/// True when two paths select the same node set on every document:
/// syntactic equality, or mutual [`path_contains`] simulation.
pub fn paths_equivalent(a: &Path, b: &Path) -> bool {
    if a == b {
        return true;
    }
    let na = SelectingNfa::new(a);
    let nb = SelectingNfa::new(b);
    path_contains(&na, &nb) && path_contains(&nb, &na)
}

/// True when two rule lists define interchangeable views: same length,
/// and rule-by-rule equal update effects over equivalent selections.
/// (Order matters — chain links compose, multi rules apply in order.)
pub fn views_equivalent(a: &[(&Path, &UpdateOp)], b: &[(&Path, &UpdateOp)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((pa, oa), (pb, ob))| ops_equivalent(oa, ob) && paths_equivalent(pa, pb))
}

/// A doc-independent upper bound on a dynamic label set: `Some(ls)`
/// promises the dynamic set is always ⊆ `ls`; `None` means no static
/// bound exists (the dynamic set depends on document content).
pub type Bound = Option<LabelSet>;

fn union_bounds(a: Bound, b: &Bound) -> Bound {
    match (a, b) {
        (Some(mut a), Some(b)) => {
            a.union_with(b);
            Some(a)
        }
        _ => None,
    }
}

/// Doc-independent bounds on the [`xust_core::delta::TouchedLabels`]
/// footprint a view materialization records. `structural` bounds the
/// labels its updates add/remove/rename; `valued` bounds the
/// ancestor-or-self labels of its targets.
#[derive(Debug, Clone, Default)]
pub struct StaticFootprint {
    /// Upper bound on the recorded `structural` set, if one exists.
    pub structural: Bound,
    /// Upper bound on the recorded `valued` set, if one exists.
    pub valued: Bound,
}

impl StaticFootprint {
    /// Both sides bounded — the view can participate in static
    /// commutation at all.
    pub fn is_bounded(&self) -> bool {
        self.structural.is_some() && self.valued.is_some()
    }

    /// Folds another link's footprint in (chains union link by link;
    /// an unbounded link poisons the whole view).
    pub fn union_with(&mut self, other: &StaticFootprint) {
        self.structural = union_bounds(self.structural.take(), &other.structural);
        self.valued = union_bounds(self.valued.take(), &other.valued);
    }
}

/// The labels of `path`'s steps when — and only when — every step is a
/// plain label test. Child-axis-only selection pins the whole
/// root-to-target chain to the step labels, which is what makes the
/// ancestor-or-self (`valued`) side of a footprint statically bounded.
/// Any `*` or `//` step lets document-chosen labels onto the chain:
/// unbounded.
fn anchored_step_labels(path: &Path) -> Bound {
    if path.is_empty() {
        // ε selects the context node — its label is the document's
        // root, not the path's, so nothing is pinned.
        return None;
    }
    let mut out = LabelSet::new();
    for step in &path.steps {
        match &step.kind {
            StepKind::Label(l) => out.insert(intern(l)),
            StepKind::Wildcard | StepKind::Descendant => return None,
        }
    }
    Some(out)
}

/// The target label of `path` when its final step is a plain label test
/// (whatever happens earlier in the path — `//x` still only ever
/// selects `x` nodes).
fn final_step_label(path: &Path) -> Option<Sym> {
    match path.steps.last().map(|s| &s.kind) {
        Some(StepKind::Label(l)) => Some(intern(l)),
        _ => None,
    }
}

/// The static footprint bound of one rule `(path, op)`, mirroring what
/// `TouchedLabels::record` does dynamically:
///
/// * **insert** — records ancestor-or-self labels (`valued`) plus the
///   fragment's labels (`structural`). Bounded when the path is fully
///   anchored; the fragment is a constant.
/// * **rename** — records only the target's old label plus the new name
///   (`structural`); `valued` is untouched (a label is not text).
///   Bounded whenever the *final* step is a label test.
/// * **delete/replace** — records the whole removed subtree, whose
///   labels are document content: never bounded.
pub fn link_footprint(path: &Path, op: &UpdateOp) -> StaticFootprint {
    match op {
        UpdateOp::Insert { elem, .. } => {
            let mut frag = LabelSet::new();
            xust_core::fragment_labels_into(elem, &mut frag);
            StaticFootprint {
                structural: Some(frag),
                valued: anchored_step_labels(path),
            }
        }
        UpdateOp::Rename { name } => StaticFootprint {
            structural: final_step_label(path).map(|old| {
                let mut s = LabelSet::new();
                s.insert(old);
                s.insert(*name);
                s
            }),
            valued: Some(LabelSet::new()),
        },
        UpdateOp::Delete | UpdateOp::Replace { .. } => StaticFootprint::default(),
    }
}

/// The footprint bound of a whole view body (union over links/rules).
pub fn view_footprint<'a>(
    rules: impl Iterator<Item = (&'a Path, &'a UpdateOp)>,
) -> StaticFootprint {
    let mut out = StaticFootprint {
        structural: Some(LabelSet::new()),
        valued: Some(LabelSet::new()),
    };
    for (path, op) in rules {
        out.union_with(&link_footprint(path, op));
    }
    out
}

/// The update side of the static commutation test, classified once per
/// update *shape* (query text) and reused for every write of that
/// shape against every view.
#[derive(Debug, Clone)]
pub struct UpdateClass {
    /// Upper bound on the write's dynamic delta (the flattened
    /// [`xust_core::delta::TouchedLabels`] of its application), if one
    /// exists. The bound mirrors [`link_footprint`]'s case analysis on
    /// the *update's* own rules.
    pub delta: Bound,
    /// The update's static alphabet — identical to what the write path
    /// derives (`update_alphabet` per rule, unioned).
    pub alphabet: LabelSet,
    /// The update's value-sensitive alphabet — identical to the write
    /// path's `value_alphabet_into` union.
    pub values: LabelSet,
}

/// Classifies one update shape. O(Σ|pᵢ|); called once per distinct
/// update text, memoized by the server.
pub fn classify_update<'a>(rules: impl Iterator<Item = (&'a Path, &'a UpdateOp)>) -> UpdateClass {
    let mut delta: Bound = Some(LabelSet::new());
    let mut alphabet = LabelSet::new();
    let mut values = LabelSet::new();
    for (path, op) in rules {
        alphabet.union_with(&update_alphabet(path, op));
        value_alphabet_into(path, &mut values);
        let rule_delta: Bound = match op {
            UpdateOp::Insert { elem, .. } => anchored_step_labels(path).map(|mut d| {
                xust_core::fragment_labels_into(elem, &mut d);
                d
            }),
            UpdateOp::Rename { name } => final_step_label(path).map(|old| {
                let mut d = LabelSet::new();
                d.insert(old);
                d.insert(*name);
                d
            }),
            // A delete/replace's delta contains the removed subtree:
            // document content, unbounded.
            UpdateOp::Delete | UpdateOp::Replace { .. } => None,
        };
        delta = union_bounds(delta, &rule_delta);
    }
    UpdateClass {
        delta,
        alphabet,
        values,
    }
}

/// The static commutation verdict for one (view, update-shape) pair:
/// true means the dynamic three-way relevance test is guaranteed to
/// retain the view's cached result for **any** document state — the
/// write's delta bound misses the view's alphabet, and the update's
/// alphabets miss the view's footprint bounds. Any unbounded side
/// answers false (fall back to the dynamic test; never guess).
pub fn statically_commutes(
    view_alphabet: &LabelSet,
    view_footprint: &StaticFootprint,
    update: &UpdateClass,
) -> bool {
    match (
        &update.delta,
        &view_footprint.structural,
        &view_footprint.valued,
    ) {
        (Some(delta), Some(structural), Some(valued)) => {
            !delta.intersects(view_alphabet)
                && !update.alphabet.intersects(structural)
                && !update.values.intersects(valued)
        }
        _ => false,
    }
}

/// The full registration-time report for one view, assembled by
/// [`analyze_view`] and surfaced through the `ANALYZE` protocol verb.
#[derive(Debug, Clone, Default)]
pub struct ViewAnalysis {
    /// True when no rule can ever select a node: the view is the
    /// identity transform on every document.
    pub dead: bool,
    /// Qualifier (sub-)terms eliminated by constant folding, summed
    /// over rules.
    pub folded_qualifiers: usize,
    /// Selecting-NFA states, summed over rules.
    pub sel_states: usize,
    /// Dead selecting-NFA states (unreachable or non-co-reachable).
    pub sel_dead: usize,
    /// Filtering-NFA states, summed over rules.
    pub filt_states: usize,
    /// Dead filtering-NFA states.
    pub filt_dead: usize,
    /// The view's static commutation footprint bound.
    pub footprint: StaticFootprint,
    /// Wall-clock cost of the analysis, in microseconds.
    pub micros: u64,
}

/// Runs every per-view analysis over a view body's rules. Cost is
/// O(Σ|pᵢ|) — automata are linear in the path. The caller stamps
/// `micros` (this function is timing-agnostic so it stays trivially
/// testable).
pub fn analyze_view<'a>(
    rules: impl Iterator<Item = (&'a Path, &'a UpdateOp)> + Clone,
) -> ViewAnalysis {
    let mut out = ViewAnalysis {
        dead: true,
        footprint: view_footprint(rules.clone()),
        ..ViewAnalysis::default()
    };
    let mut any = false;
    for (path, _) in rules {
        any = true;
        let pa = analyze_path(path);
        out.folded_qualifiers += pa.folded;
        let sel = SelectingNfa::new(path);
        let (sl, _) = selecting_liveness(&sel);
        out.sel_states += sl.total;
        out.sel_dead += sl.dead();
        let filt = FilteringNfa::new(path);
        let (fl, _) = filtering_liveness(&filt, path);
        out.filt_states += fl.total;
        out.filt_dead += fl.dead();
        if pa.satisfiable {
            out.dead = false;
        }
    }
    if !any {
        out.dead = false;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn p(s: &str) -> Path {
        parse_path(s).unwrap()
    }

    #[test]
    fn label_is_folds_against_label_steps() {
        let q = Qualifier::LabelIs("a".into());
        assert_eq!(fold_qualifier(&q, &StepKind::Label("a".into())), Tri::True);
        assert_eq!(fold_qualifier(&q, &StepKind::Label("b".into())), Tri::False);
        assert_eq!(fold_qualifier(&q, &StepKind::Wildcard), Tri::Unknown);
    }

    #[test]
    fn self_exists_is_tautological_and_connectives_propagate() {
        let t = Qualifier::Exists(QPath::self_path());
        let kind = StepKind::Label("x".into());
        assert_eq!(fold_qualifier(&t, &kind), Tri::True);
        assert_eq!(
            fold_qualifier(&Qualifier::not(t.clone()), &kind),
            Tri::False
        );
        let unk = Qualifier::Exists(QPath {
            path: p("y"),
            attr: None,
        });
        assert_eq!(
            fold_qualifier(&Qualifier::or(unk.clone(), t.clone()), &kind),
            Tri::True
        );
        assert_eq!(
            fold_qualifier(&Qualifier::and(unk.clone(), t), &kind),
            Tri::Unknown
        );
        assert_eq!(fold_qualifier(&unk, &kind), Tri::Unknown);
    }

    #[test]
    fn analyze_path_drops_tautologies_and_flags_dead_paths() {
        let live = analyze_path(&p("a[label() = a]/b"));
        assert!(live.satisfiable);
        assert!(live.folded > 0);
        assert_eq!(live.simplified, p("a/b"));

        let dead = analyze_path(&p("a[label() = b]/c"));
        assert!(!dead.satisfiable);

        let untouched = analyze_path(&p("a[b = 3]/c"));
        assert!(untouched.satisfiable);
        assert_eq!(untouched.folded, 0);
        assert_eq!(untouched.simplified, p("a[b = 3]/c"));
    }

    #[test]
    fn and_folding_keeps_the_unknown_side() {
        let mixed = analyze_path(&p("a[label() = a and b = 3]"));
        assert!(mixed.satisfiable);
        assert_eq!(mixed.simplified, p("a[b = 3]"));
    }

    #[test]
    fn liveness_of_a_live_path_is_total() {
        for src in ["a/b/c", "//x", "a//b[c]/d", "*/y"] {
            let path = p(src);
            let (sl, mask) = selecting_liveness(&SelectingNfa::new(&path));
            assert_eq!(sl.dead(), 0, "{src}");
            assert!(mask.iter().all(|&l| l), "{src}");
            let (fl, _) = filtering_liveness(&FilteringNfa::new(&path), &path);
            assert_eq!(fl.dead(), 0, "{src}");
        }
    }

    #[test]
    fn liveness_blocks_false_qualified_states() {
        let path = p("a[label() = b]/c[d]");
        let sel = SelectingNfa::new(&path);
        let (sl, mask) = selecting_liveness(&sel);
        // Start is live-reachable but not co-reachable; step states die.
        assert!(sl.dead() >= 2, "{sl:?}");
        assert!(!mask[sel.final_state]);
        let filt = FilteringNfa::new(&path);
        let (fl, _) = filtering_liveness(&filt, &path);
        // Everything past the dead `a` state — including the `d`
        // qualifier branch of `c` — is unreachable.
        assert!(fl.dead() >= 2, "{fl:?}");
    }

    #[test]
    fn equivalence_is_mutual_containment() {
        assert!(paths_equivalent(&p("a/b"), &p("a/b")));
        assert!(paths_equivalent(&p("a//b"), &p("a//b")));
        assert!(!paths_equivalent(&p("a/b"), &p("a//b")));
        assert!(!paths_equivalent(&p("a/b"), &p("a/c")));
        assert!(!paths_equivalent(&p("a/b[c]"), &p("a/b")));
        assert!(paths_equivalent(&p("a/b[c]"), &p("a/b[c]")));
    }

    #[test]
    fn ops_compare_by_effect() {
        let frag = || xust_tree::Document::parse("<note/>").unwrap();
        assert!(ops_equivalent(&UpdateOp::Delete, &UpdateOp::Delete));
        assert!(!ops_equivalent(
            &UpdateOp::Delete,
            &UpdateOp::Rename { name: intern("x") }
        ));
        assert!(ops_equivalent(
            &UpdateOp::Insert {
                elem: frag(),
                pos: Default::default()
            },
            &UpdateOp::Insert {
                elem: frag(),
                pos: Default::default()
            },
        ));
        assert!(!ops_equivalent(
            &UpdateOp::Insert {
                elem: frag(),
                pos: Default::default()
            },
            &UpdateOp::Insert {
                elem: xust_tree::Document::parse("<other/>").unwrap(),
                pos: Default::default()
            },
        ));
    }

    #[test]
    fn insert_footprint_bounded_only_on_anchored_paths() {
        let frag = xust_tree::Document::parse("<note><by>x</by></note>").unwrap();
        let op = UpdateOp::Insert {
            elem: frag,
            pos: Default::default(),
        };
        let f = link_footprint(&p("site/people"), &op);
        let s = f.structural.as_ref().unwrap();
        assert!(s.contains(intern("note")) && s.contains(intern("by")));
        let v = f.valued.as_ref().unwrap();
        assert!(v.contains(intern("site")) && v.contains(intern("people")));
        assert!(!v.contains(intern("note")));

        assert!(link_footprint(&p("site//people"), &op).valued.is_none());
        assert!(link_footprint(&p("*/people"), &op).valued.is_none());
    }

    #[test]
    fn rename_footprint_needs_only_a_final_label() {
        let op = UpdateOp::Rename {
            name: intern("item"),
        };
        let f = link_footprint(&p("site//part"), &op);
        let s = f.structural.as_ref().unwrap();
        assert!(s.contains(intern("part")) && s.contains(intern("item")));
        assert!(f.valued.as_ref().unwrap().is_empty());
        assert!(link_footprint(&p("site//*"), &op).structural.is_none());
    }

    #[test]
    fn destructive_ops_are_unbounded() {
        let f = link_footprint(&p("site/people"), &UpdateOp::Delete);
        assert!(f.structural.is_none() && f.valued.is_none());
        assert!(!f.is_bounded());
    }

    #[test]
    fn disjoint_anchored_insert_commutes_with_disjoint_view() {
        let frag = xust_tree::Document::parse("<mark/>").unwrap();
        let upd = [(
            p("site/offers"),
            UpdateOp::Insert {
                elem: frag,
                pos: Default::default(),
            },
        )];
        let u = classify_update(upd.iter().map(|(p, o)| (p, o)));
        // A `//`-anchored rename view: its alphabet is just
        // {part, member} — no shared anchor with the update's chain.
        let view_path = p("//part");
        let view_op = UpdateOp::Rename {
            name: intern("member"),
        };
        let foot = link_footprint(&view_path, &view_op);
        let alphabet = update_alphabet(&view_path, &view_op);
        assert!(statically_commutes(&alphabet, &foot, &u));
        // The same view anchored at the update's own prefix shares
        // `site`: the delta bound hits the alphabet — no verdict.
        let anchored = p("site/part");
        let alphabet = update_alphabet(&anchored, &view_op);
        let foot = link_footprint(&anchored, &view_op);
        assert!(!statically_commutes(&alphabet, &foot, &u));

        // Same update against a view that *reads* site/offers: delta
        // bound intersects the alphabet — no static verdict.
        let touching = p("site/offers");
        let alphabet = update_alphabet(&touching, &view_op);
        let foot = link_footprint(&touching, &view_op);
        assert!(!statically_commutes(&alphabet, &foot, &u));
    }

    #[test]
    fn unbounded_updates_never_commute_statically() {
        let upd = [(p("site/offers"), UpdateOp::Delete)];
        let u = classify_update(upd.iter().map(|(p, o)| (p, o)));
        assert!(u.delta.is_none());
        let foot = StaticFootprint {
            structural: Some(LabelSet::new()),
            valued: Some(LabelSet::new()),
        };
        assert!(!statically_commutes(&LabelSet::new(), &foot, &u));
    }

    #[test]
    fn analyze_view_flags_dead_views_and_counts_states() {
        let rules = [(p("a[label() = b]/c"), UpdateOp::Delete)];
        let a = analyze_view(rules.iter().map(|(p, o)| (p, o)));
        assert!(a.dead);
        assert!(a.sel_dead > 0);

        let rules = [(p("a/b"), UpdateOp::Delete)];
        let a = analyze_view(rules.iter().map(|(p, o)| (p, o)));
        assert!(!a.dead);
        assert_eq!(a.sel_dead, 0);
        assert_eq!(a.sel_states, 3);
    }
}
