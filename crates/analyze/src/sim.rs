//! Guarded product simulation between selecting NFAs — the containment
//! half of the equivalence-class analysis.
//!
//! `path_contains(sub, sup)` decides (soundly, incompletely) whether
//! every node `sub` can select is also selected by `sup`, on every
//! document. The label language side is exact: a breadth-first product
//! construction tracks, for each reachable `sub` run state, the set of
//! `sup` states reachable on the same label word — over the finite
//! alphabet of labels either automaton mentions plus one fresh "any
//! other label" symbol (two labels neither automaton distinguishes
//! behave identically, so one representative suffices). Qualifiers make
//! exact containment undecidable in general; the simulation *guards*
//! them instead: a `sup` transition survives only if the state it
//! enters demands nothing (no qualifier, or one that constant-folds to
//! true) or demands exactly what the `sub` state entered on the same
//! step demands (structural equality). Any run that survives the guard
//! is therefore a genuine accepting `sup` run whenever the `sub` run
//! accepts. Failure to prove containment returns `false` — the caller
//! treats the views as distinct, which is always safe.

use std::collections::{HashMap, VecDeque};

use xust_automata::{SelectingNfa, StateId};
use xust_intern::Sym;
use xust_xpath::Qualifier;

use crate::{fold_qualifier, Tri};

/// Pair-state explosion guard: linear path automata keep the frontier
/// tiny, but the bound makes the worst case a refusal, not a hang.
const MAX_PAIRS: usize = 4096;

/// The qualifier demanded on entry into `state`, with tautologies
/// erased (folding against the step's own kind).
fn entry_demand(nfa: &SelectingNfa, state: StateId) -> Option<&Qualifier> {
    let q = nfa.qualifier(state)?;
    let step = nfa.states[state].step.expect("qualified states have steps");
    match fold_qualifier(q, &nfa.path.steps[step].kind) {
        Tri::True => None,
        _ => Some(q),
    }
}

/// True when entering `sup_state` demands nothing beyond what entering
/// `sub_state` already established.
fn guard_ok(
    sub: &SelectingNfa,
    sub_state: StateId,
    sup: &SelectingNfa,
    sup_state: StateId,
) -> bool {
    match entry_demand(sup, sup_state) {
        None => true,
        Some(dq) => entry_demand(sub, sub_state) == Some(dq),
    }
}

/// `sub`'s successor states on `label` (`None` = a label neither
/// automaton mentions), including ε-descent into `//` states —
/// statically-dead targets (false-folding qualifiers) are skipped,
/// since no run of `sub` ever realizes them.
fn sel_successors_on(nfa: &SelectingNfa, from: StateId, label: Option<Sym>) -> Vec<StateId> {
    let mut out = Vec::new();
    let s = &nfa.states[from];
    if let (Some((sym, t)), Some(l)) = (s.label_trans, label) {
        if sym == l {
            out.push(t);
        }
    }
    if let Some(t) = s.star_trans {
        out.push(t);
    }
    if s.self_loop {
        out.push(from);
    }
    // ε-closure: ε edges point strictly forward into `//` states.
    let mut i = 0;
    while i < out.len() {
        if let Some(t) = nfa.states[out[i]].eps {
            if !out.contains(&t) {
                out.push(t);
            }
        }
        i += 1;
    }
    out.retain(|&t| {
        nfa.qualifier(t).is_none_or(|q| {
            let step = nfa.states[t].step.expect("qualified states have steps");
            fold_qualifier(q, &nfa.path.steps[step].kind) != Tri::False
        })
    });
    out
}

/// ε-closure of a start configuration (the set form of
/// [`SelectingNfa::initial`]), as a sorted state list.
fn initial_states(nfa: &SelectingNfa) -> Vec<StateId> {
    let mut out = vec![nfa.start];
    let mut i = 0;
    while i < out.len() {
        if let Some(t) = nfa.states[out[i]].eps {
            if !out.contains(&t) {
                out.push(t);
            }
        }
        i += 1;
    }
    out
}

/// The label alphabet both automata are tested over: every label either
/// mentions, plus `None` for "any other label".
fn joint_alphabet(a: &SelectingNfa, b: &SelectingNfa) -> Vec<Option<Sym>> {
    let mut syms: Vec<Sym> = Vec::new();
    for nfa in [a, b] {
        for s in &nfa.states {
            if let Some((sym, _)) = s.label_trans {
                if !syms.contains(&sym) {
                    syms.push(sym);
                }
            }
        }
    }
    let mut out: Vec<Option<Sym>> = syms.into_iter().map(Some).collect();
    out.push(None);
    out
}

/// Sound containment check: `true` proves every document node selected
/// by `sub` is selected by `sup`; `false` proves nothing.
pub fn path_contains(sub: &SelectingNfa, sup: &SelectingNfa) -> bool {
    let alphabet = joint_alphabet(sub, sup);
    // Pairs (sub run state, guarded sup state set). A sub *run* is one
    // nondeterministic thread — each sub state is simulated separately,
    // because each carries its own qualifier history for the guard.
    let mut seen: HashMap<(StateId, Vec<StateId>), ()> = HashMap::new();
    let mut queue: VecDeque<(StateId, Vec<StateId>)> = VecDeque::new();
    let sup_init = initial_states(sup);
    for s in initial_states(sub) {
        let key = (s, sup_init.clone());
        if seen.insert(key.clone(), ()).is_none() {
            queue.push_back(key);
        }
    }
    while let Some((s, ts)) = queue.pop_front() {
        if s == sub.final_state && !ts.contains(&sup.final_state) {
            return false;
        }
        for &label in &alphabet {
            for s2 in sel_successors_on(sub, s, label) {
                let mut ts2: Vec<StateId> = Vec::new();
                for &t in &ts {
                    for t2 in sel_successors_on(sup, t, label) {
                        if guard_ok(sub, s2, sup, t2) && !ts2.contains(&t2) {
                            ts2.push(t2);
                        }
                    }
                }
                ts2.sort_unstable();
                let key = (s2, ts2);
                if seen.insert(key.clone(), ()).is_none() {
                    if seen.len() > MAX_PAIRS {
                        return false; // refuse, soundly
                    }
                    queue.push_back(key);
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn nfa(s: &str) -> SelectingNfa {
        SelectingNfa::new(&parse_path(s).unwrap())
    }

    #[test]
    fn child_paths_are_contained_in_descendant_paths() {
        assert!(path_contains(&nfa("a/b"), &nfa("a//b")));
        assert!(!path_contains(&nfa("a//b"), &nfa("a/b")));
        assert!(path_contains(&nfa("a/x/b"), &nfa("a//b")));
        assert!(path_contains(&nfa("a/b"), &nfa("a/*")));
        assert!(!path_contains(&nfa("a/*"), &nfa("a/b")));
    }

    #[test]
    fn descendant_containment_goes_deep() {
        assert!(path_contains(&nfa("//x//y"), &nfa("//y")));
        assert!(!path_contains(&nfa("//y"), &nfa("//x//y")));
        assert!(path_contains(&nfa("a//b/c"), &nfa("a//c")));
    }

    #[test]
    fn identical_paths_contain_each_other() {
        for s in ["a/b", "a//b[c]/d", "*[x = 1]/y", "//part"] {
            assert!(path_contains(&nfa(s), &nfa(s)), "{s}");
        }
    }

    #[test]
    fn qualifiers_guard_containment() {
        // Dropping a qualifier widens: a/b[c] ⊆ a/b, not conversely.
        assert!(path_contains(&nfa("a/b[c]"), &nfa("a/b")));
        assert!(!path_contains(&nfa("a/b"), &nfa("a/b[c]")));
        // Distinct qualifiers prove nothing either way.
        assert!(!path_contains(&nfa("a/b[c]"), &nfa("a/b[d]")));
        // Tautological qualifiers demand nothing.
        assert!(path_contains(&nfa("a/b"), &nfa("a/b[label() = b]")));
    }

    #[test]
    fn fresh_labels_break_naive_containment() {
        // a/* accepts a/<anything> — including labels b/c never saw.
        assert!(!path_contains(&nfa("a/*"), &nfa("a/c")));
        assert!(path_contains(&nfa("a/*"), &nfa("a/*")));
        assert!(path_contains(&nfa("a/*"), &nfa("*/*")));
    }

    #[test]
    fn empty_path_containment() {
        let eps = nfa(".");
        assert!(path_contains(&eps, &eps));
        assert!(!path_contains(&eps, &nfa("a")));
    }
}
