use std::io::Write;

use crate::error::{SaxError, SaxResult};
use crate::escape::{escape_attr_into, escape_text_into};
use crate::event::SaxEvent;

/// Serializes a stream of [`SaxEvent`]s back to XML text.
///
/// The writer buffers one tag at a time, so its memory use is independent
/// of the document size — the property the second pass of `twoPassSAX`
/// relies on to stream transformed documents to disk.
pub struct SaxWriter<W: Write> {
    out: W,
    scratch: String,
    depth: usize,
    /// True while a start tag is open and unclosed (`<name attrs…`), so a
    /// following end tag can collapse to `/>`.
    open_tag: bool,
}

impl<W: Write> SaxWriter<W> {
    /// Creates a writer over any [`Write`] sink.
    pub fn new(out: W) -> Self {
        SaxWriter {
            out,
            scratch: String::with_capacity(256),
            depth: 0,
            open_tag: false,
        }
    }

    /// Writes one event.
    pub fn write_event(&mut self, ev: &SaxEvent) -> SaxResult<()> {
        match ev {
            SaxEvent::StartDocument | SaxEvent::EndDocument => Ok(()),
            SaxEvent::StartElement { name, attrs } => self.start_element(name, attrs),
            SaxEvent::Text(t) => self.text(t),
            SaxEvent::EndElement(name) => self.end_element(name),
        }
    }

    /// Writes the start of an element.
    pub fn start_element(&mut self, name: &str, attrs: &[(String, String)]) -> SaxResult<()> {
        self.close_pending()?;
        self.scratch.clear();
        self.scratch.push('<');
        self.scratch.push_str(name);
        for (k, v) in attrs {
            self.scratch.push(' ');
            self.scratch.push_str(k);
            self.scratch.push_str("=\"");
            escape_attr_into(v, &mut self.scratch);
            self.scratch.push('"');
        }
        self.out.write_all(self.scratch.as_bytes())?;
        self.open_tag = true;
        self.depth += 1;
        Ok(())
    }

    /// Writes character data.
    pub fn text(&mut self, t: &str) -> SaxResult<()> {
        self.close_pending()?;
        self.scratch.clear();
        escape_text_into(t, &mut self.scratch);
        self.out.write_all(self.scratch.as_bytes())?;
        Ok(())
    }

    /// Writes the end of an element.
    pub fn end_element(&mut self, name: &str) -> SaxResult<()> {
        if self.depth == 0 {
            return Err(SaxError::Syntax {
                offset: 0,
                message: format!("end_element(</{name}>) with no open element"),
            });
        }
        self.depth -= 1;
        if self.open_tag {
            self.out.write_all(b"/>")?;
            self.open_tag = false;
        } else {
            self.scratch.clear();
            self.scratch.push_str("</");
            self.scratch.push_str(name);
            self.scratch.push('>');
            self.out.write_all(self.scratch.as_bytes())?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> SaxResult<W> {
        if self.depth != 0 {
            return Err(SaxError::UnexpectedEof { offset: 0 });
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn close_pending(&mut self) -> SaxResult<()> {
        if self.open_tag {
            self.out.write_all(b">")?;
            self.open_tag = false;
        }
        Ok(())
    }
}

/// Serializes a slice of events to a string (convenience for tests).
pub fn events_to_string(events: &[SaxEvent]) -> SaxResult<String> {
    let mut w = SaxWriter::new(Vec::new());
    for ev in events {
        w.write_event(ev)?;
    }
    let bytes = w.finish()?;
    Ok(String::from_utf8(bytes).expect("writer produces UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::SaxParser;

    fn roundtrip(xml: &str) -> String {
        let events = SaxParser::from_str(xml).collect_events().unwrap();
        events_to_string(&events).unwrap()
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip("<a><b>hi</b><c/></a>"), "<a><b>hi</b><c/></a>");
    }

    #[test]
    fn self_closing_collapse() {
        assert_eq!(roundtrip("<a></a>"), "<a/>");
    }

    #[test]
    fn attributes_escaped() {
        let out = roundtrip(r#"<a x="1 &lt; 2 &amp; &quot;q&quot;"/>"#);
        assert_eq!(out, r#"<a x="1 &lt; 2 &amp; &quot;q&quot;"/>"#);
    }

    #[test]
    fn text_escaped() {
        assert_eq!(roundtrip("<a>1 &lt; 2</a>"), "<a>1 &lt; 2</a>");
    }

    #[test]
    fn unbalanced_end_rejected() {
        let mut w = SaxWriter::new(Vec::new());
        assert!(w.end_element("a").is_err());
    }

    #[test]
    fn unfinished_document_rejected() {
        let mut w = SaxWriter::new(Vec::new());
        w.start_element("a", &[]).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn double_roundtrip_fixpoint() {
        let xml = r#"<site><regions><item id="i1"><location>United States</location></item></regions></site>"#;
        let once = roundtrip(xml);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }
}
