use std::io::Write;

use crate::error::{SaxError, SaxResult};
use xust_intern::Sym;

use crate::escape::{escape_attr_into, escape_text_into};
use crate::event::SaxEvent;

/// An empty attribute list with a concrete key type, for callers of the
/// generic [`SaxWriter::start_element`].
pub const NO_ATTRS: &[(Sym, String)] = &[];

/// Serializes a stream of [`SaxEvent`]s back to XML text.
///
/// The writer buffers one tag at a time, so its memory use is independent
/// of the document size — the property the second pass of `twoPassSAX`
/// relies on to stream transformed documents to disk.
pub struct SaxWriter<W: Write> {
    out: W,
    scratch: String,
    depth: usize,
    /// True while a start tag is open and unclosed (`<name attrs…`), so a
    /// following end tag can collapse to `/>`.
    open_tag: bool,
    /// Total bytes handed to the sink so far.
    written: u64,
    /// Bytes written since the last flush (explicit or automatic).
    unflushed: u64,
    /// Auto-flush threshold in bytes; 0 disables (flush only on
    /// [`SaxWriter::finish`]).
    autoflush: u64,
}

impl<W: Write> SaxWriter<W> {
    /// Creates a writer over any [`Write`] sink.
    pub fn new(out: W) -> Self {
        SaxWriter {
            out,
            scratch: String::with_capacity(256),
            depth: 0,
            open_tag: false,
            written: 0,
            unflushed: 0,
            autoflush: 0,
        }
    }

    /// Sets a backpressure hook: the underlying sink is flushed whenever
    /// at least `bytes` have been written since the last flush, so a
    /// streaming server's output reaches the client (and its socket
    /// buffer can push back) instead of accumulating in BufWriter
    /// layers. `0` disables auto-flushing (the default).
    pub fn with_autoflush(mut self, bytes: u64) -> Self {
        self.autoflush = bytes;
        self
    }

    /// Total bytes emitted so far (for progress/flow-control decisions).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Current open-element depth (0 means the document is complete).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Flushes the underlying sink now.
    pub fn flush(&mut self) -> SaxResult<()> {
        self.out.flush()?;
        self.unflushed = 0;
        Ok(())
    }

    /// Mutable access to the underlying sink — lets a streaming session
    /// drain accumulated output incrementally (e.g. `Vec<u8>` chunks)
    /// between events.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }

    fn emit(&mut self, bytes: &[u8]) -> SaxResult<()> {
        self.out.write_all(bytes)?;
        self.written += bytes.len() as u64;
        self.unflushed += bytes.len() as u64;
        if self.autoflush > 0 && self.unflushed >= self.autoflush {
            self.flush()?;
        }
        Ok(())
    }

    /// Emits the scratch buffer (borrow-juggled through `mem::take`, so
    /// `emit` can account bytes on `&mut self`).
    fn emit_scratch(&mut self) -> SaxResult<()> {
        let scratch = std::mem::take(&mut self.scratch);
        let r = self.emit(scratch.as_bytes());
        self.scratch = scratch;
        r
    }

    /// Writes one event.
    pub fn write_event(&mut self, ev: &SaxEvent) -> SaxResult<()> {
        match ev {
            SaxEvent::StartDocument | SaxEvent::EndDocument => Ok(()),
            SaxEvent::StartElement { name, attrs } => self.start_element(name.as_str(), attrs),
            SaxEvent::Text(t) => self.text(t),
            SaxEvent::EndElement(name) => self.end_element(name.as_str()),
        }
    }

    /// Writes the start of an element. Attribute names may be interned
    /// [`xust_intern::Sym`]s, `String`s, or `&str`s.
    pub fn start_element<K: AsRef<str>>(
        &mut self,
        name: &str,
        attrs: &[(K, String)],
    ) -> SaxResult<()> {
        self.close_pending()?;
        self.scratch.clear();
        self.scratch.push('<');
        self.scratch.push_str(name);
        for (k, v) in attrs {
            self.scratch.push(' ');
            self.scratch.push_str(k.as_ref());
            self.scratch.push_str("=\"");
            escape_attr_into(v, &mut self.scratch);
            self.scratch.push('"');
        }
        self.emit_scratch()?;
        self.open_tag = true;
        self.depth += 1;
        Ok(())
    }

    /// Writes character data.
    pub fn text(&mut self, t: &str) -> SaxResult<()> {
        self.close_pending()?;
        self.scratch.clear();
        escape_text_into(t, &mut self.scratch);
        self.emit_scratch()?;
        Ok(())
    }

    /// Writes the end of an element.
    pub fn end_element(&mut self, name: &str) -> SaxResult<()> {
        if self.depth == 0 {
            return Err(SaxError::Syntax {
                offset: 0,
                message: format!("end_element(</{name}>) with no open element"),
            });
        }
        self.depth -= 1;
        if self.open_tag {
            self.emit(b"/>")?;
            self.open_tag = false;
        } else {
            self.scratch.clear();
            self.scratch.push_str("</");
            self.scratch.push_str(name);
            self.scratch.push('>');
            self.emit_scratch()?;
        }
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> SaxResult<W> {
        if self.depth != 0 {
            return Err(SaxError::UnexpectedEof { offset: 0 });
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn close_pending(&mut self) -> SaxResult<()> {
        if self.open_tag {
            self.emit(b">")?;
            self.open_tag = false;
        }
        Ok(())
    }
}

/// Serializes a slice of events to a string (convenience for tests).
pub fn events_to_string(events: &[SaxEvent]) -> SaxResult<String> {
    let mut w = SaxWriter::new(Vec::new());
    for ev in events {
        w.write_event(ev)?;
    }
    let bytes = w.finish()?;
    Ok(String::from_utf8(bytes).expect("writer produces UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::SaxParser;

    fn roundtrip(xml: &str) -> String {
        let events = SaxParser::from_str(xml).collect_events().unwrap();
        events_to_string(&events).unwrap()
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip("<a><b>hi</b><c/></a>"), "<a><b>hi</b><c/></a>");
    }

    #[test]
    fn self_closing_collapse() {
        assert_eq!(roundtrip("<a></a>"), "<a/>");
    }

    #[test]
    fn attributes_escaped() {
        let out = roundtrip(r#"<a x="1 &lt; 2 &amp; &quot;q&quot;"/>"#);
        assert_eq!(out, r#"<a x="1 &lt; 2 &amp; &quot;q&quot;"/>"#);
    }

    #[test]
    fn text_escaped() {
        assert_eq!(roundtrip("<a>1 &lt; 2</a>"), "<a>1 &lt; 2</a>");
    }

    #[test]
    fn unbalanced_end_rejected() {
        let mut w = SaxWriter::new(Vec::new());
        assert!(w.end_element("a").is_err());
    }

    #[test]
    fn unfinished_document_rejected() {
        let mut w = SaxWriter::new(Vec::new());
        w.start_element("a", NO_ATTRS).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn byte_accounting_and_depth() {
        let mut w = SaxWriter::new(Vec::new());
        assert_eq!(w.bytes_written(), 0);
        w.start_element("a", NO_ATTRS).unwrap();
        assert_eq!(w.depth(), 1);
        w.text("hi").unwrap();
        w.end_element("a").unwrap();
        assert_eq!(w.depth(), 0);
        let n = w.bytes_written();
        let out = w.finish().unwrap();
        assert_eq!(n, out.len() as u64);
        assert_eq!(out, b"<a>hi</a>");
    }

    #[test]
    fn autoflush_reaches_the_sink_incrementally() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// Records how many bytes each flush delivered.
        struct FlushSpy {
            buf: Vec<u8>,
            flushes: Rc<RefCell<Vec<usize>>>,
        }
        impl Write for FlushSpy {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.buf.extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.flushes.borrow_mut().push(self.buf.len());
                Ok(())
            }
        }

        let flushes = Rc::new(RefCell::new(Vec::new()));
        let spy = FlushSpy {
            buf: Vec::new(),
            flushes: Rc::clone(&flushes),
        };
        let mut w = SaxWriter::new(spy).with_autoflush(8);
        w.start_element("root", NO_ATTRS).unwrap();
        for i in 0..20 {
            w.start_element("e", NO_ATTRS).unwrap();
            w.text(&i.to_string()).unwrap();
            w.end_element("e").unwrap();
        }
        w.end_element("root").unwrap();
        let spy = w.finish().unwrap();
        // The sink saw many intermediate flushes, not one big final one.
        assert!(
            flushes.borrow().len() > 5,
            "expected incremental flushes, saw {:?}",
            flushes.borrow()
        );
        assert!(String::from_utf8(spy.buf).unwrap().starts_with("<root>"));
    }

    #[test]
    fn get_mut_drains_incrementally() {
        let mut w = SaxWriter::new(Vec::new());
        w.start_element("a", NO_ATTRS).unwrap();
        w.text("x").unwrap();
        let chunk = std::mem::take(w.get_mut());
        assert_eq!(chunk, b"<a>x");
        w.end_element("a").unwrap();
        assert_eq!(w.finish().unwrap(), b"</a>");
    }

    #[test]
    fn double_roundtrip_fixpoint() {
        let xml = r#"<site><regions><item id="i1"><location>United States</location></item></regions></site>"#;
        let once = roundtrip(xml);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }
}
