use std::fmt;

/// Errors raised while parsing or writing XML at the event level.
#[derive(Debug)]
pub enum SaxError {
    /// Malformed markup at the given byte offset.
    Syntax {
        /// Byte offset in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// End tag does not match the innermost open start tag.
    MismatchedTag {
        /// Byte offset of the end tag.
        offset: usize,
        /// The innermost open element name.
        expected: String,
        /// The end-tag name actually found.
        found: String,
    },
    /// Input ended while markup was still open.
    UnexpectedEof {
        /// Byte offset where input ended.
        offset: usize,
    },
    /// The document nests deeper than the configured limit.
    TooDeep {
        /// The configured depth limit.
        limit: usize,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for SaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            SaxError::MismatchedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched end tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            SaxError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            SaxError::TooDeep { limit } => {
                write!(f, "document exceeds nesting depth limit of {limit}")
            }
            SaxError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SaxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SaxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SaxError {
    fn from(e: std::io::Error) -> Self {
        SaxError::Io(e)
    }
}

/// Result alias for SAX-level operations.
pub type SaxResult<T> = Result<T, SaxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SaxError::Syntax {
            offset: 5,
            message: "bad tag".into(),
        };
        assert!(e.to_string().contains("byte 5"));
        let e = SaxError::MismatchedTag {
            offset: 1,
            expected: "a".into(),
            found: "b".into(),
        };
        assert!(e.to_string().contains("</a>"));
        assert!(e.to_string().contains("</b>"));
        let e = SaxError::UnexpectedEof { offset: 9 };
        assert!(e.to_string().contains("byte 9"));
        let e = SaxError::TooDeep { limit: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("boom");
        let e: SaxError = io.into();
        assert!(matches!(e, SaxError::Io(_)));
        assert!(e.to_string().contains("boom"));
    }
}
