//! Entity escaping and unescaping for XML character data.

/// Escapes text content: `&`, `<`, `>` become entity references.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// Escapes text content, appending to an existing buffer (avoids an
/// allocation per call on hot serialization paths).
pub fn escape_text_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            // A literal CR would be folded to LF by the reader's §2.11
            // normalization; the reference survives, keeping
            // parse ∘ serialize an identity.
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value (double-quote delimited).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    out
}

/// Escapes an attribute value, appending to an existing buffer.
pub fn escape_attr_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            // Literal whitespace would be normalized to spaces by the
            // reader (§3.3.3); character references survive, keeping
            // parse ∘ serialize an identity.
            '\r' => out.push_str("&#13;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
}

/// Resolves the five predefined entities and numeric character references.
///
/// Unknown entities are left verbatim (lenient mode), matching the
/// behaviour of most streaming parsers when no DTD is available.
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s[i..].find(';').map(|p| i + p) {
                let entity = &s[i + 1..semi];
                if let Some(c) = resolve_entity(entity) {
                    out.push(c);
                    i = semi + 1;
                    continue;
                }
            }
            out.push('&');
            i += 1;
        } else {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn resolve_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = entity.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or(rest.strip_prefix('X')) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basic() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(
            escape_attr(r#"he said "hi"'s"#),
            "he said &quot;hi&quot;&apos;s"
        );
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("a&lt;b&amp;c&gt;d&quot;&apos;"), "a<b&c>d\"'");
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;"), "ABc");
    }

    #[test]
    fn unescape_unknown_entity_left_verbatim() {
        assert_eq!(unescape("&nbsp;x"), "&nbsp;x");
        assert_eq!(unescape("a & b"), "a & b");
    }

    #[test]
    fn unescape_no_amp_fast_path() {
        assert_eq!(unescape("nothing here"), "nothing here");
    }

    #[test]
    fn unescape_multibyte_passthrough() {
        assert_eq!(unescape("héllo&amp;wörld"), "héllo&wörld");
    }

    #[test]
    fn roundtrip() {
        let original = "x < y && z > \"w\" 'v'";
        assert_eq!(unescape(&escape_attr(original)), original);
        assert_eq!(unescape(&escape_text(original)), original);
    }
}
