/// A SAX event, as in Section 6 of the paper.
///
/// Attribute values and text content are stored unescaped (entity
/// references already resolved); the [`crate::SaxWriter`] re-escapes them
/// on output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent {
    /// Emitted once before any other event.
    StartDocument,
    /// The start tag of an element, with its attributes in document order.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// A run of character data (PCDATA or CDATA).
    Text(String),
    /// The end tag of the element with the given name.
    EndElement(String),
    /// Emitted once after the root element closes.
    EndDocument,
}

impl SaxEvent {
    /// Convenience constructor for a start element without attributes.
    pub fn start(name: impl Into<String>) -> Self {
        SaxEvent::StartElement {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Convenience constructor for an end element.
    pub fn end(name: impl Into<String>) -> Self {
        SaxEvent::EndElement(name.into())
    }

    /// Convenience constructor for a text event.
    pub fn text(t: impl Into<String>) -> Self {
        SaxEvent::Text(t.into())
    }

    /// Returns the element name for start/end element events.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            SaxEvent::StartElement { name, .. } | SaxEvent::EndElement(name) => Some(name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(
            SaxEvent::start("a"),
            SaxEvent::StartElement {
                name: "a".into(),
                attrs: vec![]
            }
        );
        assert_eq!(SaxEvent::end("a"), SaxEvent::EndElement("a".into()));
        assert_eq!(SaxEvent::text("x"), SaxEvent::Text("x".into()));
    }

    #[test]
    fn element_name() {
        assert_eq!(SaxEvent::start("a").element_name(), Some("a"));
        assert_eq!(SaxEvent::end("b").element_name(), Some("b"));
        assert_eq!(SaxEvent::text("t").element_name(), None);
        assert_eq!(SaxEvent::StartDocument.element_name(), None);
    }
}
