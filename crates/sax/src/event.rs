use xust_intern::{IntoSym, Sym};

/// A SAX event, as in Section 6 of the paper.
///
/// Element and attribute *names* are interned [`Sym`]s, resolved by the
/// parser at scan time, so every downstream automaton transition is an
/// integer compare instead of a byte compare. Attribute values and text
/// content are stored unescaped (entity references already resolved);
/// the [`crate::SaxWriter`] re-escapes them on output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent {
    /// Emitted once before any other event.
    StartDocument,
    /// The start tag of an element, with its attributes in document order.
    StartElement {
        /// Element name (interned).
        name: Sym,
        /// Attributes in document order (interned names, literal values).
        attrs: Vec<(Sym, String)>,
    },
    /// A run of character data (PCDATA or CDATA).
    Text(String),
    /// The end tag of the element with the given name.
    EndElement(Sym),
    /// Emitted once after the root element closes.
    EndDocument,
}

impl SaxEvent {
    /// Convenience constructor for a start element without attributes.
    pub fn start(name: impl IntoSym) -> Self {
        SaxEvent::StartElement {
            name: name.into_sym(),
            attrs: Vec::new(),
        }
    }

    /// Convenience constructor for an end element.
    pub fn end(name: impl IntoSym) -> Self {
        SaxEvent::EndElement(name.into_sym())
    }

    /// Convenience constructor for a text event.
    pub fn text(t: impl Into<String>) -> Self {
        SaxEvent::Text(t.into())
    }

    /// Returns the element name for start/end element events.
    pub fn element_name(&self) -> Option<&'static str> {
        self.element_sym().map(Sym::as_str)
    }

    /// Returns the interned element name for start/end element events.
    pub fn element_sym(&self) -> Option<Sym> {
        match self {
            SaxEvent::StartElement { name, .. } => Some(*name),
            SaxEvent::EndElement(name) => Some(*name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_intern::intern;

    #[test]
    fn constructors() {
        assert_eq!(
            SaxEvent::start("a"),
            SaxEvent::StartElement {
                name: intern("a"),
                attrs: vec![]
            }
        );
        assert_eq!(SaxEvent::end("a"), SaxEvent::EndElement(intern("a")));
        assert_eq!(SaxEvent::text("x"), SaxEvent::Text("x".into()));
    }

    #[test]
    fn element_name() {
        assert_eq!(SaxEvent::start("a").element_name(), Some("a"));
        assert_eq!(SaxEvent::end("b").element_name(), Some("b"));
        assert_eq!(SaxEvent::text("t").element_name(), None);
        assert_eq!(SaxEvent::StartDocument.element_name(), None);
        assert_eq!(SaxEvent::start("a").element_sym(), Some(intern("a")));
    }
}
