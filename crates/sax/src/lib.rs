#![warn(missing_docs)]
//! `xust-sax` — a small streaming (SAX-style) XML parser and writer.
//!
//! This crate is the event-level substrate used by the rest of the
//! workspace: the DOM tree in `xust-tree` is built from these events, and
//! the `twoPassSAX` transform algorithm of the paper (Section 6) runs
//! directly on the event stream so that memory stays bounded by document
//! depth rather than document size.
//!
//! The event model mirrors the paper's five event types:
//! `startDocument()`, `startElement(n)`, `text(t)`, `endElement(n)`,
//! `endDocument()`.
//!
//! # Example
//!
//! ```
//! use xust_sax::{SaxParser, SaxEvent};
//!
//! let xml = "<db><part pname='keyboard'/></db>";
//! let mut parser = SaxParser::from_str(xml);
//! let mut names = Vec::new();
//! while let Some(ev) = parser.next_event().unwrap() {
//!     if let SaxEvent::StartElement { name, .. } = ev {
//!         // `name` is an interned `Sym`: O(1) to compare, resolve on
//!         // demand.
//!         names.push(name.as_str());
//!     }
//! }
//! assert_eq!(names, ["db", "part"]);
//! ```

mod error;
mod escape;
mod event;
mod parser;
mod writer;

pub use error::{SaxError, SaxResult};
pub use escape::{escape_attr, escape_attr_into, escape_text, escape_text_into, unescape};
pub use event::SaxEvent;
pub use parser::{SaxParser, DEFAULT_DEPTH_LIMIT};
pub use writer::{events_to_string, SaxWriter, NO_ATTRS};
// Re-exported so event consumers can name and intern symbols without a
// direct xust-intern dependency.
pub use xust_intern::{intern, Interner, IntoSym, Sym};
