use std::borrow::Cow;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use xust_intern::{intern, Sym};

use crate::error::{SaxError, SaxResult};
use crate::escape::unescape;
use crate::event::SaxEvent;

/// Default limit on element nesting depth, to protect the recursive
/// consumers elsewhere in the workspace from stack exhaustion.
pub const DEFAULT_DEPTH_LIMIT: usize = 4096;

const CHUNK: usize = 64 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    NotStarted,
    InDocument,
    AfterRoot,
    Done,
}

/// A pull-based streaming XML parser.
///
/// The parser reads from any [`Read`] source incrementally; its memory use
/// is bounded by the size of the largest single token (tag or text run),
/// not by the document size. This property underpins the paper's
/// `twoPassSAX` algorithm (Section 6), whose memory footprint must stay
/// independent of |T|.
pub struct SaxParser<R: Read> {
    src: R,
    buf: Vec<u8>,
    /// Read position within `buf`.
    pos: usize,
    /// Number of valid bytes in `buf`.
    len: usize,
    /// Global byte offset of `buf[0]` in the input.
    base: usize,
    eof: bool,
    state: State,
    stack: Vec<Sym>,
    pending: VecDeque<SaxEvent>,
    depth_limit: usize,
}

impl SaxParser<BufReader<File>> {
    /// Opens a file for streaming parsing.
    pub fn from_file(path: impl AsRef<Path>) -> SaxResult<Self> {
        Ok(Self::from_reader(BufReader::new(File::open(path)?)))
    }
}

impl SaxParser<std::io::Cursor<Vec<u8>>> {
    /// Parses an in-memory string.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        Self::from_reader(std::io::Cursor::new(s.as_bytes().to_vec()))
    }

    /// Parses an in-memory byte buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self::from_reader(std::io::Cursor::new(bytes))
    }
}

impl<R: Read> SaxParser<R> {
    /// Wraps an arbitrary reader.
    pub fn from_reader(src: R) -> Self {
        SaxParser {
            src,
            buf: Vec::with_capacity(CHUNK),
            pos: 0,
            len: 0,
            base: 0,
            eof: false,
            state: State::NotStarted,
            stack: Vec::new(),
            pending: VecDeque::new(),
            depth_limit: DEFAULT_DEPTH_LIMIT,
        }
    }

    /// Overrides the nesting-depth limit.
    pub fn with_depth_limit(mut self, limit: usize) -> Self {
        self.depth_limit = limit;
        self
    }

    /// Current element nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Ensures at least `n` unread bytes are buffered, unless EOF.
    fn ensure(&mut self, n: usize) -> SaxResult<bool> {
        while self.len - self.pos < n && !self.eof {
            self.fill()?;
        }
        Ok(self.len - self.pos >= n)
    }

    fn fill(&mut self) -> SaxResult<()> {
        // Compact: drop consumed prefix so the buffer does not grow with
        // the document.
        if self.pos > 0 {
            self.buf.copy_within(self.pos..self.len, 0);
            self.len -= self.pos;
            self.base += self.pos;
            self.pos = 0;
        }
        if self.buf.len() < self.len + CHUNK {
            self.buf.resize(self.len + CHUNK, 0);
        }
        let n = self.src.read(&mut self.buf[self.len..])?;
        if n == 0 {
            self.eof = true;
        }
        self.len += n;
        Ok(())
    }

    fn peek(&mut self) -> SaxResult<Option<u8>> {
        if self.ensure(1)? {
            Ok(Some(self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }

    /// Finds `needle` in the unread buffer starting at `self.pos + from`,
    /// reading more input as required. Returns the index relative to
    /// `self.pos`.
    fn find(&mut self, needle: &[u8], from: usize) -> SaxResult<usize> {
        let mut search_from = from;
        loop {
            let hay = &self.buf[self.pos..self.len];
            if hay.len() >= needle.len() {
                let window_start = search_from.saturating_sub(needle.len() - 1);
                for i in window_start..=hay.len() - needle.len() {
                    if &hay[i..i + needle.len()] == needle {
                        return Ok(i);
                    }
                }
            }
            if self.eof {
                return Err(SaxError::UnexpectedEof {
                    offset: self.base + self.len,
                });
            }
            search_from = (self.len - self.pos).max(from);
            self.fill()?;
        }
    }

    /// Main pull interface: returns the next event, or `None` after
    /// `EndDocument` has been delivered.
    pub fn next_event(&mut self) -> SaxResult<Option<SaxEvent>> {
        if let Some(ev) = self.pending.pop_front() {
            return Ok(Some(ev));
        }
        match self.state {
            State::NotStarted => {
                self.state = State::InDocument;
                Ok(Some(SaxEvent::StartDocument))
            }
            State::Done => Ok(None),
            State::AfterRoot => {
                self.skip_misc()?;
                if self.peek()?.is_some() {
                    return Err(SaxError::Syntax {
                        offset: self.offset(),
                        message: "content after root element".into(),
                    });
                }
                self.state = State::Done;
                Ok(Some(SaxEvent::EndDocument))
            }
            State::InDocument => self.next_in_document(),
        }
    }

    fn next_in_document(&mut self) -> SaxResult<Option<SaxEvent>> {
        loop {
            if self.stack.is_empty() {
                // Before the root element: skip prolog and whitespace.
                self.skip_misc()?;
            }
            let Some(b) = self.peek()? else {
                return Err(SaxError::UnexpectedEof {
                    offset: self.offset(),
                });
            };
            if b != b'<' {
                return self.parse_text().map(Some);
            }
            // Markup.
            if !self.ensure(2)? {
                return Err(SaxError::UnexpectedEof {
                    offset: self.offset(),
                });
            }
            match self.buf[self.pos + 1] {
                b'/' => return self.parse_end_tag().map(Some),
                b'?' => {
                    self.skip_pi()?;
                }
                b'!' => {
                    if self.lookahead(b"<!--")? {
                        self.skip_comment()?;
                    } else if self.lookahead(b"<![CDATA[")? {
                        return self.parse_cdata().map(Some);
                    } else {
                        self.skip_doctype()?;
                    }
                }
                _ => return self.parse_start_tag().map(Some),
            }
        }
    }

    fn lookahead(&mut self, prefix: &[u8]) -> SaxResult<bool> {
        if !self.ensure(prefix.len())? {
            return Ok(false);
        }
        Ok(&self.buf[self.pos..self.pos + prefix.len()] == prefix)
    }

    fn skip_misc(&mut self) -> SaxResult<()> {
        loop {
            while let Some(b) = self.peek()? {
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.lookahead(b"<?")? {
                self.skip_pi()?;
            } else if self.lookahead(b"<!--")? {
                self.skip_comment()?;
            } else if self.lookahead(b"<!DOCTYPE")? {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> SaxResult<()> {
        let end = self.find(b"?>", 2)?;
        self.pos += end + 2;
        Ok(())
    }

    fn skip_comment(&mut self) -> SaxResult<()> {
        let end = self.find(b"-->", 4)?;
        self.pos += end + 3;
        Ok(())
    }

    fn skip_doctype(&mut self) -> SaxResult<()> {
        // Scan to the matching '>' accounting for an optional internal
        // subset delimited by brackets.
        let mut depth = 0usize;
        let mut i = 0usize;
        loop {
            if self.pos + i >= self.len {
                if self.eof {
                    return Err(SaxError::UnexpectedEof {
                        offset: self.offset(),
                    });
                }
                self.fill()?;
                continue;
            }
            match self.buf[self.pos + i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += i + 1;
                    return Ok(());
                }
                _ => {}
            }
            i += 1;
        }
    }

    fn parse_text(&mut self) -> SaxResult<SaxEvent> {
        let mut text = String::new();
        loop {
            // Collect bytes up to the next '<' (or EOF, which is an error
            // because an element is still open).
            let mut i = 0usize;
            let mut found = false;
            loop {
                if self.pos + i >= self.len {
                    if self.eof {
                        break;
                    }
                    self.fill()?;
                    continue;
                }
                if self.buf[self.pos + i] == b'<' {
                    found = true;
                    break;
                }
                i += 1;
            }
            let raw = std::str::from_utf8(&self.buf[self.pos..self.pos + i]).map_err(|_| {
                SaxError::Syntax {
                    offset: self.offset(),
                    message: "invalid UTF-8 in text".into(),
                }
            })?;
            text.push_str(&unescape(&normalize_newlines(raw)));
            self.pos += i;
            if !found {
                return Err(SaxError::UnexpectedEof {
                    offset: self.offset(),
                });
            }
            // Merge adjacent CDATA into this text event so consumers see
            // one text node per run of character data.
            if self.lookahead(b"<![CDATA[")? {
                self.pos += 9;
                let end = self.find(b"]]>", 0)?;
                let raw = std::str::from_utf8(&self.buf[self.pos..self.pos + end])
                    .map_err(|_| SaxError::Syntax {
                        offset: self.offset(),
                        message: "invalid UTF-8 in CDATA".into(),
                    })?
                    .to_string();
                text.push_str(&normalize_newlines(&raw));
                self.pos += end + 3;
            } else {
                return Ok(SaxEvent::Text(text));
            }
        }
    }

    fn parse_cdata(&mut self) -> SaxResult<SaxEvent> {
        self.pos += 9; // <![CDATA[
        let end = self.find(b"]]>", 0)?;
        let raw = std::str::from_utf8(&self.buf[self.pos..self.pos + end])
            .map_err(|_| SaxError::Syntax {
                offset: self.offset(),
                message: "invalid UTF-8 in CDATA".into(),
            })?
            .to_string();
        self.pos += end + 3;
        Ok(SaxEvent::Text(normalize_newlines(&raw).into_owned()))
    }

    fn parse_end_tag(&mut self) -> SaxResult<SaxEvent> {
        let start_offset = self.offset();
        let close = self.find(b">", 2)?;
        let raw = std::str::from_utf8(&self.buf[self.pos + 2..self.pos + close]).map_err(|_| {
            SaxError::Syntax {
                offset: start_offset,
                message: "invalid UTF-8 in end tag".into(),
            }
        })?;
        // `</a >` is legal; `</ a>` is not.
        if raw.starts_with(|c: char| c.is_ascii_whitespace()) {
            return Err(SaxError::Syntax {
                offset: start_offset,
                message: "whitespace before end-tag name".into(),
            });
        }
        let raw_name = raw.trim_end();
        if !is_valid_xml_name(raw_name) {
            return Err(SaxError::Syntax {
                offset: start_offset,
                message: format!("invalid end-tag name '{raw_name}'"),
            });
        }
        let name = intern(raw_name);
        self.pos += close + 1;
        match self.stack.pop() {
            Some(open) if open == name => {}
            Some(open) => {
                return Err(SaxError::MismatchedTag {
                    offset: start_offset,
                    expected: open.as_str().to_string(),
                    found: name.as_str().to_string(),
                })
            }
            None => {
                return Err(SaxError::Syntax {
                    offset: start_offset,
                    message: format!("end tag </{name}> with no open element"),
                })
            }
        }
        if self.stack.is_empty() {
            self.state = State::AfterRoot;
        }
        Ok(SaxEvent::EndElement(name))
    }

    /// Scans a start tag to its closing `>`, honouring quoted attribute
    /// values (which may legally contain `>`), then parses name and
    /// attributes.
    fn parse_start_tag(&mut self) -> SaxResult<SaxEvent> {
        let start_offset = self.offset();
        let mut i = 1usize; // skip '<'
        let mut quote: Option<u8> = None;
        let close;
        loop {
            if self.pos + i >= self.len {
                if self.eof {
                    return Err(SaxError::UnexpectedEof {
                        offset: self.offset(),
                    });
                }
                self.fill()?;
                continue;
            }
            let b = self.buf[self.pos + i];
            match quote {
                Some(q) if b == q => quote = None,
                Some(_) => {}
                None if b == b'"' || b == b'\'' => quote = Some(b),
                None if b == b'>' => {
                    close = i;
                    break;
                }
                None => {}
            }
            i += 1;
        }
        let tag = std::str::from_utf8(&self.buf[self.pos + 1..self.pos + close])
            .map_err(|_| SaxError::Syntax {
                offset: start_offset,
                message: "invalid UTF-8 in start tag".into(),
            })?
            .to_string();
        self.pos += close + 1;

        let (body, self_closing) = match tag.strip_suffix('/') {
            Some(b) => (b, true),
            None => (tag.as_str(), false),
        };
        let (name, attrs) = parse_tag_body(body, start_offset)?;
        if self_closing {
            self.pending.push_back(SaxEvent::EndElement(name));
            if self.stack.is_empty() {
                self.state = State::AfterRoot;
            }
        } else {
            if self.stack.len() >= self.depth_limit {
                return Err(SaxError::TooDeep {
                    limit: self.depth_limit,
                });
            }
            self.stack.push(name);
        }
        Ok(SaxEvent::StartElement { name, attrs })
    }

    /// Drains the remaining events into a vector (useful in tests).
    pub fn collect_events(mut self) -> SaxResult<Vec<SaxEvent>> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev);
        }
        Ok(out)
    }
}

/// Is `name` a well-formed XML element/attribute name? (Name-start char
/// followed by name chars; ASCII-centric with alphabetic Unicode allowed,
/// matching the subset the rest of the library emits.)
pub(crate) fn is_valid_xml_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '-' | '.' | '_' | ':'))
}

/// XML 1.0 §2.11: translate `\r\n` pairs and bare `\r` to a single `\n`
/// before any further processing (entity references like `&#13;` are
/// resolved *after* this, so they survive literally).
fn normalize_newlines(s: &str) -> Cow<'_, str> {
    if !s.contains('\r') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\r' {
            out.push('\n');
            if chars.peek() == Some(&'\n') {
                chars.next();
            }
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

/// XML 1.0 §3.3.3 attribute-value normalization (CDATA attributes): each
/// literal whitespace character becomes a space — with `\r\n` first
/// collapsed to one `\n` by §2.11, so it contributes a single space.
/// Character references (`&#10;` etc.) are exempt, which is why this
/// runs on the *raw* value before [`unescape`].
fn normalize_attr_ws(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'\r' | b'\n' | b'\t')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\r' => {
                out.push(' ');
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
            }
            '\n' | '\t' => out.push(' '),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Parses `name attr="v" …` from the interior of a start tag.
fn parse_tag_body(body: &str, offset: usize) -> SaxResult<(Sym, Vec<(Sym, String)>)> {
    // XML requires the name to follow `<` immediately: `< a/>` is not a tag.
    if body.starts_with(|c: char| c.is_ascii_whitespace()) {
        return Err(SaxError::Syntax {
            offset,
            message: "whitespace before element name".into(),
        });
    }
    let body = body.trim_end();
    let name_end = body
        .find(|c: char| c.is_ascii_whitespace())
        .unwrap_or(body.len());
    let name = &body[..name_end];
    if name.is_empty() {
        return Err(SaxError::Syntax {
            offset,
            message: "empty element name".into(),
        });
    }
    if !is_valid_xml_name(name) {
        return Err(SaxError::Syntax {
            offset,
            message: format!("invalid element name '{name}'"),
        });
    }
    let name = intern(name);
    let mut attrs: Vec<(Sym, String)> = Vec::new();
    let rest = &body[name_end..];
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let key = &rest[key_start..i];
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            return Err(SaxError::Syntax {
                offset,
                message: format!("attribute '{key}' missing '='"),
            });
        }
        i += 1; // '='
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || (bytes[i] != b'"' && bytes[i] != b'\'') {
            return Err(SaxError::Syntax {
                offset,
                message: format!("attribute '{key}' value must be quoted"),
            });
        }
        let q = bytes[i];
        i += 1;
        let val_start = i;
        while i < bytes.len() && bytes[i] != q {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(SaxError::Syntax {
                offset,
                message: format!("attribute '{key}' has unterminated value"),
            });
        }
        let value = unescape(&normalize_attr_ws(&rest[val_start..i]));
        i += 1; // closing quote
        let key = intern(key);
        // XML 1.0 §3.1 well-formedness: an attribute name may appear at
        // most once in the same start tag (Sym compare — the keys were
        // just interned).
        if attrs.iter().any(|(k, _)| *k == key) {
            return Err(SaxError::Syntax {
                offset,
                message: format!("duplicate attribute '{key}'"),
            });
        }
        attrs.push((key, value));
    }
    Ok((name, attrs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<SaxEvent> {
        SaxParser::from_str(xml).collect_events().unwrap()
    }

    #[test]
    fn minimal_document() {
        assert_eq!(
            events("<a/>"),
            vec![
                SaxEvent::StartDocument,
                SaxEvent::start("a"),
                SaxEvent::end("a"),
                SaxEvent::EndDocument
            ]
        );
    }

    #[test]
    fn nested_with_text() {
        assert_eq!(
            events("<a><b>hi</b></a>"),
            vec![
                SaxEvent::StartDocument,
                SaxEvent::start("a"),
                SaxEvent::start("b"),
                SaxEvent::text("hi"),
                SaxEvent::end("b"),
                SaxEvent::end("a"),
                SaxEvent::EndDocument
            ]
        );
    }

    #[test]
    fn attributes_double_and_single_quotes() {
        let evs = events(r#"<a x="1" y='two'/>"#);
        assert_eq!(
            evs[1],
            SaxEvent::StartElement {
                name: intern("a"),
                attrs: vec![(intern("x"), "1".into()), (intern("y"), "two".into())]
            }
        );
    }

    #[test]
    fn attribute_value_with_gt_and_entities() {
        let evs = events(r#"<a x="p>q" y="a&amp;b"/>"#);
        assert_eq!(
            evs[1],
            SaxEvent::StartElement {
                name: intern("a"),
                attrs: vec![(intern("x"), "p>q".into()), (intern("y"), "a&b".into())]
            }
        );
    }

    #[test]
    fn duplicate_attribute_rejected() {
        // XML 1.0 §3.1: "an attribute name MUST NOT appear more than
        // once in the same start-tag" — a well-formedness violation.
        for xml in [
            r#"<a x="1" x="2"/>"#,
            r#"<a x="1" y="2" x="3"></a>"#,
            r#"<r><a k='v' k='v'/></r>"#,
        ] {
            let err = SaxParser::from_str(xml).collect_events();
            match err {
                Err(SaxError::Syntax { message, .. }) => {
                    assert!(message.contains("duplicate attribute"), "{message}");
                }
                other => panic!("expected duplicate-attribute error for {xml}, got {other:?}"),
            }
        }
        // Same name in *different* tags stays legal.
        assert!(SaxParser::from_str(r#"<a x="1"><b x="2"/></a>"#)
            .collect_events()
            .is_ok());
    }

    #[test]
    fn newlines_normalized_in_text() {
        // §2.11: \r\n and bare \r both become \n in character data.
        let evs = events("<a>l1\r\nl2\rl3\nl4</a>");
        assert_eq!(evs[2], SaxEvent::text("l1\nl2\nl3\nl4"));
        // CDATA content is character data too.
        let evs = events("<a><![CDATA[x\r\ny\rz]]></a>");
        assert_eq!(evs[2], SaxEvent::text("x\ny\nz"));
        // A character reference to CR is exempt from normalization.
        let evs = events("<a>&#13;&#xD;</a>");
        assert_eq!(evs[2], SaxEvent::text("\r\r"));
    }

    #[test]
    fn attribute_whitespace_normalized() {
        // §3.3.3: literal \r\n, \r, \n, \t in attribute values each
        // become one space; character references survive literally.
        let evs = events("<a x=\"v1\r\nv2\rv3\nv4\tv5\"/>");
        assert_eq!(
            evs[1],
            SaxEvent::StartElement {
                name: intern("a"),
                attrs: vec![(intern("x"), "v1 v2 v3 v4 v5".into())]
            }
        );
        let evs = events(r#"<a x="l1&#10;l2&#9;l3&#13;l4"/>"#);
        assert_eq!(
            evs[1],
            SaxEvent::StartElement {
                name: intern("a"),
                attrs: vec![(intern("x"), "l1\nl2\tl3\rl4".into())]
            }
        );
    }

    #[test]
    fn prolog_doctype_comments_skipped() {
        let xml = "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><!-- c --><a><!-- inner -->t</a>";
        assert_eq!(
            events(xml),
            vec![
                SaxEvent::StartDocument,
                SaxEvent::start("a"),
                SaxEvent::text("t"),
                SaxEvent::end("a"),
                SaxEvent::EndDocument
            ]
        );
    }

    #[test]
    fn cdata_is_text() {
        let evs = events("<a><![CDATA[x < y & z]]></a>");
        assert_eq!(evs[2], SaxEvent::text("x < y & z"));
    }

    #[test]
    fn cdata_merges_with_adjacent_text() {
        let evs = events("<a>pre<![CDATA[<mid>]]>post</a>");
        assert_eq!(evs[2], SaxEvent::text("pre<mid>post"));
    }

    #[test]
    fn entities_in_text() {
        let evs = events("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(evs[2], SaxEvent::text("1 < 2 && 3 > 2"));
    }

    #[test]
    fn mismatched_tag_rejected() {
        let err = SaxParser::from_str("<a><b></a></b>").collect_events();
        assert!(matches!(err, Err(SaxError::MismatchedTag { .. })));
    }

    #[test]
    fn truncated_input_rejected() {
        let err = SaxParser::from_str("<a><b>text").collect_events();
        assert!(matches!(err, Err(SaxError::UnexpectedEof { .. })));
    }

    #[test]
    fn content_after_root_rejected() {
        let err = SaxParser::from_str("<a/><b/>").collect_events();
        assert!(matches!(err, Err(SaxError::Syntax { .. })));
    }

    #[test]
    fn unquoted_attribute_rejected() {
        let err = SaxParser::from_str("<a x=1/>").collect_events();
        assert!(matches!(err, Err(SaxError::Syntax { .. })));
    }

    #[test]
    fn depth_limit_enforced() {
        let xml = "<a><a><a><a/></a></a></a>";
        let err = SaxParser::from_str(xml)
            .with_depth_limit(2)
            .collect_events();
        assert!(matches!(err, Err(SaxError::TooDeep { limit: 2 })));
    }

    #[test]
    fn whitespace_between_elements_preserved() {
        let evs = events("<a> <b/> </a>");
        assert_eq!(evs[2], SaxEvent::text(" "));
        assert_eq!(evs[5], SaxEvent::text(" "));
    }

    #[test]
    fn small_chunks_streaming() {
        // Force many tiny reads to exercise buffer refills across token
        // boundaries.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let xml = r#"<root a="v"><x>some text &amp; more</x><y/><!-- c --><z>t</z></root>"#;
        let evs = SaxParser::from_reader(OneByte(xml.as_bytes(), 0))
            .collect_events()
            .unwrap();
        let direct = events(xml);
        assert_eq!(evs, direct);
    }

    #[test]
    fn depth_tracking() {
        let mut p = SaxParser::from_str("<a><b/></a>");
        assert_eq!(p.depth(), 0);
        p.next_event().unwrap(); // StartDocument
        p.next_event().unwrap(); // <a>
        assert_eq!(p.depth(), 1);
    }

    #[test]
    fn multibyte_text() {
        let evs = events("<a>héllo wörld — ünïcode</a>");
        assert_eq!(evs[2], SaxEvent::text("héllo wörld — ünïcode"));
    }
}
