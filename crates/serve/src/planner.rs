//! The adaptive method planner.
//!
//! Section 7 of the paper ranks the five evaluation methods by document
//! size and query shape: snapshotting wins only on tiny inputs, the
//! rewriting (NAIVE) degrades with descendant axes, topDown (GENTOP)
//! pays per-node qualifier re-evaluation, TD-BU amortizes qualifiers
//! into one bottom-up pass, and twoPassSAX is the only option when the
//! document does not fit a DOM. The planner encodes that ranking as a
//! *prior* over [`QueryCost`] features, then sharpens it with observed
//! per-method latency feedback (an EWMA of ns/node per size class), so
//! a server converges on whatever is actually fastest for its workload
//! on its hardware.

use std::sync::Mutex;
use std::time::Duration;

use xust_core::{Method, QueryCost};

/// The document the planner is choosing a method for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocShape {
    /// Parsed in memory, with its arena node count.
    InMemory {
        /// Number of arena slots (≈ node count).
        nodes: usize,
    },
    /// On disk, unparsed, with its size in bytes. Only the streaming
    /// method applies.
    File {
        /// File size in bytes.
        bytes: u64,
    },
}

/// Planner tuning knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Below this many nodes the snapshot/rewriting constant factors win
    /// regardless of shape.
    pub tiny_doc_nodes: usize,
    /// Every `explore_every`-th decision tries the least-sampled
    /// candidate instead of the predicted-best (0 disables exploration).
    pub explore_every: u64,
    /// EWMA smoothing factor numerator out of 100 (new sample weight).
    pub ewma_weight: u32,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            tiny_doc_nodes: 512,
            explore_every: 16,
            ewma_weight: 25,
        }
    }
}

const N_METHODS: usize = Method::ALL.len();
/// Size classes: < 4k nodes, < 64k nodes, larger.
const N_CLASSES: usize = 3;

fn class_of(nodes: usize) -> usize {
    match nodes {
        0..=4_095 => 0,
        4_096..=65_535 => 1,
        _ => 2,
    }
}

fn method_index(m: Method) -> usize {
    Method::ALL
        .iter()
        .position(|&x| x == m)
        .expect("Method::ALL is exhaustive")
}

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    /// EWMA of nanoseconds per node.
    ns_per_node: f64,
    samples: u64,
}

#[derive(Debug, Default)]
struct Feedback {
    cells: [[Cell; N_METHODS]; N_CLASSES],
    decisions: u64,
}

/// What [`AdaptivePlanner::explain`] reports: the method the planner
/// would pick, and why.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The method `choose` would return for this (cost, shape).
    pub method: Method,
    /// True when the tiny-document fast path decided (no feedback
    /// consulted).
    pub tiny: bool,
    /// The feedback size class consulted, when one was.
    pub size_class: Option<usize>,
    /// The candidate methods in prior order, each with its observed
    /// `(ns_per_node, samples)` evidence if sampled.
    pub candidates: Vec<(Method, Option<(f64, u64)>)>,
}

/// Picks an evaluation method per request; see the module docs.
///
/// All state sits behind one small mutex — decisions and feedback
/// recording are a few arithmetic operations, so contention is
/// negligible next to query evaluation.
pub struct AdaptivePlanner {
    config: PlannerConfig,
    feedback: Mutex<Feedback>,
}

impl AdaptivePlanner {
    /// Creates a planner with the given knobs.
    pub fn new(config: PlannerConfig) -> AdaptivePlanner {
        AdaptivePlanner {
            config,
            feedback: Mutex::new(Feedback::default()),
        }
    }

    /// The static prior: candidate methods for this query shape, best
    /// first, before any latency feedback.
    pub fn candidates(cost: &QueryCost, shape: DocShape) -> Vec<Method> {
        match shape {
            // An unparsed file admits only the streaming method.
            DocShape::File { .. } => vec![Method::TwoPassSax],
            DocShape::InMemory { .. } => {
                let mut order = Vec::with_capacity(4);
                if cost.has_qualifiers() {
                    // Qualifiers: one bottom-up pass beats re-evaluation;
                    // keep GENTOP second for cheap qualifiers.
                    order.push(Method::TwoPass);
                    order.push(Method::TopDown);
                } else {
                    // No qualifiers: topDown alone is optimal; TD-BU's
                    // extra pass buys nothing.
                    order.push(Method::TopDown);
                    order.push(Method::TwoPass);
                }
                // The rewriting stays competitive without descendant
                // axes (its repeated subtree scans stay local).
                order.push(Method::Naive);
                order.push(Method::CopyUpdate);
                order
            }
        }
    }

    /// Chooses a method for one request.
    pub fn choose(&self, cost: &QueryCost, shape: DocShape) -> Method {
        let nodes = match shape {
            DocShape::File { .. } => return Method::TwoPassSax,
            DocShape::InMemory { nodes } => nodes,
        };
        let candidates = Self::candidates(cost, shape);
        if nodes < self.config.tiny_doc_nodes {
            // Tiny documents: constant factors dominate; the prior's
            // cheap baselines are fine and feedback noise is high.
            return if cost.has_qualifiers() || cost.has_descendant() {
                candidates[0]
            } else {
                Method::Naive
            };
        }
        let mut fb = self.feedback.lock().expect("planner lock poisoned");
        fb.decisions += 1;
        let class = class_of(nodes);
        if self.config.explore_every > 0 && fb.decisions.is_multiple_of(self.config.explore_every) {
            // Exploration turn: give the least-sampled candidate a run
            // so feedback covers the whole candidate set.
            if let Some(&m) = candidates
                .iter()
                .min_by_key(|&&m| fb.cells[class][method_index(m)].samples)
            {
                return m;
            }
        }
        Self::exploit(&fb, class, &candidates)
    }

    /// Exploitation rule, shared by [`choose`](Self::choose) and
    /// [`explain`](Self::explain): predicted-best among sampled
    /// candidates; fall back to prior order for unsampled ones.
    fn exploit(fb: &Feedback, class: usize, candidates: &[Method]) -> Method {
        let best_sampled = candidates
            .iter()
            .filter(|&&m| fb.cells[class][method_index(m)].samples > 0)
            .min_by(|&&a, &&b| {
                let ca = fb.cells[class][method_index(a)].ns_per_node;
                let cb = fb.cells[class][method_index(b)].ns_per_node;
                ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
            });
        *best_sampled.unwrap_or(&candidates[0])
    }

    /// Reports the method [`choose`](Self::choose) would pick right
    /// now, with the evidence behind it, *without* counting a decision
    /// or taking an exploration turn (so `EXPLAIN` never perturbs the
    /// plan it reports — modulo a concurrent request landing on its
    /// exploration tick in between).
    pub fn explain(&self, cost: &QueryCost, shape: DocShape) -> PlanChoice {
        let nodes = match shape {
            DocShape::File { bytes } => {
                // Streaming is forced; evidence (if any) lives in the
                // byte→node scaled class `record` feeds.
                let class = class_of((bytes / 64).max(1) as usize);
                let fb = self.feedback.lock().expect("planner lock poisoned");
                let cell = fb.cells[class][method_index(Method::TwoPassSax)];
                return PlanChoice {
                    method: Method::TwoPassSax,
                    tiny: false,
                    size_class: Some(class),
                    candidates: vec![(
                        Method::TwoPassSax,
                        (cell.samples > 0).then_some((cell.ns_per_node, cell.samples)),
                    )],
                };
            }
            DocShape::InMemory { nodes } => nodes,
        };
        let candidates = Self::candidates(cost, shape);
        if nodes < self.config.tiny_doc_nodes {
            let method = if cost.has_qualifiers() || cost.has_descendant() {
                candidates[0]
            } else {
                Method::Naive
            };
            return PlanChoice {
                method,
                tiny: true,
                size_class: None,
                candidates: candidates.into_iter().map(|m| (m, None)).collect(),
            };
        }
        let class = class_of(nodes);
        let fb = self.feedback.lock().expect("planner lock poisoned");
        let method = Self::exploit(&fb, class, &candidates);
        PlanChoice {
            method,
            tiny: false,
            size_class: Some(class),
            candidates: candidates
                .into_iter()
                .map(|m| {
                    let cell = fb.cells[class][method_index(m)];
                    (
                        m,
                        (cell.samples > 0).then_some((cell.ns_per_node, cell.samples)),
                    )
                })
                .collect(),
        }
    }

    /// Feeds one observed execution back into the model.
    pub fn record(&self, method: Method, shape: DocShape, elapsed: Duration) {
        let nodes = match shape {
            DocShape::InMemory { nodes } => nodes.max(1),
            // Rough byte→node scale so file feedback lands in a sane
            // class; streaming has a single candidate anyway.
            DocShape::File { bytes } => (bytes / 64).max(1) as usize,
        };
        let sample = elapsed.as_nanos() as f64 / nodes as f64;
        let mut fb = self.feedback.lock().expect("planner lock poisoned");
        let cell = &mut fb.cells[class_of(nodes)][method_index(method)];
        if cell.samples == 0 {
            cell.ns_per_node = sample;
        } else {
            let w = f64::from(self.config.ewma_weight) / 100.0;
            cell.ns_per_node = w * sample + (1.0 - w) * cell.ns_per_node;
        }
        cell.samples += 1;
    }

    /// Observed model state: `(method, size_class, ns_per_node,
    /// samples)` for every sampled cell.
    pub fn snapshot(&self) -> Vec<(Method, usize, f64, u64)> {
        let fb = self.feedback.lock().expect("planner lock poisoned");
        let mut out = Vec::new();
        for (class, row) in fb.cells.iter().enumerate() {
            for (mi, cell) in row.iter().enumerate() {
                if cell.samples > 0 {
                    out.push((Method::ALL[mi], class, cell.ns_per_node, cell.samples));
                }
            }
        }
        out
    }
}

impl Default for AdaptivePlanner {
    fn default() -> AdaptivePlanner {
        AdaptivePlanner::new(PlannerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn cost(p: &str) -> QueryCost {
        QueryCost::of_path(&parse_path(p).unwrap())
    }

    const MEM: DocShape = DocShape::InMemory { nodes: 100_000 };

    #[test]
    fn file_shape_forces_streaming() {
        let planner = AdaptivePlanner::default();
        let c = cost("//a[b]/c");
        assert_eq!(
            planner.choose(&c, DocShape::File { bytes: 1 << 30 }),
            Method::TwoPassSax
        );
    }

    #[test]
    fn prior_prefers_twopass_with_qualifiers_topdown_without() {
        assert_eq!(
            AdaptivePlanner::candidates(&cost("//part[pname = 'kb']"), MEM)[0],
            Method::TwoPass
        );
        assert_eq!(
            AdaptivePlanner::candidates(&cost("/site/people/person"), MEM)[0],
            Method::TopDown
        );
    }

    #[test]
    fn tiny_docs_use_cheap_baselines() {
        let planner = AdaptivePlanner::default();
        let m = planner.choose(&cost("a/b/c"), DocShape::InMemory { nodes: 40 });
        assert_eq!(m, Method::Naive);
    }

    #[test]
    fn feedback_overrides_prior() {
        let planner = AdaptivePlanner::new(PlannerConfig {
            explore_every: 0, // pure exploitation for determinism
            ..PlannerConfig::default()
        });
        let c = cost("//open_auction[initial > 10]/bidder");
        // Teach it that TopDown is 10x faster than the prior's TwoPass.
        for _ in 0..8 {
            planner.record(Method::TwoPass, MEM, Duration::from_millis(100));
            planner.record(Method::TopDown, MEM, Duration::from_millis(10));
        }
        assert_eq!(planner.choose(&c, MEM), Method::TopDown);
        // And that feedback is per size class: a mid-size class with no
        // samples still follows the prior.
        let mid = DocShape::InMemory { nodes: 8_192 };
        assert_eq!(planner.choose(&c, mid), Method::TwoPass);
    }

    #[test]
    fn exploration_samples_other_candidates() {
        let planner = AdaptivePlanner::new(PlannerConfig {
            explore_every: 2,
            ..PlannerConfig::default()
        });
        let c = cost("//a[b]");
        for _ in 0..4 {
            planner.record(Method::TwoPass, MEM, Duration::from_millis(1));
        }
        let chosen: Vec<Method> = (0..8).map(|_| planner.choose(&c, MEM)).collect();
        // Every second decision explores the least-sampled candidate,
        // which is never the already-sampled TwoPass.
        assert!(chosen.iter().any(|&m| m != Method::TwoPass));
        assert!(chosen.contains(&Method::TwoPass));
    }

    #[test]
    fn explain_matches_choose_without_perturbing_it() {
        let planner = AdaptivePlanner::new(PlannerConfig {
            explore_every: 0, // pure exploitation for determinism
            ..PlannerConfig::default()
        });
        let c = cost("//open_auction[initial > 10]/bidder");
        for _ in 0..8 {
            planner.record(Method::TwoPass, MEM, Duration::from_millis(100));
            planner.record(Method::TopDown, MEM, Duration::from_millis(10));
        }
        for shape in [
            MEM,
            DocShape::InMemory { nodes: 40 },
            DocShape::InMemory { nodes: 8_192 },
            DocShape::File { bytes: 1 << 20 },
        ] {
            let plan = planner.explain(&c, shape);
            assert_eq!(plan.method, planner.choose(&c, shape), "{shape:?}");
        }
        // Evidence is reported for the sampled candidates.
        let plan = planner.explain(&c, MEM);
        assert!(!plan.tiny);
        assert_eq!(plan.size_class, Some(2));
        let td = plan
            .candidates
            .iter()
            .find(|(m, _)| *m == Method::TopDown)
            .unwrap();
        let (ns, samples) = td.1.expect("TopDown was sampled");
        assert_eq!(samples, 8);
        assert!(ns > 0.0);
        // Tiny path reports no feedback evidence.
        let tiny = planner.explain(&c, DocShape::InMemory { nodes: 40 });
        assert!(tiny.tiny);
        assert!(tiny.candidates.iter().all(|(_, e)| e.is_none()));
    }

    #[test]
    fn snapshot_reports_sampled_cells() {
        let planner = AdaptivePlanner::default();
        planner.record(Method::Naive, MEM, Duration::from_micros(500));
        let snap = planner.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, Method::Naive);
        assert!(snap[0].2 > 0.0);
    }
}
