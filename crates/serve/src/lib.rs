#![warn(missing_docs)]
//! `xust-serve` — a concurrent transform-view service over the
//! *Querying XML with Update Syntax* engine.
//!
//! The paper's promise is answering queries over transformed documents
//! — security views, policy views, hypothetical "what-if" scenarios —
//! **without materializing them**. That only pays off at scale if the
//! per-query setup (parsing, selecting/filtering-NFA construction,
//! composition) happens *once* and is then shared by every concurrent
//! client. This crate is that serving layer:
//!
//! * [`ViewRegistry`] — named views (chains of transform queries, or
//!   security policies) compiled at registration;
//! * [`PreparedCache`] — ad-hoc transforms and composed user queries
//!   keyed by text, so repeat requests skip parse + automaton
//!   construction (hits/misses/compiles are counted and asserted in
//!   tests);
//! * [`AdaptivePlanner`] — picks an evaluation [`Method`] per request
//!   from the query's compile-time [`QueryCost`] hints, the document's
//!   [`DocShape`], and observed per-method latency feedback;
//! * [`ViewResultCache`] — materialized view results, kept **valid
//!   across live writes** by delta-aware maintenance: an
//!   [`UPDATE`](Server::update_doc) retains every entry the write
//!   provably cannot affect (NFA label-alphabet relevance test) and
//!   applies the delta to it in place, dropping only the rest;
//! * [`Server`] — `Arc`-shared immutable documents behind an
//!   epoch-based COW [`DocStore`], a worker [`ThreadPool`], a batched
//!   multi-document entry point, a streaming SAX path for file-backed
//!   inputs, and the live update path.
//!
//! # Quickstart
//!
//! ```
//! use xust_serve::{Request, Server};
//! use xust_tree::Document;
//!
//! let server = Server::builder().threads(2).build();
//! server.load_doc(
//!     "db",
//!     Document::parse("<db><part><pname>kb</pname><price>9</price></part></db>").unwrap(),
//! );
//! server
//!     .register_view(
//!         "public",
//!         r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
//!     )
//!     .unwrap();
//!
//! // Materialize the view…
//! let view = server
//!     .handle(&Request::View { view: "public".into(), doc: "db".into() })
//!     .unwrap();
//! assert_eq!(view.body, "<db><part><pname>kb</pname></part></db>");
//!
//! // …or query it virtually (composed, never materialized).
//! let ans = server
//!     .handle(&Request::Query {
//!         view: "public".into(),
//!         doc: "db".into(),
//!         query: r#"<out>{ for $x in doc("db")/db/part return $x }</out>"#.into(),
//!     })
//!     .unwrap();
//! assert_eq!(ans.body, "<out><part><pname>kb</pname></part></out>");
//!
//! // Write through the live update path: COW epoch bump, and the
//! // cached view result above is *maintained* (the delta never touches
//! // a label the view's automata test), not recomputed.
//! server
//!     .update_doc(
//!         "db",
//!         r#"transform copy $a := doc("db") modify do insert <stock>3</stock> into $a/db/part return $a"#,
//!     )
//!     .unwrap();
//! let after = server
//!     .handle(&Request::View { view: "public".into(), doc: "db".into() })
//!     .unwrap();
//! assert_eq!(after.body, "<db><part><pname>kb</pname><stock>3</stock></part></db>");
//! assert_eq!(server.stats().delta_retained, 1);
//! ```

pub mod cache;
pub mod error;
pub mod executor;
pub mod obs;
pub mod pipeline;
pub mod planner;
pub mod registry;
pub mod server;
pub mod stats;
pub mod store;
pub mod viewcache;
pub mod wal;

pub use cache::PreparedCache;
pub use error::ServeError;
pub use executor::ThreadPool;
pub use obs::{HistogramSnapshot, LatencyHistogram, Obs, Phase, RequestTrace, Trace};
pub use pipeline::{serve_pipelined, PipelineOptions};
pub use planner::{AdaptivePlanner, DocShape, PlanChoice, PlannerConfig};
pub use registry::{ViewBody, ViewDef, ViewRegistry};
pub use server::{
    Analysis, CandidateEvidence, DocSource, Explanation, LinkPlan, Request, Response, Server,
    ServerBuilder, StreamingSession, WalRecovery,
};
pub use stats::{json_escape, DeltaCell, EwmaCell, ServeStats, StatsSnapshot, Verb};
pub use store::{DocStore, StoreSnapshot, StoreUpdateError, VersionedDoc, WriteStamp};
pub use viewcache::{MaintainOutcome, ViewResultCache};
pub use wal::{Wal, WalRecord, WalReplay};

// Re-exported so callers can speak the planner's vocabulary without
// depending on xust-core directly.
pub use xust_core::{LabelSet, Method, QueryCost};

// Re-exported so callers can consume the registration-time static
// analysis ([`Server::analyze`], [`ViewDef::analysis`]) without
// depending on xust-analyze directly.
pub use xust_analyze::{StaticFootprint, UpdateClass, ViewAnalysis};

#[cfg(test)]
mod tests {
    use super::*;
    use xust_secview::Policy;
    use xust_tree::Document;

    const XML: &str = concat!(
        "<db>",
        "<part><pname>kb</pname><supplier><sname>HP</sname><price>9</price></supplier></part>",
        "<part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part>",
        "</db>"
    );
    const DEL_PRICE: &str =
        r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;
    const REN_PART: &str =
        r#"transform copy $a := doc("db") modify do rename $a/db/part as item return $a"#;

    fn server() -> Server {
        let s = Server::builder().threads(2).build();
        s.load_doc_str("db", XML).unwrap();
        s
    }

    #[test]
    fn transform_requests_cache_compilations() {
        let s = server();
        let req = Request::Transform {
            doc: "db".into(),
            query: DEL_PRICE.into(),
        };
        let first = s.handle(&req).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.body.contains("<price>"));
        for _ in 0..5 {
            let again = s.handle(&req).unwrap();
            assert!(again.cache_hit);
            assert_eq!(again.body, first.body);
        }
        let snap = s.stats();
        assert_eq!(snap.compiles, 1, "one parse+NFA build for six requests");
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn view_chain_applies_in_order() {
        let s = server();
        s.register_view_chain("scenario", &[DEL_PRICE, REN_PART])
            .unwrap();
        let out = s
            .handle(&Request::View {
                view: "scenario".into(),
                doc: "db".into(),
            })
            .unwrap();
        assert!(out.body.contains("<item>"));
        assert!(!out.body.contains("<price>"));
        assert_eq!(s.registration_compiles(), 2);
    }

    #[test]
    fn composed_query_equals_query_over_materialized_view() {
        let s = server();
        s.register_view("public", DEL_PRICE).unwrap();
        let user = r#"<out>{ for $x in doc("db")/db/part/supplier return $x }</out>"#;
        let composed = s
            .handle(&Request::Query {
                view: "public".into(),
                doc: "db".into(),
                query: user.into(),
            })
            .unwrap();
        // Reference: materialize, then query sequentially.
        let view = s
            .handle(&Request::View {
                view: "public".into(),
                doc: "db".into(),
            })
            .unwrap();
        let doc = Document::parse(&view.body).unwrap();
        let mut engine = xust_xquery::Engine::new();
        engine.load_doc("db", doc);
        let uq = xust_compose::UserQuery::parse(user).unwrap();
        let v = engine.eval_expr(&uq.to_expr(), &[]).unwrap();
        assert_eq!(composed.body, engine.serialize_value(&v));
        // Repeat requests hit the composed cache.
        let again = s
            .handle(&Request::Query {
                view: "public".into(),
                doc: "db".into(),
                query: user.into(),
            })
            .unwrap();
        assert!(again.cache_hit);
        assert_eq!(s.stats().compositions, 1);
    }

    #[test]
    fn policies_serve_as_views() {
        let s = server();
        let policy = Policy::new("interns", "db")
            .hide("prices", "//price")
            .unwrap()
            .relabel("suppliers", "//supplier", "source")
            .unwrap();
        s.register_policy(&policy).unwrap();
        let out = s
            .handle(&Request::View {
                view: "interns".into(),
                doc: "db".into(),
            })
            .unwrap();
        assert!(!out.body.contains("<price>"));
        assert!(out.body.contains("<source>"));
        // Query over a multi-rule policy view (materialize + engine).
        let ans = s
            .handle(&Request::Query {
                view: "interns".into(),
                doc: "db".into(),
                query: r#"<r>{ for $x in doc("db")/db/part/source/sname return $x }</r>"#.into(),
            })
            .unwrap();
        assert_eq!(ans.body, "<r><sname>HP</sname><sname>IBM</sname></r>");
    }

    #[test]
    fn file_backed_documents_stream() {
        let dir = std::env::temp_dir();
        let path = dir.join("xust_serve_file_test.xml");
        std::fs::write(&path, XML).unwrap();
        let s = server();
        s.load_doc_file("disk", &path).unwrap();
        s.register_view("pub", DEL_PRICE).unwrap();
        let out = s
            .handle(&Request::View {
                view: "pub".into(),
                doc: "disk".into(),
            })
            .unwrap();
        assert_eq!(out.method, Some(Method::TwoPassSax));
        assert!(!out.body.contains("<price>"));
        // Ad-hoc transforms over files stream too.
        let t = s
            .handle(&Request::Transform {
                doc: "disk".into(),
                query: DEL_PRICE.into(),
            })
            .unwrap();
        assert_eq!(t.method, Some(Method::TwoPassSax));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_preserves_request_order() {
        let s = server();
        s.register_view("public", DEL_PRICE).unwrap();
        let batch: Vec<Request> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    Request::View {
                        view: "public".into(),
                        doc: "db".into(),
                    }
                } else {
                    Request::Transform {
                        doc: "db".into(),
                        query: REN_PART.into(),
                    }
                }
            })
            .collect();
        let results = s.execute_batch(batch);
        assert_eq!(results.len(), 16);
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().unwrap();
            if i % 2 == 0 {
                assert!(!r.body.contains("<price>"), "view at {i}");
            } else {
                assert!(r.body.contains("<item>"), "transform at {i}");
            }
        }
        assert_eq!(s.stats().batches, 1);
    }

    #[test]
    fn errors_are_reported_and_counted() {
        let s = server();
        assert!(matches!(
            s.handle(&Request::View {
                view: "nope".into(),
                doc: "db".into()
            }),
            Err(ServeError::UnknownView(_))
        ));
        assert!(matches!(
            s.handle(&Request::Transform {
                doc: "nope".into(),
                query: DEL_PRICE.into()
            }),
            Err(ServeError::UnknownDoc(_))
        ));
        assert!(matches!(
            s.handle(&Request::Transform {
                doc: "db".into(),
                query: "garbage".into()
            }),
            Err(ServeError::Parse(_))
        ));
        assert_eq!(s.stats().failures, 3);
    }

    #[test]
    fn streaming_session_matches_transform_request() {
        use xust_sax::SaxParser;
        let s = server();
        let expected = s
            .handle(&Request::Transform {
                doc: "db".into(),
                query: DEL_PRICE.into(),
            })
            .unwrap()
            .body;

        let mut session = s.begin_stream(DEL_PRICE).unwrap();
        assert!(session.cache_hit(), "transform compiled once, reused here");
        let mut p = SaxParser::from_str(XML);
        while let Some(ev) = p.next_event().unwrap() {
            session.feed(ev).unwrap();
        }
        session.begin_replay().unwrap();
        let mut out = Vec::new();
        let mut p = SaxParser::from_str(XML);
        while let Some(ev) = p.next_event().unwrap() {
            out.extend(session.replay(ev).unwrap());
        }
        assert_eq!(session.bytes_emitted(), out.len() as u64);
        let (tail, stats) = session.finish().unwrap();
        out.extend(tail);
        assert_eq!(String::from_utf8(out).unwrap(), expected);
        assert!(stats.elements > 0);
        assert_eq!(s.stats().stream_sessions, 1);
        assert_eq!(s.store().active_snapshots(), 0, "session released its pin");
    }

    #[test]
    fn batch_takes_one_snapshot_and_counts_steals() {
        let s = Server::builder().threads(4).shards(4).build();
        s.load_doc_str("db", XML).unwrap();
        let batch: Vec<Request> = (0..32)
            .map(|_| Request::Transform {
                doc: "db".into(),
                query: DEL_PRICE.into(),
            })
            .collect();
        let results = s.execute_batch(batch);
        assert!(results.iter().all(|r| r.is_ok()));
        let snap = s.stats();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batch_items, 32);
        assert_eq!(s.store().active_snapshots(), 0, "batch snapshot released");
    }

    #[test]
    fn view_latency_ewma_is_reported() {
        let s = server();
        s.register_view("public", DEL_PRICE).unwrap();
        for _ in 0..3 {
            s.handle(&Request::View {
                view: "public".into(),
                doc: "db".into(),
            })
            .unwrap();
        }
        let (n, micros) = s
            .stats()
            .view_latency
            .iter()
            .find(|(v, _, _)| v == "public")
            .map(|&(_, n, e)| (n, e))
            .unwrap();
        assert_eq!(n, 3);
        assert!(micros >= 0.0);
    }

    #[test]
    fn epochs_advance_and_old_snapshots_survive_reload() {
        let s = server();
        let before: u64 = s.store().epochs().iter().sum();
        s.load_doc_str("db", "<db><part><price>1</price></part></db>")
            .unwrap();
        let after: u64 = s.store().epochs().iter().sum();
        assert_eq!(after, before + 1, "one COW epoch per write");
        let out = s
            .handle(&Request::Transform {
                doc: "db".into(),
                query: DEL_PRICE.into(),
            })
            .unwrap();
        assert_eq!(out.body, "<db><part/></db>");
    }

    #[test]
    fn doc_and_view_listings() {
        let s = server();
        s.register_view("v1", DEL_PRICE).unwrap();
        assert_eq!(s.doc_names(), vec!["db".to_string()]);
        assert_eq!(s.view_names(), vec!["v1".to_string()]);
    }
}
