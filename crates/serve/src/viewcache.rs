//! The materialized view-result cache with delta-aware maintenance.
//!
//! [`PreparedCache`](crate::PreparedCache) makes *plans* cheap; this
//! cache makes *answers* cheap: it maps `(view, doc)` to the
//! materialized view result, pinned to the shard epoch it was computed
//! at. A read at the same epoch is a hit; a read at any other epoch is a
//! miss (and replaces the entry).
//!
//! The interesting path is the write. When `UPDATE` applies a delta to a
//! stored document, every entry for that document faces one of two
//! fates, decided by the relevance test of `xust_core::delta`:
//!
//! * **retained** — the update provably cannot change what the view's
//!   automata see, and the view provably cannot have changed what the
//!   update's selection reads: `delta ∩ view alphabet = ∅`,
//!   `update alphabet ∩ view structural-touched = ∅`, and
//!   `update value-labels ∩ view valued-touched = ∅`, with no
//!   wildcards on either side. The *same* update is then applied to
//!   the cached result (view and update commute under exactly these
//!   conditions), and the entry moves to the new epoch without
//!   recomputation. If the retained update renamed nodes, the entry's
//!   stored touched-label sets are carried into the new vocabulary via
//!   [`TouchedLabels::apply_renames`] — they describe *nodes* whose
//!   names just changed, and later relevance tests must see the
//!   current names, not the materialization-time ones.
//! * **recomputed** — the test fails (or either side carries a
//!   wildcard): the entry is dropped and the next request rebuilds it
//!   lazily.
//!
//! Entries that are merely **stale** — more than one epoch behind,
//! because a *neighbouring* document in the same shard was written —
//! are dropped without running the relevance test at all (the missed
//! write's delta is unknown) and reported separately, so the
//! retained/recomputed counters reflect actual relevance-test outcomes.
//!
//! Entries for documents in other shards — or simply other documents —
//! are never examined, so a write to doc A cannot over-invalidate doc
//! B's results. Retained and recomputed fates are counted per view in
//! [`ServeStats`](crate::ServeStats).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xust_core::delta::{RenameMapping, TouchedLabels};
use xust_core::LabelSet;
use xust_tree::Document;

/// One cached, maintained view result.
struct Entry {
    /// The materialized result as a tree — kept so retained entries can
    /// have the delta applied to them in place.
    doc: Document,
    /// `doc` serialized (what responses ship), shared so a hit hands
    /// out a refcount bump instead of copying the whole body inside
    /// the cache mutex. `None` after maintenance edited `doc`:
    /// re-serialized lazily on the first hit, so the write path's
    /// critical section stays proportional to the delta, not to the
    /// total size of every retained result.
    body: Option<Arc<str>>,
    /// The registration generation of the view definition this result
    /// was materialized under (see `ViewDef::generation`).
    generation: u64,
    /// The view's static alphabet, captured at insert.
    view_alphabet: LabelSet,
    /// The labels the view's own updates touched when this result was
    /// materialized, split into structural (removed subtrees, inserted
    /// fragments, renames) and valued (ancestor-or-self chains whose
    /// string values shifted) — the update side of the relevance test.
    view_touched: TouchedLabels,
    /// Shard epoch of the base document this result reflects.
    epoch: u64,
    /// LRU clock value of the last hit.
    last_use: u64,
}

/// What [`ViewResultCache::maintain`] did to one document's entries.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MaintainOutcome {
    /// Views whose entries were retained (delta applied in place).
    pub retained: Vec<String>,
    /// Views whose entries failed the relevance test and were dropped
    /// for lazy recomputation.
    pub recomputed: Vec<String>,
    /// Views whose entries were already more than one epoch behind
    /// (a same-shard neighbour was written since) — dropped without
    /// running the relevance test.
    pub stale: Vec<String>,
}

/// See the module docs.
pub struct ViewResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct Inner {
    /// `doc → view → entry`. Nesting (instead of a `(String, String)`
    /// key) buys two things: `get` on the hot read path looks up with
    /// borrowed `&str` keys — no per-call allocation under the mutex —
    /// and the write path's maintenance sweep walks exactly one
    /// document's entries instead of scanning the whole cache.
    map: HashMap<String, HashMap<String, Entry>>,
    /// Total entries across all documents (kept so capacity checks and
    /// `len` stay O(1)).
    entries: usize,
    tick: u64,
}

impl Inner {
    /// Removes `doc`'s whole entry map, keeping the entry count true.
    fn remove_doc(&mut self, doc: &str) -> usize {
        let dropped = self.map.remove(doc).map_or(0, |m| m.len());
        self.entries -= dropped;
        dropped
    }
}

impl ViewResultCache {
    /// A cache holding at most `capacity` materialized results
    /// (`capacity == 0` disables caching entirely).
    pub fn new(capacity: usize) -> ViewResultCache {
        ViewResultCache {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached body for `(view, doc)` **at exactly** `epoch`, under
    /// exactly view-definition `generation`, if any. A counted miss
    /// means the caller is about to materialize. The first hit after a
    /// maintenance edit pays the (re-)serialization here — outside the
    /// store's shard lock.
    pub fn get(&self, view: &str, doc: &str, epoch: u64, generation: u64) -> Option<Arc<str>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("view cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(doc).and_then(|m| m.get_mut(view)) {
            Some(e) if e.epoch == epoch && e.generation == generation => {
                e.last_use = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(
                    e.body.get_or_insert_with(|| e.doc.serialize().into()),
                ))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Installs (or replaces) the result for `(view, doc)` as of
    /// `epoch` under view-definition `generation`, evicting the
    /// least-recently-used entry at capacity. A resident entry at a
    /// *newer* epoch or generation wins over the candidate: a batch
    /// pinned to an old snapshot must not clobber a maintained,
    /// up-to-date result with its older one.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        view: &str,
        doc: &str,
        epoch: u64,
        generation: u64,
        result: Document,
        body: String,
        view_alphabet: LabelSet,
        view_touched: TouchedLabels,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("view cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let Inner { map, entries, .. } = &mut *inner;
        let resident = map.get(doc).and_then(|m| m.get(view));
        if let Some(existing) = resident {
            if existing.epoch > epoch || existing.generation > generation {
                return;
            }
        } else if *entries >= self.capacity {
            // Evict the least-recently-used entry cache-wide.
            if let Some((d, v)) = map
                .iter()
                .flat_map(|(d, m)| m.iter().map(move |(v, e)| (d, v, e.last_use)))
                .min_by_key(|&(_, _, last_use)| last_use)
                .map(|(d, v, _)| (d.clone(), v.clone()))
            {
                let views = map.get_mut(&d).expect("lru doc resides in map");
                views.remove(&v);
                *entries -= 1;
                if views.is_empty() {
                    map.remove(&d);
                }
            }
        }
        let replaced = map.entry(doc.to_string()).or_default().insert(
            view.to_string(),
            Entry {
                doc: result,
                body: Some(body.into()),
                generation,
                view_alphabet,
                view_touched,
                epoch,
                last_use: tick,
            },
        );
        if replaced.is_none() {
            *entries += 1;
        }
    }

    /// The write-path maintenance sweep for `doc`: runs the relevance
    /// test against every entry of this document, applies `apply_delta`
    /// (the same update the store is installing) to retained entries and
    /// moves them to `new_epoch`, drops the rest. `renames` carries the
    /// old→new label mapping of every rename the write applied, in
    /// order: retained entries have it folded into their stored
    /// touched-label sets so later relevance tests compare against the
    /// document's *current* vocabulary (the cached tree was just renamed
    /// along with the base — the footprint must follow). Must be called
    /// while the store's shard write lock is held so maintenance is
    /// ordered exactly like the installs it mirrors.
    ///
    /// Entries more than one epoch behind are dropped as **stale**
    /// without a relevance test (a same-shard neighbour's write was
    /// missed; its delta is unknown) and reported separately from
    /// `recomputed`.
    ///
    /// Cost note: serialization of retained entries is deferred to their
    /// next hit, but `apply_delta` still re-evaluates the update's
    /// targets over each retained result — a write pays O(Σ retained
    /// result sizes) inside this cache's one mutex (which also gates
    /// reads for *other* documents). Acceptable while writes are rare
    /// relative to reads; sharding this lock by document is the known
    /// follow-up if write rates grow (see ROADMAP).
    #[allow(clippy::too_many_arguments)]
    pub fn maintain(
        &self,
        doc: &str,
        new_epoch: u64,
        update_alphabet: &LabelSet,
        update_values: &LabelSet,
        delta: &LabelSet,
        renames: &[RenameMapping],
        apply_delta: &mut dyn FnMut(&mut Document),
    ) -> MaintainOutcome {
        let mut outcome = MaintainOutcome::default();
        if self.capacity == 0 {
            return outcome;
        }
        let mut inner = self.inner.lock().expect("view cache lock poisoned");
        let Inner { map, entries, .. } = &mut *inner;
        let Some(views) = map.get_mut(doc) else {
            return outcome; // other documents are never touched
        };
        views.retain(|view, e| {
            // `fresh`: computed at exactly the epoch this write replaces
            // (shard epochs advance on *any* write to the shard, so an
            // older entry may have missed a neighbour's delta — drop it
            // without judging it: the relevance test never ran).
            if e.epoch + 1 != new_epoch {
                outcome.stale.push(view.clone());
                *entries -= 1;
                return false;
            }
            // An empty delta means the update matched nothing: the
            // document is byte-identical, every fresh entry rides along.
            // Otherwise all three directions of the relevance test must
            // come back disjoint (wildcards intersect everything
            // non-empty — see `LabelSet::intersects`): the delta vs
            // what the view can observe, the update's full selection
            // alphabet vs what the view structurally changed, and the
            // update's value-sensitive labels vs the nodes whose string
            // values the view perturbed.
            let retain = delta.is_empty()
                || (!delta.intersects(&e.view_alphabet)
                    && !update_alphabet.intersects(&e.view_touched.structural)
                    && !update_values.intersects(&e.view_touched.valued));
            if retain {
                if !delta.is_empty() {
                    apply_delta(&mut e.doc);
                    // Serialization deferred to the next hit: the shard
                    // write lock is held here, and the sweep must stay
                    // proportional to the delta.
                    e.body = None;
                    // The write just renamed nodes in the cached tree;
                    // rename the stored footprint with them. (For a
                    // retained entry only `valued` can actually move —
                    // a rename whose selection could read a label in
                    // `structural` is caught by the alphabet direction
                    // above — but folding into both is free and keeps
                    // the invariant local.)
                    e.view_touched.apply_renames(renames);
                }
                e.epoch = new_epoch;
                outcome.retained.push(view.clone());
                true
            } else {
                outcome.recomputed.push(view.clone());
                *entries -= 1;
                false
            }
        });
        if views.is_empty() {
            map.remove(doc);
        }
        outcome
    }

    /// Drops every entry for `doc` (a reload/remove is an unbounded
    /// delta). Returns how many were dropped.
    pub fn purge_doc(&self, doc: &str) -> usize {
        let mut inner = self.inner.lock().expect("view cache lock poisoned");
        inner.remove_doc(doc)
    }

    /// Drops every entry for `view` (re-registering a view changes its
    /// meaning). Returns how many were dropped.
    pub fn purge_view(&self, view: &str) -> usize {
        let mut inner = self.inner.lock().expect("view cache lock poisoned");
        let mut dropped = 0;
        inner.map.retain(|_, views| {
            dropped += usize::from(views.remove(view).is_some());
            !views.is_empty()
        });
        inner.entries -= dropped;
        dropped
    }

    /// Cached entries right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("view cache lock poisoned").entries
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Epoch-valid hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_core::intern;

    fn labels(ls: &[&str]) -> LabelSet {
        ls.iter().map(|l| intern(l)).collect()
    }

    fn touched(structural: &[&str], valued: &[&str]) -> TouchedLabels {
        TouchedLabels {
            structural: labels(structural),
            valued: labels(valued),
        }
    }

    fn entry(cache: &ViewResultCache, view: &str, doc: &str, epoch: u64, alpha: &[&str]) {
        cache.insert(
            view,
            doc,
            epoch,
            1,
            Document::parse("<r><keep/></r>").unwrap(),
            "<r><keep/></r>".into(),
            labels(alpha),
            touched(alpha, &["r"]),
        );
    }

    #[test]
    fn hits_are_epoch_exact() {
        let c = ViewResultCache::new(8);
        entry(&c, "v", "d", 3, &["x"]);
        assert_eq!(c.get("v", "d", 3, 1).as_deref(), Some("<r><keep/></r>"));
        assert_eq!(c.get("v", "d", 4, 1), None, "later epoch is a miss");
        assert_eq!(c.get("v", "d", 2, 1), None, "earlier epoch is a miss");
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn maintain_retains_disjoint_and_drops_intersecting() {
        let c = ViewResultCache::new(8);
        entry(&c, "disjoint", "d", 1, &["x"]);
        entry(&c, "overlap", "d", 1, &["hot"]);
        entry(&c, "elsewhere", "other", 1, &["hot"]);
        let mut applied = 0;
        let out = c.maintain(
            "d",
            2,
            &labels(&["hot", "new"]),
            &LabelSet::new(),
            &labels(&["hot", "new"]),
            &[],
            &mut |doc| {
                applied += 1;
                let root = doc.root().unwrap();
                let n = doc.create_element("new");
                doc.append_child(root, n);
            },
        );
        assert_eq!(out.retained, vec!["disjoint".to_string()]);
        assert_eq!(out.recomputed, vec!["overlap".to_string()]);
        assert_eq!(applied, 1, "delta applied only to the retained entry");
        // The retained entry serves the *maintained* body at the new epoch.
        assert_eq!(
            c.get("disjoint", "d", 2, 1).as_deref(),
            Some("<r><keep/><new/></r>")
        );
        assert_eq!(c.get("overlap", "d", 2, 1), None);
        // The other document's entry was never examined.
        assert!(c.get("elsewhere", "other", 1, 1).is_some());
    }

    #[test]
    fn maintain_drops_stale_and_wildcard_entries() {
        let c = ViewResultCache::new(8);
        // Stale: computed two epochs ago — even a disjoint delta cannot
        // carry it forward (the missed write's delta is unknown).
        entry(&c, "stale", "d", 1, &["x"]);
        // Wildcard view: sensitive to any vocabulary change.
        c.insert(
            "wild",
            "d",
            2,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            {
                let mut a = labels(&["x"]);
                a.mark_wildcard();
                a
            },
            TouchedLabels::new(),
        );
        let out = c.maintain(
            "d",
            3,
            &labels(&["zzz"]),
            &LabelSet::new(),
            &labels(&["zzz"]),
            &[],
            &mut |_| panic!("nothing should be maintained"),
        );
        assert!(out.retained.is_empty());
        // The stale entry never faced the relevance test — it is not a
        // "recomputed" outcome, only the wildcard one is.
        assert_eq!(out.stale, vec!["stale".to_string()]);
        assert_eq!(out.recomputed, vec!["wild".to_string()]);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_delta_retains_everything_without_applying() {
        let c = ViewResultCache::new(8);
        c.insert(
            "wild",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            {
                let mut a = LabelSet::new();
                a.mark_wildcard();
                a
            },
            TouchedLabels::new(),
        );
        // A no-op write (update matched zero targets): even wildcard
        // views ride across the epoch bump untouched.
        let out = c.maintain(
            "d",
            2,
            &labels(&["q"]),
            &LabelSet::new(),
            &LabelSet::new(),
            &[],
            &mut |_| panic!("no delta to apply"),
        );
        assert_eq!(out.retained, vec!["wild".to_string()]);
        assert!(c.get("wild", "d", 2, 1).is_some());
    }

    #[test]
    fn update_alphabet_versus_view_structural_direction() {
        let c = ViewResultCache::new(8);
        // The view's own update removed subtrees containing "inner"
        // labels; an update whose *selection* can read those labels must
        // recompute even though its delta is disjoint from the view's
        // alphabet.
        c.insert(
            "v",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            labels(&["s"]),
            touched(&["s", "inner"], &["r", "s"]),
        );
        let out = c.maintain(
            "d",
            2,
            &labels(&["p", "inner"]),
            &LabelSet::new(),
            &labels(&["p"]),
            &[],
            &mut |_| {},
        );
        assert_eq!(out.recomputed, vec!["v".to_string()]);
    }

    #[test]
    fn update_values_versus_view_valued_direction() {
        let c = ViewResultCache::new(8);
        // The view changed string values along the r/b chain (it removed
        // text-bearing <t> content below b). An update may *mention* b
        // on its path (traversal reads structure, which the view did not
        // change there) — but one whose qualifier *compares* b's value
        // must recompute.
        c.insert(
            "v",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            labels(&["s"]),
            touched(&["t"], &["r", "b"]),
        );
        let sel = labels(&["p", "b"]);
        // Plain path over b: value-insensitive → retained.
        let out = c.maintain(
            "d",
            2,
            &sel,
            &LabelSet::new(),
            &labels(&["p"]),
            &[],
            &mut |_| {},
        );
        assert_eq!(out.retained, vec!["v".to_string()]);
        // Same write shape, but now the update compares b's value.
        let out = c.maintain(
            "d",
            3,
            &sel,
            &labels(&["b"]),
            &labels(&["p"]),
            &[],
            &mut |_| {},
        );
        assert_eq!(out.recomputed, vec!["v".to_string()]);
    }

    #[test]
    fn retained_renames_remap_stored_touched_labels() {
        use xust_core::delta::RenameMapping;
        // The view's materialization perturbed string values along the
        // r/a/w ancestor chain (it deleted text-bearing content below
        // w). A retained rename write renames a→b and w→u in the cached
        // tree; the stored footprint must follow, or a later update
        // whose qualifier reads u's value slips past the relevance test
        // (REVIEW: false retention after renames).
        let c = ViewResultCache::new(8);
        c.insert(
            "v",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            labels(&["s"]),
            touched(&["s"], &["r", "a", "w"]),
        );
        // The rename write: selection alphabet {a, b, w, u}, no value
        // reads, delta {a, b, w, u} — disjoint from everything stored.
        let renames = [
            RenameMapping {
                old: labels(&["a"]),
                new: intern("b"),
            },
            RenameMapping {
                old: labels(&["w"]),
                new: intern("u"),
            },
        ];
        let out = c.maintain(
            "d",
            2,
            &labels(&["a", "b", "w", "u"]),
            &LabelSet::new(),
            &labels(&["a", "b", "w", "u"]),
            &renames,
            &mut |_| {},
        );
        assert_eq!(out.retained, vec!["v".to_string()]);
        // A later write whose qualifier compares u's value must now be
        // caught by the valued direction under the *new* name.
        let out = c.maintain(
            "d",
            3,
            &labels(&["b", "u", "m"]),
            &labels(&["u"]),
            &labels(&["m", "b", "u", "r"]),
            &[],
            &mut |_| {},
        );
        assert_eq!(
            out.recomputed,
            vec!["v".to_string()],
            "the renamed ancestor's new label must stay in the footprint"
        );
    }

    #[test]
    fn purges_and_lru() {
        let c = ViewResultCache::new(2);
        entry(&c, "v1", "d1", 1, &["x"]);
        entry(&c, "v2", "d1", 1, &["x"]);
        assert!(c.get("v1", "d1", 1, 1).is_some()); // refresh v1
        entry(&c, "v3", "d2", 1, &["x"]); // evicts v2 (LRU)
        assert_eq!(c.len(), 2);
        assert!(c.get("v2", "d1", 1, 1).is_none());
        assert_eq!(c.purge_doc("d1"), 1);
        assert_eq!(c.purge_view("v3"), 1);
        assert!(c.is_empty());
        // Capacity 0 disables the cache entirely.
        let off = ViewResultCache::new(0);
        entry(&off, "v", "d", 1, &["x"]);
        assert!(off.get("v", "d", 1, 1).is_none());
        assert!(off.is_empty());
    }
}
