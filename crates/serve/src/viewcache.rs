//! The materialized view-result cache with delta-aware maintenance,
//! sharded by document.
//!
//! [`PreparedCache`](crate::PreparedCache) makes *plans* cheap; this
//! cache makes *answers* cheap: it maps `(view, doc)` to the
//! materialized view result, keyed by the **document version** it was
//! computed from (see `store::VersionedDoc`) and the view definition's
//! registration generation. A read at the same `(generation, version)`
//! is a hit; anything else is a miss (and replaces the entry).
//!
//! Because the key is the *document's own* version — not the shard
//! epoch — a write to one document cannot disturb another document's
//! entries in any way: their versions did not move, so their keys still
//! match, and (see below) their locks are never taken.
//!
//! ## Per-document shards
//!
//! The cache is physically split into one shard per document — an
//! `Arc<Mutex<…>>` entry map created the first time a document's result
//! is cached and dropped with the document (`purge_doc`). Readers
//! resolve the shard through a read-mostly outer `RwLock` (briefly, in
//! shared mode) and then lock only their own document's mutex. The
//! write path's maintenance sweep — relevance tests plus target
//! re-evaluation over each retained result — therefore gates result
//! reads for *the written document only*; requests for every other
//! document proceed in parallel. Lock order is strictly outer → one
//! shard mutex; no path ever holds two shard mutexes at once.
//!
//! ## The write path
//!
//! When `UPDATE` applies a delta to a stored document, every entry for
//! that document faces one of three fates, decided by the relevance
//! test of `xust_core::delta` and the provenance map of
//! `xust_core::patch`:
//!
//! * **retained** — the update provably cannot change what the view's
//!   automata see, and the view provably cannot have changed what the
//!   update's selection reads: `delta ∩ view alphabet = ∅`,
//!   `update alphabet ∩ view structural-touched = ∅`, and
//!   `update value-labels ∩ view valued-touched = ∅`, with no
//!   wildcards on either side. The *same* update is then applied to
//!   the cached result (view and update commute under exactly these
//!   conditions), and the entry moves to the new document version
//!   without recomputation. If the retained update renamed nodes, the
//!   entry's stored touched-label sets are carried into the new
//!   vocabulary via [`TouchedLabels::apply_renames`] — they describe
//!   *nodes* whose names just changed, and later relevance tests must
//!   see the current names, not the materialization-time ones.
//! * **patched** — the relevance test fails (the write genuinely
//!   changes the view's output) but the entry carries a
//!   [`FragmentTree`] provenance map and the write is a single-rule
//!   update whose sites localize to a small set of recorded fragments:
//!   the view is re-evaluated **only under those base subtrees** with
//!   the fragment's stored NFA states, and the fresh result nodes are
//!   spliced over the stale ones in the cached tree. Unaffected
//!   fragments keep their memoized serialization bytes, so both patch
//!   time and the next re-serialization are proportional to the
//!   affected span, not the result size — the update-time-sublinear
//!   regime. Eligibility additionally requires the update's guard
//!   labels (every label on a site's ancestor chain, plus rename
//!   targets) to be disjoint from the view's qualifier *anchor*
//!   alphabet: a write can flip a qualifier verdict only at
//!   ancestors-or-self of its targets, so disjointness proves every
//!   selection decision outside the patched regions is unchanged.
//! * **recomputed** — the test fails and patching is ineligible (no
//!   provenance, multi-rule write, guard overlap, affected span above
//!   the fallback threshold, or a site localizing to the root
//!   fragment): the entry is dropped and the next request rebuilds it
//!   lazily.
//!
//! Retained entries with a non-empty delta get their provenance
//! *repaired* rather than rebuilt: the deepest fragment covering each
//! update site (on the base side) and each replayed target (on the
//! result side) is collapsed to an opaque leaf — still correct, just
//! less granular, until the next full materialization restores detail.
//!
//! There is no "stale" fate: under shard-epoch keying a
//! neighbour's write silently un-keyed every same-shard entry, and the
//! sweep had to drop them untested. Per-document versions make that
//! structurally impossible — a neighbour write moves neither this
//! document's version nor its shard's lock — and the regression tests
//! in `tests/update_maintenance.rs` hold the line. Retained and
//! recomputed fates are counted per view and per document in
//! [`ServeStats`](crate::ServeStats).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering}; // lint: atomic-ok (hit/miss/size counters only)
use std::sync::{Arc, Mutex, RwLock};

use xust_core::delta::{RenameMapping, TouchedLabels};
use xust_core::{Collapse, CompiledTransform, FragmentTree, LabelSet, Localized, PatchOutcome};
use xust_tree::{Document, NodeId};

/// Fallback threshold: patch only when the affected base span times
/// this factor fits inside the document (small documents always pass —
/// the span comparison floor is 256 nodes — since a recompute there is
/// cheap anyway but patching keeps the fuzzers honest).
const PATCH_SPAN_FACTOR: u64 = 4;

/// What a retained entry's delta replay touched in the *cached result*
/// tree: the deepest-first ancestor-or-self chain of every replayed
/// target, read off the result document **before** the replay mutated
/// it. Result-side provenance repair collapses along these.
#[derive(Debug, Default, Clone)]
pub struct DeltaReplay {
    /// One chain per replayed update target (see
    /// [`xust_core::site_chain`]).
    pub chains: Vec<Vec<NodeId>>,
}

/// Everything the patch fate needs to know about one registered view.
pub struct PatchView {
    /// The view's compiled transform (prebuilt selecting NFA included).
    pub ct: Arc<CompiledTransform>,
    /// The view path's qualifier anchor alphabet
    /// ([`xust_core::qualifier_anchor_alphabet_into`]).
    pub anchor_alphabet: LabelSet,
    /// The registration generation `ct` belongs to.
    pub generation: u64,
}

/// Write-side context for the patch fate, built by the server for
/// **single-rule** updates only (multi-rule writes interleave arena
/// slot recycling between rules, so node ids captured for one rule can
/// be stale by the next — provenance cannot be trusted across them).
pub struct PatchCtx<'a> {
    /// The base document **after** the write applied.
    pub base: &'a Document,
    /// Per-target site chains (deepest-first ancestor-or-self of each
    /// update site, pre-apply ids — sites are chosen to survive the
    /// update: the parent for structural/sibling ops, the target itself
    /// for renames and into-inserts).
    pub sites: &'a [Vec<NodeId>],
    /// Union of every site-chain label plus rename target labels: the
    /// labels at which the write could have flipped a qualifier
    /// verdict or changed a name.
    pub guard: &'a LabelSet,
    /// Patch-eligible registered views by cache key.
    pub views: &'a HashMap<String, PatchView>,
}

/// One cached, maintained view result.
struct Entry {
    /// The materialized result as a tree — kept so retained entries can
    /// have the delta applied to them in place.
    doc: Document,
    /// `doc` serialized (what responses ship), shared so a hit hands
    /// out a refcount bump instead of copying the whole body inside
    /// the shard mutex. `None` after maintenance edited `doc`:
    /// re-serialized lazily on the first hit, so the write path's
    /// critical section stays proportional to the delta, not to the
    /// total size of every retained result.
    body: Option<Arc<str>>,
    /// The registration generation of the view definition this result
    /// was materialized under (see `ViewDef::generation`).
    generation: u64,
    /// The view's static alphabet, captured at insert.
    view_alphabet: LabelSet,
    /// The labels the view's own updates touched when this result was
    /// materialized, split into structural (removed subtrees, inserted
    /// fragments, renames) and valued (ancestor-or-self chains whose
    /// string values shifted) — the update side of the relevance test.
    view_touched: TouchedLabels,
    /// Version of the base document this result reflects — bumped only
    /// by writes to *that* document, never by shard neighbours.
    version: u64,
    /// Provenance of `doc` — which base subtrees produced which result
    /// fragments, with memoized per-fragment bytes. Present only when
    /// the materialization path could record it (single-transform view,
    /// alignable shape); dropped whenever a write's effect on it cannot
    /// be repaired. `None` simply disables the patch fate.
    frags: Option<FragmentTree>,
    /// LRU clock value of the last hit.
    last_use: u64,
    /// Set once a retained rename remapped `view_touched`: the entry's
    /// footprint has drifted from what the view *definition* statically
    /// bounds, so registration-time commutation verdicts no longer
    /// apply to it — it must take the dynamic relevance test until
    /// replaced by a fresh materialization.
    drifted: bool,
}

/// One document's slice of the cache: its own entry map behind its own
/// mutex, shared via `Arc` so readers can resolve it under the outer
/// read lock and then operate without it.
#[derive(Default)]
struct DocCacheShard {
    state: Mutex<DocShardState>,
}

#[derive(Default)]
struct DocShardState {
    /// `view → entry` for this one document.
    views: HashMap<String, Entry>,
    /// Set when `purge_doc` removes the shard from the outer map: an
    /// inserter racing the purge (it resolved the `Arc` just before)
    /// must not write into the orphaned map — entries there would be
    /// unreachable yet counted. It retries through the outer map
    /// instead, landing in a fresh shard (or nowhere).
    detached: bool,
}

/// What [`ViewResultCache::maintain`] did to one document's entries.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MaintainOutcome {
    /// Views whose entries were retained (delta applied in place).
    pub retained: Vec<String>,
    /// The subset of `retained` resolved by the static commutation
    /// table alone — the per-entry dynamic relevance test was skipped.
    pub static_retained: Vec<String>,
    /// Views whose entries failed the relevance test but were patched
    /// in place through their provenance maps.
    pub patched: Vec<String>,
    /// Total fragments spliced across all patched entries.
    pub patched_fragments: u64,
    /// Views whose entries failed the relevance test and were dropped
    /// for lazy recomputation.
    pub recomputed: Vec<String>,
}

/// See the module docs.
pub struct ViewResultCache {
    capacity: usize,
    /// `doc → shard`. Read-mostly: looked up in shared mode on every
    /// get/insert/maintain; taken exclusively only to create a shard
    /// for a newly cached document or to drop one with its document.
    shards: RwLock<HashMap<String, Arc<DocCacheShard>>>,
    /// Total entries across all shards, kept outside the shard mutexes
    /// so capacity checks and `len` never walk (or lock) the shards.
    entries: AtomicUsize,
    /// Global LRU clock (monotonic; ties are impossible).
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ViewResultCache {
    /// A cache holding at most `capacity` materialized results
    /// (`capacity == 0` disables caching entirely). The capacity is a
    /// high-water mark, not a hard wall: concurrent inserters can
    /// overshoot it by at most one entry each while an eviction is in
    /// flight.
    pub fn new(capacity: usize) -> ViewResultCache {
        ViewResultCache {
            capacity,
            shards: RwLock::new(HashMap::new()),
            entries: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1 // relaxed: monotone counter; no data published
    }

    /// The shard for `doc`, if one exists.
    fn shard_of(&self, doc: &str) -> Option<Arc<DocCacheShard>> {
        self.shards
            .read()
            .expect("view cache lock poisoned")
            .get(doc)
            .cloned()
    }

    /// The shard for `doc`, created if absent. Shard creation is rare
    /// (once per document whose results get cached), so the write-lock
    /// hold doubles as the reclamation point for **empty** shards:
    /// without it, a reader racing a `remove_doc` can re-create a shard
    /// for the just-purged document (its `still_at` check passed before
    /// the removal landed), and since `purge_doc` never runs again for
    /// that name, the dead shard would sit in the outer map forever
    /// under name-churn workloads. Any such entry is unreachable (its
    /// version is retired) and LRU-evicted at capacity; once its shard
    /// is empty, the next shard creation sweeps it out. Busy shards are
    /// skipped (`try_lock`), never waited on.
    fn shard_for(&self, doc: &str) -> Arc<DocCacheShard> {
        if let Some(shard) = self.shard_of(doc) {
            return shard;
        }
        let mut shards = self.shards.write().expect("view cache lock poisoned");
        shards.retain(|_, shard| {
            let Ok(mut state) = shard.state.try_lock() else {
                return true; // busy: keep, reclaim another time
            };
            if state.views.is_empty() {
                // Detach so an inserter still holding this Arc retries
                // through the outer map instead of writing into the
                // orphaned shard (same protocol as purge_doc).
                state.detached = true;
                false
            } else {
                true
            }
        });
        Arc::clone(shards.entry(doc.to_string()).or_default())
    }

    /// The cached body for `(view, doc)` **at exactly** document
    /// version `version`, under exactly view-definition `generation`,
    /// if any. A counted miss means the caller is about to materialize.
    /// The first hit after a maintenance edit pays the
    /// (re-)serialization here — outside the store's shard lock.
    pub fn get(&self, view: &str, doc: &str, version: u64, generation: u64) -> Option<Arc<str>> {
        if self.capacity == 0 {
            return None;
        }
        let found = self.shard_of(doc).and_then(|shard| {
            let mut state = shard.state.lock().expect("view cache shard poisoned");
            match state.views.get_mut(view) {
                Some(e) if e.version == version && e.generation == generation => {
                    e.last_use = self.next_tick();
                    if e.body.is_none() {
                        // Re-serialize through the provenance map when
                        // one is live: fragments untouched since the
                        // last serialization reuse their memoized bytes.
                        let s = match e.frags.as_mut() {
                            Some(t) => t.assemble(&e.doc),
                            None => e.doc.serialize(),
                        };
                        e.body = Some(s.into());
                    }
                    Some(Arc::clone(e.body.as_ref().expect("just materialized")))
                }
                _ => None,
            }
        });
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed), // relaxed: monotone counter; no data published
            None => self.misses.fetch_add(1, Ordering::Relaxed), // relaxed: monotone counter; no data published
        };
        found
    }

    /// Whether `(view, doc)` is resident at exactly `(version,
    /// generation)` — **without** counting a hit/miss or bumping the
    /// entry's LRU age. This is the `EXPLAIN` probe: introspection must
    /// not perturb the statistics or retention order it reports on.
    pub fn peek(&self, view: &str, doc: &str, version: u64, generation: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.shard_of(doc).is_some_and(|shard| {
            let state = shard.state.lock().expect("view cache shard poisoned");
            matches!(
                state.views.get(view),
                Some(e) if e.version == version && e.generation == generation
            )
        })
    }

    /// Installs (or replaces) the result for `(view, doc)` as of
    /// document version `version` under view-definition `generation`,
    /// evicting the least-recently-used entry cache-wide at capacity.
    /// A resident entry at a *newer* version or generation wins over
    /// the candidate: a batch pinned to an old snapshot must not
    /// clobber a maintained, up-to-date result with its older one.
    /// `frags`, when present, is the provenance map recorded over
    /// `result` at materialization time — it enables the patch fate for
    /// this entry.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        view: &str,
        doc: &str,
        version: u64,
        generation: u64,
        result: Document,
        body: String,
        view_alphabet: LabelSet,
        view_touched: TouchedLabels,
        frags: Option<FragmentTree>,
    ) {
        if self.capacity == 0 {
            return;
        }
        let entry = Entry {
            doc: result,
            body: Some(body.into()),
            generation,
            view_alphabet,
            view_touched,
            frags,
            version,
            last_use: self.next_tick(),
            drifted: false,
        };
        // When eviction finds nothing removable (every candidate shard
        // locked, or counter drift under a concurrent purge), insert
        // anyway rather than spin — the capacity is a high-water mark,
        // not a hard wall.
        let mut force = false;
        loop {
            let shard = self.shard_for(doc);
            {
                let mut state = shard.state.lock().expect("view cache shard poisoned");
                if state.detached {
                    // Lost a race with purge_doc: this Arc points at an
                    // orphaned map. Retry through the outer map.
                    continue;
                }
                // Every arm re-runs the residency check — however this
                // iteration was reached, a newer resident entry
                // (installed by a racing reader or a maintenance sweep
                // while the mutex was released) always wins.
                match state.views.get(view) {
                    Some(existing)
                        if existing.version > version || existing.generation > generation =>
                    {
                        return;
                    }
                    Some(_) => {
                        // Replacement: entry count unchanged, no
                        // eviction needed.
                        state.views.insert(view.to_string(), entry);
                        return;
                    }
                    // relaxed: point-in-time read; staleness is fine
                    None if force || self.entries.load(Ordering::Relaxed) < self.capacity => {
                        state.views.insert(view.to_string(), entry);
                        self.entries.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                        return;
                    }
                    None => {} // at capacity: fall through to evict
                }
            }
            // Eviction scans other shards' mutexes, so it must run with
            // this shard's mutex released (lock order: never two shard
            // mutexes at once).
            force = !self.evict_lru();
        }
    }

    /// Drops the least-recently-used entry cache-wide; false if nothing
    /// was evictable. Takes one shard mutex at a time, and only via
    /// `try_lock`: a shard whose mutex is busy — most importantly one
    /// held across a long maintenance sweep — is *skipped*, never
    /// waited on, so an at-capacity insert for one document can never
    /// stall behind another document's write. The LRU choice is
    /// approximate anyway (the tick races, the entries counter is
    /// loose); trading a little accuracy for never blocking is the
    /// point of the per-document sharding.
    fn evict_lru(&self) -> bool {
        let shards = self.shards.read().expect("view cache lock poisoned");
        let mut lru: Option<(&Arc<DocCacheShard>, String, u64)> = None;
        for shard in shards.values() {
            let Ok(state) = shard.state.try_lock() else {
                continue; // busy (or poisoned): skip, don't wait
            };
            for (view, e) in &state.views {
                if lru.as_ref().is_none_or(|(_, _, t)| e.last_use < *t) {
                    lru = Some((shard, view.clone(), e.last_use));
                }
            }
        }
        let Some((shard, view, _)) = lru else {
            return false;
        };
        let Ok(mut state) = shard.state.try_lock() else {
            return false; // became busy since the scan: give up, overshoot
        };
        if state.views.remove(&view).is_some() {
            self.entries.fetch_sub(1, Ordering::Relaxed); // relaxed: counter decrement; no data published
            true
        } else {
            false // raced with another eviction or a purge
        }
    }

    /// The write-path maintenance sweep for `doc`: runs the relevance
    /// test against every entry of this document, applies `apply_delta`
    /// (the same update the store is installing) to retained entries and
    /// moves them from document version `prev_version` to `new_version`,
    /// drops the rest. `renames` carries the old→new label mapping of
    /// every rename the write applied, in order: retained entries have
    /// it folded into their stored touched-label sets so later relevance
    /// tests compare against the document's *current* vocabulary (the
    /// cached tree was just renamed along with the base — the footprint
    /// must follow). Must be called while the store's shard write lock
    /// is held so maintenance is ordered exactly like the installs it
    /// mirrors.
    ///
    /// Only the written document's shard mutex is taken: result reads
    /// (and writes) for every other document proceed concurrently with
    /// the sweep, however long the target re-evaluation over retained
    /// results runs.
    ///
    /// An entry whose version is not `prev_version` was computed from
    /// content this write is not replacing — reachable only through the
    /// narrow race where a reader inserts a result it computed just
    /// before a write that found nothing to maintain. It is dropped for
    /// lazy recomputation like any failed relevance test (neighbour
    /// writes can no longer cause this; only the written document's own
    /// history can).
    ///
    /// `static_clear` maps cache keys to the view-definition generation
    /// the registration-time analysis proved this update shape commutes
    /// with (see `xust_analyze::statically_commutes`). A matching,
    /// non-drifted entry is retained on that table lookup alone — the
    /// three intersection tests are skipped — and reported in
    /// [`MaintainOutcome::static_retained`] as well as `retained`.
    ///
    /// `patch_ctx`, when present (single-rule writes only), enables two
    /// things: provenance *repair* on retained entries (collapse along
    /// site and replay chains instead of dropping the fragment tree),
    /// and the **patch** fate for entries that fail the relevance test.
    /// Fates are tried in order static-retain → dynamic-retain → patch
    /// → recompute: retention is strictly cheaper than patching, so a
    /// provably commuting write never pays for localization.
    ///
    /// `apply_delta` now reports what it replayed (the result-side
    /// chains provenance repair needs); callers without provenance
    /// return [`DeltaReplay::default`].
    #[allow(clippy::too_many_arguments)]
    pub fn maintain(
        &self,
        doc: &str,
        prev_version: u64,
        new_version: u64,
        update_alphabet: &LabelSet,
        update_values: &LabelSet,
        delta: &LabelSet,
        renames: &[RenameMapping],
        static_clear: &HashMap<String, u64>,
        patch_ctx: Option<&PatchCtx<'_>>,
        apply_delta: &mut dyn FnMut(&mut Document) -> DeltaReplay,
    ) -> MaintainOutcome {
        let mut outcome = MaintainOutcome::default();
        if self.capacity == 0 {
            return outcome;
        }
        let Some(shard) = self.shard_of(doc) else {
            return outcome; // nothing cached; other documents never touched
        };
        let mut state = shard.state.lock().expect("view cache shard poisoned");
        let mut dropped = 0usize;
        state.views.retain(|view, e| {
            // Static fast path: the registration-time table already
            // proved this (view, update-shape) pair commutes for any
            // document state. Generation must match (the verdict is
            // about the *current* definition) and the entry's footprint
            // must not have drifted from the definition's static bound.
            let static_ok = e.version == prev_version
                && !e.drifted
                && static_clear.get(view).is_some_and(|&g| g == e.generation);
            // All three directions of the relevance test must come back
            // disjoint (wildcards intersect everything non-empty — see
            // `LabelSet::intersects`): the delta vs what the view can
            // observe, the update's full selection alphabet vs what the
            // view structurally changed, and the update's
            // value-sensitive labels vs the nodes whose string values
            // the view perturbed. An empty delta means the update
            // matched nothing: the document is byte-identical, every
            // current entry rides along.
            let retain = static_ok
                || (e.version == prev_version
                    && (delta.is_empty()
                        || (!delta.intersects(&e.view_alphabet)
                            && !update_alphabet.intersects(&e.view_touched.structural)
                            && !update_values.intersects(&e.view_touched.valued))));
            if retain {
                if !delta.is_empty() {
                    let replay = apply_delta(&mut e.doc);
                    // Serialization deferred to the next hit: the store's
                    // shard write lock is held here, and the sweep must
                    // stay proportional to the delta.
                    e.body = None;
                    // Provenance repair: the write changed both the base
                    // (site chains) and the cached result (replay
                    // chains). Collapse the deepest covering fragment of
                    // each to an opaque leaf; if any chain reaches the
                    // root fragment — or there is no patch context to
                    // localize against — the whole map is stale.
                    if e.frags.is_some() {
                        let repaired = match patch_ctx {
                            Some(ctx) => {
                                let t = e.frags.as_mut().expect("checked above");
                                ctx.sites
                                    .iter()
                                    .all(|c| t.collapse_src(c) == Collapse::Done)
                                    && replay
                                        .chains
                                        .iter()
                                        .all(|c| t.collapse_dst(c) == Collapse::Done)
                            }
                            None => false,
                        };
                        if !repaired {
                            e.frags = None;
                        }
                    }
                    // The write just renamed nodes in the cached tree;
                    // rename the stored footprint with them. (For a
                    // retained entry only `valued` can actually move —
                    // a rename whose selection could read a label in
                    // `structural` is caught by the alphabet direction
                    // above — but folding into both is free and keeps
                    // the invariant local.)
                    if !renames.is_empty() {
                        e.view_touched.apply_renames(renames);
                        // The footprint may now exceed the definition's
                        // static bound: no static verdict applies to
                        // this entry any more.
                        e.drifted = true;
                    }
                }
                e.version = new_version;
                if static_ok {
                    outcome.static_retained.push(view.clone());
                }
                outcome.retained.push(view.clone());
                true
            } else if let Some(po) = patch_ctx.and_then(|ctx| try_patch(e, view, ctx, prev_version))
            {
                e.version = new_version;
                e.body = None; // next hit re-assembles through the map
                outcome.patched.push(view.clone());
                outcome.patched_fragments += po.fragments as u64;
                true
            } else {
                outcome.recomputed.push(view.clone());
                dropped += 1;
                false
            }
        });
        self.entries.fetch_sub(dropped, Ordering::Relaxed); // relaxed: counter decrement; no data published
        outcome
    }

    /// Drops `doc`'s whole cache shard (a reload/remove is an unbounded
    /// delta — and a removed document's shard must not outlive it).
    /// Returns how many entries were dropped. Entries of every other
    /// document are untouched.
    pub fn purge_doc(&self, doc: &str) -> usize {
        let shard = {
            let mut shards = self.shards.write().expect("view cache lock poisoned");
            shards.remove(doc)
        };
        let Some(shard) = shard else {
            return 0;
        };
        let mut state = shard.state.lock().expect("view cache shard poisoned");
        state.detached = true;
        let dropped = state.views.len();
        state.views.clear();
        self.entries.fetch_sub(dropped, Ordering::Relaxed); // relaxed: counter decrement; no data published
        dropped
    }

    /// Drops every entry for `view` across all documents
    /// (re-registering a view changes its meaning). Returns how many
    /// were dropped. Document shards themselves stay — their documents
    /// are still loaded.
    pub fn purge_view(&self, view: &str) -> usize {
        let shards: Vec<Arc<DocCacheShard>> = self
            .shards
            .read()
            .expect("view cache lock poisoned")
            .values()
            .cloned()
            .collect();
        let mut dropped = 0;
        for shard in shards {
            let mut state = shard.state.lock().expect("view cache shard poisoned");
            if state.views.remove(view).is_some() {
                dropped += 1;
            }
        }
        self.entries.fetch_sub(dropped, Ordering::Relaxed); // relaxed: counter decrement; no data published
        dropped
    }

    /// Cached entries right now.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Documents that currently have a cache shard (loaded docs whose
    /// results have been cached and not purged).
    pub fn doc_count(&self) -> usize {
        self.shards.read().expect("view cache lock poisoned").len()
    }

    /// Version-valid hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }
}

/// The patch fate for one entry that just failed the relevance test.
/// `None` means ineligible — fall through to recompute. On success the
/// entry's cached tree has been spliced and its touched-label footprint
/// widened by what the re-evaluation selected; the caller moves the
/// version forward and invalidates the flat body.
fn try_patch(
    e: &mut Entry,
    view: &str,
    ctx: &PatchCtx<'_>,
    prev_version: u64,
) -> Option<PatchOutcome> {
    if e.version != prev_version {
        return None; // computed from content this write is not replacing
    }
    let pv = ctx.views.get(view)?;
    if pv.generation != e.generation {
        return None; // the compiled view is not the one this entry reflects
    }
    // Guard test: the write may only have flipped qualifier verdicts at
    // nodes on its site chains; if those labels cannot anchor any of the
    // view's qualifiers, every selection decision outside the localized
    // regions still stands.
    if ctx.guard.intersects(&pv.anchor_alphabet) {
        return None;
    }
    let frags = e.frags.as_mut()?;
    let chosen = match frags.localize(ctx.sites) {
        Localized::Fragments(chosen) if !chosen.is_empty() => chosen,
        _ => return None, // a site reached the root fragment: whole-result span
    };
    // Fallback threshold: affected span vs document size.
    let span = frags.cost(&chosen);
    if span.saturating_mul(PATCH_SPAN_FACTOR) > (ctx.base.node_count() as u64).max(256) {
        return None;
    }
    let q = pv.ct.query();
    let po = frags.patch(ctx.base, &mut e.doc, q, pv.ct.selecting(), &chosen);
    // The splice changed what this materialization has touched: fold the
    // re-evaluated targets into the stored footprint so later relevance
    // tests see them. (This only widens the sets — never unsound — and
    // `record` wants the document the targets live in: the new base.)
    e.view_touched.record(ctx.base, &po.targets, &q.op);
    Some(po)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_core::intern;

    fn labels(ls: &[&str]) -> LabelSet {
        ls.iter().map(|l| intern(l)).collect()
    }

    fn touched(structural: &[&str], valued: &[&str]) -> TouchedLabels {
        TouchedLabels {
            structural: labels(structural),
            valued: labels(valued),
        }
    }

    fn entry(cache: &ViewResultCache, view: &str, doc: &str, version: u64, alpha: &[&str]) {
        cache.insert(
            view,
            doc,
            version,
            1,
            Document::parse("<r><keep/></r>").unwrap(),
            "<r><keep/></r>".into(),
            labels(alpha),
            touched(alpha, &["r"]),
            None,
        );
    }

    #[test]
    fn hits_are_version_exact() {
        let c = ViewResultCache::new(8);
        entry(&c, "v", "d", 3, &["x"]);
        assert_eq!(c.get("v", "d", 3, 1).as_deref(), Some("<r><keep/></r>"));
        assert_eq!(c.get("v", "d", 4, 1), None, "later version is a miss");
        assert_eq!(c.get("v", "d", 2, 1), None, "earlier version is a miss");
        assert_eq!(c.get("v", "d", 3, 2), None, "other generation is a miss");
        assert_eq!((c.hits(), c.misses()), (1, 3));
    }

    #[test]
    fn maintain_retains_disjoint_and_drops_intersecting() {
        let c = ViewResultCache::new(8);
        entry(&c, "disjoint", "d", 1, &["x"]);
        entry(&c, "overlap", "d", 1, &["hot"]);
        entry(&c, "elsewhere", "other", 1, &["hot"]);
        let mut applied = 0;
        let out = c.maintain(
            "d",
            1,
            2,
            &labels(&["hot", "new"]),
            &LabelSet::new(),
            &labels(&["hot", "new"]),
            &[],
            &HashMap::new(),
            None,
            &mut |doc| {
                applied += 1;
                let root = doc.root().unwrap();
                let n = doc.create_element("new");
                doc.append_child(root, n);
                DeltaReplay::default()
            },
        );
        assert_eq!(out.retained, vec!["disjoint".to_string()]);
        assert_eq!(out.recomputed, vec!["overlap".to_string()]);
        assert_eq!(applied, 1, "delta applied only to the retained entry");
        // The retained entry serves the *maintained* body at the new
        // version.
        assert_eq!(
            c.get("disjoint", "d", 2, 1).as_deref(),
            Some("<r><keep/><new/></r>")
        );
        assert_eq!(c.get("overlap", "d", 2, 1), None);
        // The other document's entry was never examined and still hits
        // at its own (unmoved) version.
        assert!(c.get("elsewhere", "other", 1, 1).is_some());
    }

    #[test]
    fn maintain_drops_wildcard_and_version_mismatched_entries() {
        let c = ViewResultCache::new(8);
        // Version mismatch: computed from content this write is not
        // replacing (the racing-reader shape) — dropped untested.
        entry(&c, "behind", "d", 1, &["x"]);
        // Wildcard view: sensitive to any vocabulary change.
        c.insert(
            "wild",
            "d",
            2,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            {
                let mut a = labels(&["x"]);
                a.mark_wildcard();
                a
            },
            TouchedLabels::new(),
            None,
        );
        let out = c.maintain(
            "d",
            2,
            3,
            &labels(&["zzz"]),
            &LabelSet::new(),
            &labels(&["zzz"]),
            &[],
            &HashMap::new(),
            None,
            &mut |_| panic!("nothing should be maintained"),
        );
        assert!(out.retained.is_empty());
        let mut recomputed = out.recomputed.clone();
        recomputed.sort();
        assert_eq!(recomputed, vec!["behind".to_string(), "wild".to_string()]);
        assert!(c.is_empty());
    }

    #[test]
    fn empty_delta_retains_everything_without_applying() {
        let c = ViewResultCache::new(8);
        c.insert(
            "wild",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            {
                let mut a = LabelSet::new();
                a.mark_wildcard();
                a
            },
            TouchedLabels::new(),
            None,
        );
        // A no-op write (update matched zero targets): even wildcard
        // views ride across the version bump untouched.
        let out = c.maintain(
            "d",
            1,
            2,
            &labels(&["q"]),
            &LabelSet::new(),
            &LabelSet::new(),
            &[],
            &HashMap::new(),
            None,
            &mut |_| panic!("no delta to apply"),
        );
        assert_eq!(out.retained, vec!["wild".to_string()]);
        assert!(c.get("wild", "d", 2, 1).is_some());
    }

    #[test]
    fn update_alphabet_versus_view_structural_direction() {
        let c = ViewResultCache::new(8);
        // The view's own update removed subtrees containing "inner"
        // labels; an update whose *selection* can read those labels must
        // recompute even though its delta is disjoint from the view's
        // alphabet.
        c.insert(
            "v",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            labels(&["s"]),
            touched(&["s", "inner"], &["r", "s"]),
            None,
        );
        let out = c.maintain(
            "d",
            1,
            2,
            &labels(&["p", "inner"]),
            &LabelSet::new(),
            &labels(&["p"]),
            &[],
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.recomputed, vec!["v".to_string()]);
    }

    #[test]
    fn update_values_versus_view_valued_direction() {
        let c = ViewResultCache::new(8);
        // The view changed string values along the r/b chain (it removed
        // text-bearing <t> content below b). An update may *mention* b
        // on its path (traversal reads structure, which the view did not
        // change there) — but one whose qualifier *compares* b's value
        // must recompute.
        c.insert(
            "v",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            labels(&["s"]),
            touched(&["t"], &["r", "b"]),
            None,
        );
        let sel = labels(&["p", "b"]);
        // Plain path over b: value-insensitive → retained.
        let out = c.maintain(
            "d",
            1,
            2,
            &sel,
            &LabelSet::new(),
            &labels(&["p"]),
            &[],
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.retained, vec!["v".to_string()]);
        // Same write shape, but now the update compares b's value.
        let out = c.maintain(
            "d",
            2,
            3,
            &sel,
            &labels(&["b"]),
            &labels(&["p"]),
            &[],
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.recomputed, vec!["v".to_string()]);
    }

    #[test]
    fn retained_renames_remap_stored_touched_labels() {
        use xust_core::delta::RenameMapping;
        // The view's materialization perturbed string values along the
        // r/a/w ancestor chain (it deleted text-bearing content below
        // w). A retained rename write renames a→b and w→u in the cached
        // tree; the stored footprint must follow, or a later update
        // whose qualifier reads u's value slips past the relevance test
        // (REVIEW: false retention after renames).
        let c = ViewResultCache::new(8);
        c.insert(
            "v",
            "d",
            1,
            1,
            Document::parse("<r/>").unwrap(),
            "<r/>".into(),
            labels(&["s"]),
            touched(&["s"], &["r", "a", "w"]),
            None,
        );
        // The rename write: selection alphabet {a, b, w, u}, no value
        // reads, delta {a, b, w, u} — disjoint from everything stored.
        let renames = [
            RenameMapping {
                old: labels(&["a"]),
                new: intern("b"),
            },
            RenameMapping {
                old: labels(&["w"]),
                new: intern("u"),
            },
        ];
        let out = c.maintain(
            "d",
            1,
            2,
            &labels(&["a", "b", "w", "u"]),
            &LabelSet::new(),
            &labels(&["a", "b", "w", "u"]),
            &renames,
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.retained, vec!["v".to_string()]);
        // A later write whose qualifier compares u's value must now be
        // caught by the valued direction under the *new* name.
        let out = c.maintain(
            "d",
            2,
            3,
            &labels(&["b", "u", "m"]),
            &labels(&["u"]),
            &labels(&["m", "b", "u", "r"]),
            &[],
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(
            out.recomputed,
            vec!["v".to_string()],
            "the renamed ancestor's new label must stay in the footprint"
        );
    }

    #[test]
    fn static_clear_skips_the_dynamic_test() {
        let c = ViewResultCache::new(8);
        // An entry whose alphabet *intersects* the delta: the dynamic
        // test would drop it, so a retain proves the static table was
        // consulted instead. (The caller vouches for soundness; the
        // cache only honours the lookup.)
        entry(&c, "v", "d", 1, &["hot"]);
        let mut clear = HashMap::new();
        clear.insert("v".to_string(), 1u64);
        let out = c.maintain(
            "d",
            1,
            2,
            &labels(&["hot"]),
            &LabelSet::new(),
            &labels(&["hot"]),
            &[],
            &clear,
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.retained, vec!["v".to_string()]);
        assert_eq!(out.static_retained, vec!["v".to_string()]);
        // A generation mismatch disables the verdict: the table speaks
        // about a *different* definition of the view.
        entry(&c, "w", "d", 2, &["hot"]);
        let mut stale = HashMap::new();
        stale.insert("w".to_string(), 9u64);
        let out = c.maintain(
            "d",
            2,
            3,
            &labels(&["hot"]),
            &LabelSet::new(),
            &labels(&["hot"]),
            &[],
            &stale,
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert!(out.static_retained.is_empty());
        let mut recomputed = out.recomputed.clone();
        recomputed.sort();
        assert_eq!(recomputed, vec!["v".to_string(), "w".to_string()]);
    }

    #[test]
    fn drifted_entries_fall_back_to_the_dynamic_test() {
        let c = ViewResultCache::new(8);
        entry(&c, "v", "d", 1, &["x"]);
        // A retained rename remaps the stored footprint → drift.
        let renames = [RenameMapping {
            old: labels(&["r"]),
            new: intern("r2"),
        }];
        let out = c.maintain(
            "d",
            1,
            2,
            &labels(&["r", "r2"]),
            &LabelSet::new(),
            &labels(&["r", "r2"]),
            &renames,
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.retained, vec!["v".to_string()]);
        // The static table now claims this pair commutes, but the entry
        // has drifted: it must take (and here fail) the dynamic test.
        let mut clear = HashMap::new();
        clear.insert("v".to_string(), 1u64);
        let out = c.maintain(
            "d",
            2,
            3,
            &labels(&["x"]),
            &LabelSet::new(),
            &labels(&["x"]),
            &[],
            &clear,
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert!(out.static_retained.is_empty());
        assert_eq!(out.recomputed, vec!["v".to_string()]);
    }

    /// The third fate, at the cache level: an entry that *fails* the
    /// relevance test but carries provenance is patched in place —
    /// reported as `patched`, kept resident at the new version, and its
    /// next read serves bytes identical to a full recompute.
    #[test]
    fn failed_relevance_with_provenance_patches_in_place() {
        use xust_core::{
            apply_update, qualifier_anchor_alphabet_into, site_chain, top_down,
            touched_labels_into, update_alphabet, value_alphabet_into, InsertPos, UpdateOp,
        };
        use xust_xpath::{eval_path_root, parse_path};
        let ct = Arc::new(
            CompiledTransform::parse(
                r#"transform copy $a := doc("d") modify do delete $a//price return $a"#,
            )
            .unwrap(),
        );
        let mut base = Document::parse(
            "<db><zone><part><pname>kb</pname><price>9</price></part>\
             <part><pname>m</pname><price>3</price></part></zone>\
             <other><pad>p</pad></other></db>",
        )
        .unwrap();
        let result = top_down(&base, ct.query());
        let body = result.serialize();
        let mut vt = TouchedLabels::new();
        vt.record(
            &base,
            &eval_path_root(&base, &ct.query().path),
            &ct.query().op,
        );
        let frags = FragmentTree::build(&base, &result, ct.query(), ct.selecting(), 1);
        assert!(frags.is_some(), "provenance must record for this shape");
        let c = ViewResultCache::new(8);
        c.insert(
            "v",
            "d",
            1,
            1,
            result,
            body,
            ct.alphabet().clone(),
            vt,
            frags,
        );
        // The write: insert <w>1</w> into the first part. Its value
        // footprint (part, pname) collides with the view's valued
        // ancestors of the deleted prices, so retention must fail.
        let wpath = parse_path("//part[pname = 'kb']").unwrap();
        let targets = eval_path_root(&base, &wpath);
        assert_eq!(targets.len(), 1);
        let op = UpdateOp::Insert {
            elem: Document::parse("<w>1</w>").unwrap(),
            pos: InsertPos::LastInto,
        };
        let mut delta = LabelSet::new();
        touched_labels_into(&base, &targets, &op, &mut delta);
        let ua = update_alphabet(&wpath, &op);
        let mut uv = LabelSet::new();
        value_alphabet_into(&wpath, &mut uv);
        let sites: Vec<Vec<NodeId>> = targets.iter().map(|&t| site_chain(&base, t)).collect();
        let mut guard = LabelSet::new();
        for chain in &sites {
            for &n in chain {
                if let Some(s) = base.name_sym(n) {
                    guard.insert(s);
                }
            }
        }
        apply_update(&mut base, &targets, &op);
        let mut anchor = LabelSet::new();
        qualifier_anchor_alphabet_into(&ct.query().path, &mut anchor);
        let mut views = HashMap::new();
        views.insert(
            "v".to_string(),
            PatchView {
                ct: Arc::clone(&ct),
                anchor_alphabet: anchor,
                generation: 1,
            },
        );
        let ctx = PatchCtx {
            base: &base,
            sites: &sites,
            guard: &guard,
            views: &views,
        };
        let out = c.maintain(
            "d",
            1,
            2,
            &ua,
            &uv,
            &delta,
            &[],
            &HashMap::new(),
            Some(&ctx),
            &mut |_| panic!("relevance must fail: this write changes the view"),
        );
        assert_eq!(out.patched, vec!["v".to_string()]);
        assert!(out.retained.is_empty() && out.recomputed.is_empty());
        assert!(out.patched_fragments >= 1);
        let expect = top_down(&base, ct.query()).serialize();
        assert_eq!(c.get("v", "d", 2, 1).as_deref(), Some(expect.as_str()));
    }

    #[test]
    fn purges_and_lru() {
        let c = ViewResultCache::new(2);
        entry(&c, "v1", "d1", 1, &["x"]);
        entry(&c, "v2", "d1", 1, &["x"]);
        assert!(c.get("v1", "d1", 1, 1).is_some()); // refresh v1
        entry(&c, "v3", "d2", 1, &["x"]); // evicts v2 (LRU, cache-wide)
        assert_eq!(c.len(), 2);
        assert!(c.get("v2", "d1", 1, 1).is_none());
        assert_eq!(c.purge_doc("d1"), 1);
        assert_eq!(c.purge_doc("d1"), 0, "second purge finds no shard");
        assert_eq!(c.purge_view("v3"), 1);
        assert!(c.is_empty());
        // Capacity 0 disables the cache entirely.
        let off = ViewResultCache::new(0);
        entry(&off, "v", "d", 1, &["x"]);
        assert!(off.get("v", "d", 1, 1).is_none());
        assert!(off.is_empty());
    }

    #[test]
    fn purge_doc_drops_only_that_documents_shard() {
        let c = ViewResultCache::new(8);
        entry(&c, "v", "a", 1, &["x"]);
        entry(&c, "v", "b", 1, &["x"]);
        entry(&c, "w", "b", 1, &["x"]);
        assert_eq!(c.doc_count(), 2);
        assert_eq!(c.purge_doc("b"), 2);
        assert_eq!(c.doc_count(), 1);
        assert_eq!(c.len(), 1);
        assert!(c.get("v", "a", 1, 1).is_some(), "doc a's entry survives");
        assert!(c.get("v", "b", 1, 1).is_none());
    }

    #[test]
    fn insert_never_downgrades_a_newer_resident() {
        let c = ViewResultCache::new(8);
        entry(&c, "v", "d", 5, &["x"]);
        // An older-version candidate (a batch pinned to an old snapshot)
        // must lose against the resident entry.
        c.insert(
            "v",
            "d",
            3,
            1,
            Document::parse("<old/>").unwrap(),
            "<old/>".into(),
            labels(&["x"]),
            TouchedLabels::new(),
            None,
        );
        assert_eq!(c.get("v", "d", 5, 1).as_deref(), Some("<r><keep/></r>"));
        assert!(c.get("v", "d", 3, 1).is_none());
    }

    /// Empty shards — a raced removal's leftover, or a live document
    /// whose entries were all invalidated — are reclaimed the next time
    /// a shard is created, so the outer map cannot grow without bound
    /// under document-name churn.
    #[test]
    fn empty_shards_are_reclaimed_when_new_ones_are_created() {
        let c = ViewResultCache::new(8);
        entry(&c, "v", "d1", 1, &["x"]);
        // The write invalidates d1's only entry: shard empty, resident.
        let out = c.maintain(
            "d1",
            1,
            2,
            &labels(&["x"]),
            &LabelSet::new(),
            &labels(&["x"]),
            &[],
            &HashMap::new(),
            None,
            &mut |_| DeltaReplay::default(),
        );
        assert_eq!(out.recomputed, vec!["v".to_string()]);
        assert_eq!((c.len(), c.doc_count()), (0, 1), "empty shard lingers");
        // Creating another document's shard sweeps the empty one out.
        entry(&c, "v", "d2", 1, &["x"]);
        assert_eq!((c.len(), c.doc_count()), (1, 1));
        assert!(c.get("v", "d2", 1, 1).is_some());
        // A later insert for d1 just re-creates its shard.
        entry(&c, "v", "d1", 3, &["x"]);
        assert_eq!((c.len(), c.doc_count()), (2, 2));
        assert!(c.get("v", "d1", 3, 1).is_some());
    }

    /// An at-capacity insert whose only eviction candidate sits in a
    /// shard locked by a maintenance sweep must not block on that
    /// mutex: eviction skips the busy shard and the insert lands as a
    /// bounded capacity overshoot instead of stalling behind another
    /// document's write.
    #[test]
    fn at_capacity_insert_skips_swept_shards_instead_of_blocking() {
        use std::sync::mpsc;
        let c = Arc::new(ViewResultCache::new(1)); // capacity 1: d1 fills it
        entry(&c, "v", "d1", 1, &["zzz"]);
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let sweeper = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                c.maintain(
                    "d1",
                    1,
                    2,
                    &labels(&["q"]),
                    &LabelSet::new(),
                    &labels(&["q"]),
                    &[],
                    &HashMap::new(),
                    None,
                    &mut |_| {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap(); // hold d1's shard lock
                        DeltaReplay::default()
                    },
                )
            })
        };
        entered_rx.recv().unwrap(); // sweep is inside d1's shard mutex
                                    // The only evictable entry lives in the locked shard; this
                                    // insert must complete anyway (overshooting to 2 entries), not
                                    // deadlock waiting for the sweep.
        entry(&c, "w", "d2", 1, &["x"]);
        assert_eq!(c.len(), 2, "bounded overshoot instead of a stall");
        assert!(c.get("w", "d2", 1, 1).is_some());
        release_tx.send(()).unwrap();
        let out = sweeper.join().unwrap();
        assert_eq!(out.retained, vec!["v".to_string()]);
    }

    /// A maintenance sweep holding one document's shard must not block
    /// reads of another document: doc B's hit proceeds while doc A's
    /// sweep sits inside `apply_delta`.
    #[test]
    fn maintenance_of_one_doc_does_not_gate_reads_of_another() {
        use std::sync::mpsc;
        let c = Arc::new(ViewResultCache::new(8));
        entry(&c, "v", "a", 1, &["zzz"]);
        entry(&c, "v", "b", 1, &["zzz"]);
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let sweeper = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                c.maintain(
                    "a",
                    1,
                    2,
                    &labels(&["q"]),
                    &LabelSet::new(),
                    &labels(&["q"]),
                    &[],
                    &HashMap::new(),
                    None,
                    &mut |_| {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap(); // hold a's shard lock
                        DeltaReplay::default()
                    },
                )
            })
        };
        entered_rx.recv().unwrap(); // sweep is inside a's shard mutex
        assert!(
            c.get("v", "b", 1, 1).is_some(),
            "doc b's read must not wait for doc a's sweep"
        );
        release_tx.send(()).unwrap();
        let out = sweeper.join().unwrap();
        assert_eq!(out.retained, vec!["v".to_string()]);
    }
}
