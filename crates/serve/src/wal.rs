//! Durable write-ahead log for the serving layer.
//!
//! Every applied write verb (`UPDATE`, `LOAD`, `REMOVE`) appends one
//! [`WalRecord`] to an append-only file *before* the reply is sent, so a
//! restarted server can rebuild exactly the document state (and, by
//! re-running maintenance, exactly the view state) it had when it died.
//!
//! ## On-disk format
//!
//! The log is a flat sequence of frames:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len B)  │
//! └────────────┴────────────┴──────────────────┘
//! ```
//!
//! `crc` is the IEEE CRC-32 of the payload. The payload starts with a
//! one-byte record tag, then a length-prefixed document name, then the
//! record body (see [`WalRecord::encode`]). There is no header or
//! footer: an empty file is a valid (empty) log, and replay stops
//! cleanly at the first torn or corrupt frame — a crash mid-append
//! loses at most the record being written, never an earlier one.
//!
//! ## Durability level
//!
//! [`Wal::append`] flushes the userspace buffer to the OS per record
//! (`BufWriter::flush`) but does not `fsync`: a crash of the *server
//! process* loses nothing, a crash of the *machine* may lose the last
//! few records. [`Wal::sync`] is available for callers that want the
//! stronger guarantee at a checkpoint.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// IEEE CRC-32 lookup table, generated at compile time (reflected
/// polynomial 0xEDB88320 — the same CRC as zip/png/ethernet).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (hand-rolled; the container has no crc crate).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One logged write. Replaying the sequence of records in order rebuilds
/// the server's document state deterministically (parse∘serialize is an
/// identity for the trees we store, so `Load`/`Update` replay is exact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A document loaded (or reloaded) from in-memory XML. The XML is
    /// the *serialized* form of what was installed, so the log is
    /// self-contained — the original source file may vanish.
    Load {
        /// Document name.
        doc: String,
        /// Serialized XML of the installed tree.
        xml: String,
    },
    /// A file-backed document registration. Replay re-registers the
    /// path; if the file changed since, the replayed state follows the
    /// file (documented limitation of file-backed docs).
    LoadFile {
        /// Document name.
        doc: String,
        /// Server-side path the document streams from.
        path: String,
    },
    /// A document removal.
    Remove {
        /// Document name.
        doc: String,
    },
    /// An applied `UPDATE` — the full transform text, replayed through
    /// the normal update path (including cache maintenance).
    Update {
        /// Document name.
        doc: String,
        /// The update transform text as received.
        text: String,
    },
}

const TAG_LOAD: u8 = 1;
const TAG_LOAD_FILE: u8 = 2;
const TAG_REMOVE: u8 = 3;
const TAG_UPDATE: u8 = 4;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let bytes = buf.get(*at..*at + len)?;
    *at += len;
    let s = std::str::from_utf8(bytes).ok()?.to_string();
    Some(s)
}

impl WalRecord {
    /// The document this record writes.
    pub fn doc(&self) -> &str {
        match self {
            WalRecord::Load { doc, .. }
            | WalRecord::LoadFile { doc, .. }
            | WalRecord::Remove { doc }
            | WalRecord::Update { doc, .. } => doc,
        }
    }

    /// Serializes the record payload: tag byte, then length-prefixed
    /// strings (doc name first).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Load { doc, xml } => {
                out.push(TAG_LOAD);
                put_str(&mut out, doc);
                put_str(&mut out, xml);
            }
            WalRecord::LoadFile { doc, path } => {
                out.push(TAG_LOAD_FILE);
                put_str(&mut out, doc);
                put_str(&mut out, path);
            }
            WalRecord::Remove { doc } => {
                out.push(TAG_REMOVE);
                put_str(&mut out, doc);
            }
            WalRecord::Update { doc, text } => {
                out.push(TAG_UPDATE);
                put_str(&mut out, doc);
                put_str(&mut out, text);
            }
        }
        out
    }

    /// Decodes one payload; `None` on any malformed byte (unknown tag,
    /// truncated string, invalid UTF-8, trailing garbage).
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let mut at = 0usize;
        let record = match tag {
            TAG_LOAD => WalRecord::Load {
                doc: take_str(rest, &mut at)?,
                xml: take_str(rest, &mut at)?,
            },
            TAG_LOAD_FILE => WalRecord::LoadFile {
                doc: take_str(rest, &mut at)?,
                path: take_str(rest, &mut at)?,
            },
            TAG_REMOVE => WalRecord::Remove {
                doc: take_str(rest, &mut at)?,
            },
            TAG_UPDATE => WalRecord::Update {
                doc: take_str(rest, &mut at)?,
                text: take_str(rest, &mut at)?,
            },
            _ => return None,
        };
        if at != rest.len() {
            return None;
        }
        Some(record)
    }
}

/// An open, append-only write-ahead log.
///
/// `append` is called with the owning store's shard write lock held (so
/// log order equals install order); the internal mutex only serializes
/// appends from *different* shards. Lock order is therefore always
/// shard lock → WAL mutex, never the reverse — `replay` is a free
/// function over a path and takes no locks at all.
pub struct Wal {
    path: PathBuf,
    // lock-order: Wal.file is the innermost lock in the serve crate; it
    // is taken under a DocStore shard write lock and never the reverse.
    file: Mutex<BufWriter<File>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            file: Mutex::new(BufWriter::new(file)),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS. On error the frame
    /// may be torn; replay tolerates that (the torn tail is dropped) and
    /// the caller must not install the write it was logging.
    pub fn append(&self, record: &WalRecord) -> io::Result<()> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut file = self.file.lock().expect("wal mutex poisoned");
        file.write_all(&frame)?;
        file.flush()
    }

    /// Forces everything appended so far to stable storage (`fsync`).
    pub fn sync(&self) -> io::Result<()> {
        let mut file = self.file.lock().expect("wal mutex poisoned");
        file.flush()?;
        file.get_ref().sync_data()
    }

    /// Reads every intact record from the log at `path`, in append
    /// order. A torn or corrupt tail frame (what a crash mid-append
    /// produces) sets [`WalReplay::truncated`]; the tail is dropped,
    /// everything before it is intact. A missing file is an empty log.
    pub fn replay(path: impl AsRef<Path>) -> io::Result<WalReplay> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(WalReplay {
                    records: Vec::new(),
                    truncated: false,
                    valid_len: 0,
                })
            }
            Err(e) => return Err(e),
        }
        let mut records = Vec::new();
        let mut at = 0usize;
        let truncated = loop {
            if at == bytes.len() {
                break false;
            }
            let Some(header) = bytes.get(at..at + 8) else {
                break true;
            };
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
                break true;
            };
            if crc32(payload) != crc {
                break true;
            }
            let Some(record) = WalRecord::decode(payload) else {
                break true;
            };
            records.push(record);
            at += 8 + len;
        };
        Ok(WalReplay {
            records,
            truncated,
            valid_len: at as u64,
        })
    }

    /// Drops a torn tail: truncates the file to `valid_len` bytes (the
    /// intact prefix [`Wal::replay`] found). Recovery must do this
    /// before reopening the log for appending — appends landing *after*
    /// leftover garbage would be unreachable to every later replay,
    /// which stops at the first bad frame.
    pub fn truncate_to(path: impl AsRef<Path>, valid_len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)
    }
}

/// What [`Wal::replay`] read from a log file.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether the file ended in a torn or corrupt frame.
    pub truncated: bool,
    /// Byte length of the intact prefix — where appending must resume
    /// after a torn tail (see [`Wal::truncate_to`]).
    pub valid_len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("xust_wal_{name}_{}.log", std::process::id()))
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Classic check values for IEEE CRC-32.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn records_roundtrip_through_the_file() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let records = vec![
            WalRecord::Load {
                doc: "db".into(),
                xml: "<db><part/></db>".into(),
            },
            WalRecord::Update {
                doc: "db".into(),
                text: r#"transform copy $a := doc("db") modify do delete $a//part return $a"#
                    .into(),
            },
            WalRecord::LoadFile {
                doc: "disk".into(),
                path: "/tmp/x.xml".into(),
            },
            WalRecord::Remove { doc: "db".into() },
        ];
        {
            let wal = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records, records);
        assert_eq!(
            replay.valid_len,
            std::fs::metadata(&path).unwrap().len(),
            "a clean log's intact prefix is the whole file"
        );
        // Reopening appends after the existing tail.
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Remove { doc: "disk".into() })
                .unwrap();
            wal.sync().unwrap();
        }
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records.len(), records.len() + 1);
        assert_eq!(replay.records.last().unwrap().doc(), "disk");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_stops_cleanly_at_a_torn_tail() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Remove { doc: "a".into() }).unwrap();
        wal.append(&WalRecord::Remove { doc: "b".into() }).unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the last frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records, vec![WalRecord::Remove { doc: "a".into() }]);
        // A lone torn header (fewer than 8 bytes) is also tolerated.
        std::fs::write(&path, [1u8, 2, 3]).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.truncated);
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_len, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncating_a_torn_tail_keeps_later_appends_reachable() {
        let path = temp_path("truncate");
        std::fs::remove_file(&path).ok();
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Remove { doc: "a".into() }).unwrap();
        wal.append(&WalRecord::Remove { doc: "b".into() }).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        // Recovery's sequence: replay, drop the torn tail, append on.
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.truncated);
        Wal::truncate_to(&path, replay.valid_len).unwrap();
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Remove { doc: "c".into() }).unwrap();
        drop(wal);
        // Without the truncation the "c" record would sit behind the
        // garbage and every later replay would stop short of it.
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.truncated);
        assert_eq!(
            replay.records,
            vec![
                WalRecord::Remove { doc: "a".into() },
                WalRecord::Remove { doc: "c".into() },
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_stops_at_a_corrupt_crc() {
        let path = temp_path("corrupt");
        std::fs::remove_file(&path).ok();
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Remove { doc: "a".into() }).unwrap();
        wal.append(&WalRecord::Remove { doc: "b".into() }).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the *second* frame.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records, vec![WalRecord::Remove { doc: "a".into() }]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(!replay.truncated);
        assert_eq!(replay.valid_len, 0);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(WalRecord::decode(&[]).is_none());
        assert!(WalRecord::decode(&[99]).is_none()); // unknown tag
        assert!(WalRecord::decode(&[TAG_REMOVE, 4, 0, 0, 0, b'a']).is_none()); // short str
        let mut ok = WalRecord::Remove { doc: "a".into() }.encode();
        ok.push(0); // trailing garbage
        assert!(WalRecord::decode(&ok).is_none());
        // Invalid UTF-8 in the name.
        assert!(WalRecord::decode(&[TAG_REMOVE, 1, 0, 0, 0, 0xFF]).is_none());
    }
}
