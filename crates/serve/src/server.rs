//! The concurrent transform-view server.
//!
//! [`Server`] owns four pieces and wires them together per request:
//!
//! 1. a document store — immutable [`Document`]s behind `Arc` (shared
//!    zero-copy across threads) or file paths served via the streaming
//!    SAX path without ever building a DOM;
//! 2. the [`ViewRegistry`] of named, pre-compiled transform views;
//! 3. two [`PreparedCache`]s — ad-hoc transforms keyed by query text,
//!    and composed user queries keyed by `(view, query)`;
//! 4. the [`AdaptivePlanner`] choosing an evaluation method per request
//!    from cost hints plus observed latency, and a [`ThreadPool`] for
//!    the batched/asynchronous entry points.
//!
//! `Server` is `Clone` (a cheap `Arc` handle) and every entry point
//! takes `&self`, so any number of client threads can call into one
//! server concurrently.

use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

use xust_compose::{compose, compose_two_pass_sax, ComposedQuery, UserQuery};
use xust_core::{multi_top_down, CompiledTransform, LdStorage, Method, SaxStats, TransformStream};
use xust_sax::{SaxEvent, SaxParser, SaxWriter};
use xust_secview::Policy;
use xust_tree::Document;

use crate::cache::PreparedCache;
use crate::error::ServeError;
use crate::executor::ThreadPool;
use crate::planner::{AdaptivePlanner, DocShape, PlannerConfig};
use crate::registry::{ViewBody, ViewDef, ViewRegistry};
use crate::stats::{ServeStats, StatsSnapshot};
use crate::store::{DocStore, StoreSnapshot};

/// Where a named document lives.
#[derive(Debug, Clone)]
pub enum DocSource {
    /// Parsed once, shared immutably across all threads.
    Memory(Arc<Document>),
    /// On disk; requests stream it with bounded memory.
    File(PathBuf),
}

/// How a request resolves document names: a single request reads the
/// store's *current* epoch directly (one shard lock for its one
/// lookup), while batch items share one pinned [`StoreSnapshot`] so
/// every item sees the same document world.
enum DocView<'a> {
    Live(&'a DocStore),
    Pinned(&'a StoreSnapshot),
}

impl DocView<'_> {
    fn get(&self, name: &str) -> Result<DocSource, ServeError> {
        match self {
            DocView::Live(store) => store.get(name),
            DocView::Pinned(snap) => snap.get(name).cloned(),
        }
        .ok_or_else(|| ServeError::UnknownDoc(name.to_string()))
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Materialize view `view` of document `doc`.
    View {
        /// Registered view name.
        view: String,
        /// Loaded document name.
        doc: String,
    },
    /// Answer a user XQuery against the *virtual* view (composed when
    /// possible — the view is never materialized on this path).
    Query {
        /// Registered view name.
        view: String,
        /// Loaded document name.
        doc: String,
        /// The user query text.
        query: String,
    },
    /// Evaluate an ad-hoc transform query against a document.
    Transform {
        /// Loaded document name.
        doc: String,
        /// Concrete transform syntax.
        query: String,
    },
}

/// A served result.
#[derive(Debug, Clone)]
pub struct Response {
    /// Serialized XML result.
    pub body: String,
    /// The evaluation method the planner chose (None for composed
    /// queries, which run on the XQuery engine).
    pub method: Option<Method>,
    /// Wall-clock service time in microseconds.
    pub micros: u64,
    /// True when every prepared artifact this request needed came from
    /// cache (no parse, no NFA construction).
    pub cache_hit: bool,
}

/// Configures and builds a [`Server`].
pub struct ServerBuilder {
    threads: usize,
    shards: usize,
    cache_capacity: usize,
    planner: PlannerConfig,
}

impl Default for ServerBuilder {
    fn default() -> ServerBuilder {
        ServerBuilder {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            shards: 8,
            cache_capacity: 256,
            planner: PlannerConfig::default(),
        }
    }
}

impl ServerBuilder {
    /// Worker threads for the batched/asynchronous entry points.
    pub fn threads(mut self, n: usize) -> ServerBuilder {
        self.threads = n;
        self
    }

    /// Document-store shards (see [`DocStore`]); default 8.
    pub fn shards(mut self, n: usize) -> ServerBuilder {
        self.shards = n;
        self
    }

    /// Capacity of each prepared cache.
    pub fn cache_capacity(mut self, n: usize) -> ServerBuilder {
        self.cache_capacity = n;
        self
    }

    /// Planner knobs.
    pub fn planner(mut self, config: PlannerConfig) -> ServerBuilder {
        self.planner = config;
        self
    }

    /// Builds the server.
    pub fn build(self) -> Server {
        Server {
            inner: Arc::new(Inner {
                docs: DocStore::new(self.shards),
                registry: ViewRegistry::new(),
                transforms: PreparedCache::new(self.cache_capacity),
                composed: PreparedCache::new(self.cache_capacity),
                planner: AdaptivePlanner::new(self.planner),
                stats: ServeStats::default(),
                pool: ThreadPool::new(self.threads),
            }),
        }
    }
}

struct Inner {
    docs: DocStore,
    registry: ViewRegistry,
    transforms: PreparedCache<CompiledTransform>,
    composed: PreparedCache<ComposedQuery>,
    planner: AdaptivePlanner,
    stats: ServeStats,
    pool: ThreadPool,
}

/// See the module docs.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// A server with default configuration.
    pub fn new() -> Server {
        ServerBuilder::default().build()
    }

    // ---- documents ----

    /// Loads (or replaces) an in-memory document. Copy-on-write into a
    /// fresh shard epoch: in-flight requests holding snapshots keep
    /// reading the old version.
    pub fn load_doc(&self, name: impl Into<String>, doc: Document) {
        self.inner
            .docs
            .insert(name, DocSource::Memory(Arc::new(doc)));
    }

    /// Parses and loads a document from XML text.
    pub fn load_doc_str(&self, name: impl Into<String>, xml: &str) -> Result<(), ServeError> {
        let doc = Document::parse(xml).map_err(|e| ServeError::Parse(e.to_string()))?;
        self.load_doc(name, doc);
        Ok(())
    }

    /// Registers a file-backed document, served via the streaming path.
    pub fn load_doc_file(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<(), ServeError> {
        let path = path.into();
        if !path.is_file() {
            return Err(ServeError::Io(format!("{}: not a file", path.display())));
        }
        self.inner.docs.insert(name, DocSource::File(path));
        Ok(())
    }

    /// Unloads a document; true if it existed. Snapshots taken before
    /// the removal keep serving it until they drop.
    pub fn remove_doc(&self, name: &str) -> bool {
        self.inner.docs.remove(name)
    }

    /// Loaded document names, sorted.
    pub fn doc_names(&self) -> Vec<String> {
        self.inner.docs.snapshot().names()
    }

    /// The backing path of a file-backed document, if `name` is one —
    /// what a protocol front end needs to drive a streaming session
    /// from disk.
    pub fn doc_path(&self, name: &str) -> Option<PathBuf> {
        match self.inner.docs.get(name) {
            Some(DocSource::File(path)) => Some(path),
            _ => None,
        }
    }

    /// The sharded document store (snapshot counters, epochs, shard
    /// layout) — exposed for observability and tests.
    pub fn store(&self) -> &DocStore {
        &self.inner.docs
    }

    // (document resolution for requests goes through [`DocView`])

    // ---- views ----

    /// Registers a single-transform view.
    pub fn register_view(&self, name: &str, query: &str) -> Result<(), ServeError> {
        self.inner.registry.register(name, query).map(|_| ())
    }

    /// Registers a chain view (what-if scenario stacking).
    pub fn register_view_chain(&self, name: &str, queries: &[&str]) -> Result<(), ServeError> {
        self.inner
            .registry
            .register_chain(name, queries)
            .map(|_| ())
    }

    /// Registers a security policy as a view named after its group.
    pub fn register_policy(&self, policy: &Policy) -> Result<(), ServeError> {
        self.inner.registry.register_policy(policy).map(|_| ())
    }

    /// Registered view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.inner.registry.names()
    }

    // ---- serving ----

    /// Handles one request synchronously. Safe to call from any number
    /// of threads at once. A single request resolves its one document
    /// against the store's current epoch directly (one shard lock —
    /// no cross-shard snapshot on the hot path); consistency across
    /// *several* lookups is what [`Server::execute_batch`] and
    /// streaming sessions use snapshots for.
    pub fn handle(&self, request: &Request) -> Result<Response, ServeError> {
        self.handle_in(request, &DocView::Live(&self.inner.docs))
    }

    /// Handles one request against an explicit document view — the unit
    /// of work the batch executor fans out (one pinned snapshot per
    /// batch, so all items see the same document world).
    fn handle_in(&self, request: &Request, view: &DocView<'_>) -> Result<Response, ServeError> {
        let started = Instant::now();
        self.inner
            .stats
            .requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let result = match request {
            Request::View { view: v, doc } => self.handle_view(view, v, doc),
            Request::Query {
                view: v,
                doc,
                query,
            } => self.handle_query(view, v, doc, query),
            Request::Transform { doc, query } => self.handle_transform(view, doc, query),
        };
        let micros = started.elapsed().as_micros() as u64;
        self.inner
            .stats
            .busy_micros
            .fetch_add(micros, std::sync::atomic::Ordering::Relaxed);
        match result {
            Ok(mut resp) => {
                if let Request::View { view, .. } | Request::Query { view, .. } = request {
                    // Per-view latency feedback, merged lock-free (CAS)
                    // when several executor workers report for the same
                    // view at once.
                    self.inner.stats.record_view_latency(view, micros as f64);
                }
                resp.micros = micros;
                Ok(resp)
            }
            Err(e) => {
                self.inner
                    .stats
                    .failures
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Enqueues one request on the worker pool; the receiver yields the
    /// result when it completes.
    pub fn submit(&self, request: Request) -> Receiver<Result<Response, ServeError>> {
        let server = self.clone();
        self.inner.pool.submit(move || server.handle(&request))
    }

    /// The batched multi-document entry point: takes **one** store
    /// snapshot (every item sees the same consistent document world) and
    /// fans the batch across the resident worker pool with work-stealing
    /// ([`ThreadPool::run_batch`]), so one slow request never serializes
    /// the rest while total concurrency stays bounded by the pool size
    /// even under many simultaneous batch callers. Results come back in
    /// request order; per-item method/latency observations are merged
    /// into the planner's EWMA feedback and the per-view latency cells
    /// as each item completes.
    pub fn execute_batch(&self, requests: Vec<Request>) -> Vec<Result<Response, ServeError>> {
        use std::sync::atomic::Ordering::Relaxed;
        self.inner.stats.batches.fetch_add(1, Relaxed);
        self.inner
            .stats
            .batch_items
            .fetch_add(requests.len() as u64, Relaxed);
        let snap = Arc::new(self.inner.docs.snapshot());
        let server = self.clone();
        let (results, steal) = self.inner.pool.run_batch(requests, move |_, req| {
            server.handle_in(&req, &DocView::Pinned(&snap))
        });
        self.inner
            .stats
            .batch_steals
            .fetch_add(steal.steals, Relaxed);
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(ServeError::Eval("worker panicked".into()))))
            .collect()
    }

    // ---- introspection ----

    /// Current counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Planner model state: `(method, size_class, ns_per_node, samples)`.
    pub fn planner_snapshot(&self) -> Vec<(Method, usize, f64, u64)> {
        self.inner.planner.snapshot()
    }

    /// Compilations performed registering views (once per link, ever).
    pub fn registration_compiles(&self) -> u64 {
        self.inner.registry.compiles()
    }

    // ---- request handlers ----

    fn handle_transform(
        &self,
        view: &DocView<'_>,
        doc: &str,
        query: &str,
    ) -> Result<Response, ServeError> {
        self.inner
            .stats
            .transform_requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let source = view.get(doc)?;
        let stats = &self.inner.stats;
        let (ct, hit) = self.inner.transforms.get_or_try_insert(query, || {
            stats
                .compiles
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CompiledTransform::parse(query).map_err(|e| ServeError::Parse(e.to_string()))
        })?;
        self.note_cache(hit);
        match source {
            DocSource::Memory(d) => {
                let shape = DocShape::InMemory {
                    nodes: d.arena_len(),
                };
                let method = self.inner.planner.choose(ct.cost(), shape);
                let t = Instant::now();
                let out = ct
                    .evaluate(&d, method)
                    .map_err(|e| ServeError::Eval(e.to_string()))?;
                self.inner.planner.record(method, shape, t.elapsed());
                stats.count_method(method);
                Ok(Response {
                    body: out.serialize(),
                    method: Some(method),
                    micros: 0,
                    cache_hit: hit,
                })
            }
            DocSource::File(path) => {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let shape = DocShape::File { bytes };
                let t = Instant::now();
                // Streams the file (two buffered passes); only the
                // serialized result is buffered for the response body.
                let body = ct
                    .evaluate_stream_file(&path)
                    .map_err(|e| ServeError::Eval(e.to_string()))?;
                self.inner
                    .planner
                    .record(Method::TwoPassSax, shape, t.elapsed());
                stats.count_method(Method::TwoPassSax);
                Ok(Response {
                    body,
                    method: Some(Method::TwoPassSax),
                    micros: 0,
                    cache_hit: hit,
                })
            }
        }
    }

    fn handle_view(
        &self,
        docs: &DocView<'_>,
        view: &str,
        doc: &str,
    ) -> Result<Response, ServeError> {
        self.inner
            .stats
            .view_requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let def = self
            .inner
            .registry
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_string()))?;
        let source = docs.get(doc)?;

        // File-backed, single-link chains stream end to end: the input
        // is never held in memory, only the response body.
        if let (DocSource::File(path), Some(link)) = (&source, def.single()) {
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let t = Instant::now();
            let body = link
                .evaluate_stream_file(path)
                .map_err(|e| ServeError::Eval(e.to_string()))?;
            self.inner
                .planner
                .record(Method::TwoPassSax, DocShape::File { bytes }, t.elapsed());
            self.inner.stats.count_method(Method::TwoPassSax);
            return Ok(Response {
                body,
                method: Some(Method::TwoPassSax),
                micros: 0,
                cache_hit: true, // compiled at registration; nothing built here
            });
        }

        let base = self.base_document(&source)?;
        let (out, method) = self.materialize(&def, &base)?;
        Ok(Response {
            body: out.serialize(),
            method,
            micros: 0,
            cache_hit: true, // views are pre-compiled at registration
        })
    }

    fn handle_query(
        &self,
        docs: &DocView<'_>,
        view: &str,
        doc: &str,
        query: &str,
    ) -> Result<Response, ServeError> {
        self.inner
            .stats
            .query_requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let def = self
            .inner
            .registry
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_string()))?;
        let source = docs.get(doc)?;

        if let Some(link) = def.single() {
            // File-backed: streaming composition over the unparsed
            // file. The composed-query cache is DOM-only, so this path
            // parses the user query per request and bypasses the cache
            // entirely (no phantom cache entries or composition counts).
            if let DocSource::File(path) = &source {
                let uq = UserQuery::parse(query).map_err(|e| ServeError::Parse(e.to_string()))?;
                if uq.doc_name != def.doc_name {
                    return Err(ServeError::Parse(format!(
                        "query reads doc(\"{}\") but view '{}' serves doc(\"{}\")",
                        uq.doc_name, def.name, def.doc_name
                    )));
                }
                let open = || SaxParser::from_file(path).map_err(|e| ServeError::Io(e.to_string()));
                let mut out = Vec::new();
                compose_two_pass_sax(open()?, open()?, open()?, link.query(), &uq, &mut out)
                    .map_err(|e| ServeError::Eval(e.to_string()))?;
                return Ok(Response {
                    body: String::from_utf8(out).map_err(|e| ServeError::Eval(e.to_string()))?,
                    method: None,
                    micros: 0,
                    cache_hit: false,
                });
            }

            // In-memory: the Compose Method — rewrite the user query
            // against the virtual view, cached per (view, query) so
            // repeats skip parsing and composition entirely.
            let key = format!("{view}\u{1f}{query}");
            let stats = &self.inner.stats;
            let def_doc = &def.doc_name;
            let (qc, hit) = self.inner.composed.get_or_try_insert(&key, || {
                let uq = UserQuery::parse(query).map_err(|e| ServeError::Parse(e.to_string()))?;
                if uq.doc_name != *def_doc {
                    return Err(ServeError::Parse(format!(
                        "query reads doc(\"{}\") but view '{}' serves doc(\"{}\")",
                        uq.doc_name, def.name, def_doc
                    )));
                }
                stats
                    .compositions
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                compose(link.query(), &uq).map_err(|e| ServeError::Parse(e.to_string()))
            })?;
            self.note_cache(hit);
            let body = match &source {
                DocSource::Memory(d) => qc
                    .execute_to_string(d)
                    .map_err(|e| ServeError::Eval(e.to_string()))?,
                DocSource::File(_) => unreachable!("file sources handled above"),
            };
            return Ok(Response {
                body,
                method: None,
                micros: 0,
                cache_hit: hit,
            });
        }

        // Multi-link chains / snapshot policies: materialize the view,
        // then run the user query on the XQuery engine.
        let uq = UserQuery::parse(query).map_err(|e| ServeError::Parse(e.to_string()))?;
        if uq.doc_name != def.doc_name {
            return Err(ServeError::Parse(format!(
                "query reads doc(\"{}\") but view '{}' serves doc(\"{}\")",
                uq.doc_name, def.name, def.doc_name
            )));
        }
        let base = self.base_document(&source)?;
        let (viewed, method) = self.materialize(&def, &base)?;
        let mut engine = xust_xquery::Engine::new();
        engine.load_doc(def.doc_name.clone(), viewed);
        let v = engine
            .eval_expr(&uq.to_expr(), &[])
            .map_err(|e| ServeError::Eval(e.to_string()))?;
        Ok(Response {
            body: engine.serialize_value(&v),
            method,
            micros: 0,
            cache_hit: true,
        })
    }

    // ---- helpers ----

    fn note_cache(&self, hit: bool) {
        use std::sync::atomic::Ordering::Relaxed;
        if hit {
            self.inner.stats.cache_hits.fetch_add(1, Relaxed);
        } else {
            self.inner.stats.cache_misses.fetch_add(1, Relaxed);
        }
    }

    fn base_document(&self, source: &DocSource) -> Result<Arc<Document>, ServeError> {
        match source {
            DocSource::Memory(d) => Ok(Arc::clone(d)),
            DocSource::File(path) => {
                let doc =
                    Document::parse_file(path).map_err(|e| ServeError::Parse(e.to_string()))?;
                Ok(Arc::new(doc))
            }
        }
    }

    /// Applies a view body to a base document with planner-chosen
    /// methods; returns the result and the (last) method used.
    fn materialize(
        &self,
        def: &ViewDef,
        base: &Arc<Document>,
    ) -> Result<(Document, Option<Method>), ServeError> {
        match &def.body {
            ViewBody::Chain(links) => {
                let mut current: Option<Document> = None;
                let mut last_method = None;
                for link in links {
                    let doc_ref: &Document = match &current {
                        Some(d) => d,
                        None => base,
                    };
                    let shape = DocShape::InMemory {
                        nodes: doc_ref.arena_len(),
                    };
                    let method = self.inner.planner.choose(link.cost(), shape);
                    let t = Instant::now();
                    let next = link
                        .evaluate(doc_ref, method)
                        .map_err(|e| ServeError::Eval(e.to_string()))?;
                    self.inner.planner.record(method, shape, t.elapsed());
                    self.inner.stats.count_method(method);
                    last_method = Some(method);
                    current = Some(next);
                }
                Ok((current.expect("registry rejects empty chains"), last_method))
            }
            ViewBody::Multi(mq) => {
                // Fused multi-automaton plan (snapshot semantics).
                let t = Instant::now();
                let out = multi_top_down(base, mq);
                self.inner.planner.record(
                    Method::TopDown,
                    DocShape::InMemory {
                        nodes: base.arena_len(),
                    },
                    t.elapsed(),
                );
                self.inner.stats.count_method(Method::TopDown);
                Ok((out, Some(Method::TopDown)))
            }
        }
    }
}

impl Default for Server {
    fn default() -> Server {
        Server::new()
    }
}

// ---- streaming sessions ----

impl Server {
    /// Opens a [`StreamingSession`]: the client streams a document as
    /// SAX events — twice, mirroring the two-pass discipline — and
    /// receives the transformed output incrementally. The input tree is
    /// **never materialized**; session memory is O(depth · |p|) + |Ld|
    /// regardless of document size.
    ///
    /// The transform is resolved through the prepared cache (repeat
    /// sessions skip parse + NFA construction), and the session pins a
    /// store snapshot for its lifetime so the server's epoch bookkeeping
    /// can prove abandoned sessions release their resources.
    pub fn begin_stream(&self, query: &str) -> Result<StreamingSession, ServeError> {
        use std::sync::atomic::Ordering::Relaxed;
        self.inner.stats.requests.fetch_add(1, Relaxed);
        self.inner.stats.stream_sessions.fetch_add(1, Relaxed);
        let stats = &self.inner.stats;
        let compiled = self.inner.transforms.get_or_try_insert(query, || {
            stats.compiles.fetch_add(1, Relaxed);
            CompiledTransform::parse(query).map_err(|e| ServeError::Parse(e.to_string()))
        });
        let (ct, hit) = match compiled {
            Ok(v) => v,
            Err(e) => {
                stats.failures.fetch_add(1, Relaxed);
                return Err(e);
            }
        };
        self.note_cache(hit);
        let stream = ct.stream(LdStorage::Memory);
        Ok(StreamingSession {
            server: self.clone(),
            stream,
            writer: SaxWriter::new(Vec::new()),
            started: Instant::now(),
            cache_hit: hit,
            _snapshot: self.inner.docs.snapshot(),
        })
    }
}

/// One client's streaming transform session (see
/// [`Server::begin_stream`]). Protocol:
///
/// 1. [`feed`](StreamingSession::feed) every event of the document
///    (pass 1 — qualifier evaluation);
/// 2. [`begin_replay`](StreamingSession::begin_replay) once;
/// 3. [`replay`](StreamingSession::replay) the same events again; each
///    call returns the transformed output bytes produced *so far* —
///    ship them to the client immediately (backpressure lives in the
///    caller's writer);
/// 4. [`finish`](StreamingSession::finish) to flush the tail and
///    collect statistics.
///
/// Dropping a session at any point — client disconnect, malformed
/// input, truncation — releases its store snapshot and leaves the
/// server untouched; the error paths are exercised by
/// `tests/failure_injection.rs`.
pub struct StreamingSession {
    server: Server,
    stream: TransformStream,
    writer: SaxWriter<Vec<u8>>,
    started: Instant,
    cache_hit: bool,
    /// Pins the store epoch for the session's lifetime; released on drop.
    _snapshot: StoreSnapshot,
}

/// Adapter: a [`xust_core::EventSink`] writing into the session's
/// drainable buffer.
struct SessionSink<'a> {
    w: &'a mut SaxWriter<Vec<u8>>,
}

impl xust_core::EventSink for SessionSink<'_> {
    fn event(&mut self, ev: SaxEvent) -> Result<(), xust_core::SaxTransformError> {
        self.w
            .write_event(&ev)
            .map_err(xust_core::SaxTransformError::Sax)
    }
}

impl StreamingSession {
    /// True when the transform came from the prepared cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Feeds one pass-1 event.
    pub fn feed(&mut self, ev: SaxEvent) -> Result<(), ServeError> {
        self.stream
            .feed(ev)
            .map_err(|e| ServeError::Eval(e.to_string()))
    }

    /// Seals pass 1 and arms the replay. Errors on truncated input.
    pub fn begin_replay(&mut self) -> Result<(), ServeError> {
        self.stream
            .begin_replay()
            .map_err(|e| ServeError::Eval(e.to_string()))
    }

    /// Feeds one pass-2 event and drains whatever transformed output it
    /// produced (possibly empty — e.g. inside a deleted subtree).
    pub fn replay(&mut self, ev: SaxEvent) -> Result<Vec<u8>, ServeError> {
        let mut sink = SessionSink {
            w: &mut self.writer,
        };
        self.stream
            .replay(ev, &mut sink)
            .map_err(|e| ServeError::Eval(e.to_string()))?;
        Ok(std::mem::take(self.writer.get_mut()))
    }

    /// Transformed output bytes emitted so far.
    pub fn bytes_emitted(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Wall-clock time since the session was opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Ends the session: validates the output is balanced, counts the
    /// execution, and returns `(tail output, streaming statistics)`.
    ///
    /// The session's wall-clock is *client-paced* (the caller feeds
    /// events at whatever rate the network delivers them), so it is
    /// deliberately NOT fed into the adaptive planner's latency model —
    /// one slow client must not make `TwoPassSax` look slow to the
    /// planner for everyone else.
    pub fn finish(mut self) -> Result<(Vec<u8>, SaxStats), ServeError> {
        let mut sink = SessionSink {
            w: &mut self.writer,
        };
        let stats = self
            .stream
            .finish(&mut sink)
            .map_err(|e| ServeError::Eval(e.to_string()))?;
        let tail = std::mem::take(self.writer.get_mut());
        // An unbalanced *output* (truncated pass 2) is caught by
        // TransformStream::finish above; the writer depth double-checks.
        debug_assert_eq!(self.writer.depth(), 0);
        self.server.inner.stats.count_method(Method::TwoPassSax);
        Ok((tail, stats))
    }
}
