//! The concurrent transform-view server.
//!
//! [`Server`] owns five pieces and wires them together per request:
//!
//! 1. a document store — immutable [`Document`]s behind `Arc` (shared
//!    zero-copy across threads) or file paths served via the streaming
//!    SAX path without ever building a DOM;
//! 2. the [`ViewRegistry`] of named, pre-compiled transform views;
//! 3. two [`PreparedCache`]s — ad-hoc transforms keyed by query text,
//!    and composed user queries keyed by `(view, query)`;
//! 4. the [`ViewResultCache`] of materialized view results, consulted
//!    by view reads and *maintained* (not just invalidated) by the live
//!    write path [`Server::update_doc`];
//! 5. the [`AdaptivePlanner`] choosing an evaluation method per request
//!    from cost hints plus observed latency, and a [`ThreadPool`] for
//!    the batched/asynchronous entry points.
//!
//! `Server` is `Clone` (a cheap `Arc` handle) and every entry point
//! takes `&self`, so any number of client threads can call into one
//! server concurrently — including writers: updates serialize per
//! shard, readers keep their epoch.

use std::collections::HashMap;
use std::path::{Path as FsPath, PathBuf};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use xust_analyze::{classify_update, statically_commutes};

use xust_compose::{compose, compose_two_pass_sax, ComposedQuery, UserQuery};
use xust_core::delta::{RenameMapping, TouchedLabels};
use xust_core::{
    apply_update, intern, multi_top_down, multi_view_with_stats, parse_multi_transform,
    qualifier_anchor_alphabet_into, site_chain, touched_labels_into, update_alphabet,
    value_alphabet_into, CompiledTransform, FragmentTree, LabelSet, LdStorage, Method, SaxStats,
    Sym, TransformQuery, TransformStream, UpdateOp,
};
use xust_sax::{SaxEvent, SaxParser, SaxWriter};
use xust_secview::Policy;
use xust_tree::{Document, NodeId, NodeKind};
use xust_xpath::{eval_path_root, Path};

use crate::cache::PreparedCache;
use crate::error::ServeError;
use crate::executor::ThreadPool;
use crate::obs::{HistogramSnapshot, Obs, Phase, Trace};
use crate::planner::{AdaptivePlanner, DocShape, PlanChoice, PlannerConfig};
use crate::registry::{ViewBody, ViewDef, ViewRegistry};
use crate::stats::{ServeStats, StatsSnapshot, Verb};
use crate::store::{DocStore, StoreSnapshot, StoreUpdateError, WriteStamp};
use crate::viewcache::{DeltaReplay, PatchCtx, PatchView, ViewResultCache};
use crate::wal::{Wal, WalRecord};

/// Where a named document lives.
#[derive(Debug, Clone)]
pub enum DocSource {
    /// Parsed once, shared immutably across all threads.
    Memory(Arc<Document>),
    /// On disk; requests stream it with bounded memory.
    File(PathBuf),
}

/// How a request resolves document names: a single request reads the
/// store's *current* epoch directly (one shard lock for its one
/// lookup), while batch items share one pinned [`StoreSnapshot`] so
/// every item sees the same document world.
enum DocView<'a> {
    Live(&'a DocStore),
    Pinned(&'a StoreSnapshot),
}

impl DocView<'_> {
    fn get(&self, name: &str) -> Result<DocSource, ServeError> {
        match self {
            DocView::Live(store) => store.get(name),
            DocView::Pinned(snap) => snap.get(name).cloned(),
        }
        .ok_or_else(|| ServeError::UnknownDoc(name.to_string()))
    }

    /// Resolves `name` together with the version of its content — read
    /// atomically (one shard read lock on the Live path; lock-free on a
    /// snapshot), so the returned source provably *is* the returned
    /// version. Pair with [`DocView::still_at`] before caching a result
    /// computed from the source.
    fn get_versioned(&self, name: &str) -> Result<(DocSource, u64), ServeError> {
        match self {
            DocView::Live(store) => store.get_versioned(name).map(|d| (d.source, d.version)),
            DocView::Pinned(snap) => snap
                .get_versioned(name)
                .map(|d| (d.source.clone(), d.version)),
        }
        .ok_or_else(|| ServeError::UnknownDoc(name.to_string()))
    }

    /// True when a result computed from the source
    /// [`DocView::get_versioned`] returned at `version` still describes
    /// the document's current content — the guard that keeps a racing
    /// write from smuggling post-write content into the result cache
    /// under the pre-write tag (which a batch pinned to the old version
    /// would then wrongly hit). On the Live path time has passed since
    /// the versioned read, so the version must be re-checked; a snapshot
    /// is immutable, so its reads are always self-consistent (the
    /// result-cache insert guard keeps its possibly-old entry from ever
    /// downgrading a newer resident one).
    fn still_at(&self, name: &str, version: u64) -> bool {
        match self {
            DocView::Live(store) => store.version_of(name) == Some(version),
            DocView::Pinned(_) => true,
        }
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Materialize view `view` of document `doc`.
    View {
        /// Registered view name.
        view: String,
        /// Loaded document name.
        doc: String,
    },
    /// Answer a user XQuery against the *virtual* view (composed when
    /// possible — the view is never materialized on this path).
    Query {
        /// Registered view name.
        view: String,
        /// Loaded document name.
        doc: String,
        /// The user query text.
        query: String,
    },
    /// Evaluate an ad-hoc transform query against a document.
    Transform {
        /// Loaded document name.
        doc: String,
        /// Concrete transform syntax.
        query: String,
    },
    /// Apply an update **to the stored document** — the live write path.
    /// The update is written in the same transform syntax (single or
    /// multi `modify do (…)`) and must read `doc("<doc>")`; it is applied
    /// copy-on-write into a fresh shard epoch, with delta-aware
    /// maintenance of cached view results. Always writes to the live
    /// store, even inside a batch running over a pinned snapshot.
    Update {
        /// Loaded document name (in-memory documents only).
        doc: String,
        /// Transform syntax whose embedded update(s) to apply.
        update: String,
    },
}

/// A served result.
#[derive(Debug, Clone)]
pub struct Response {
    /// Serialized XML result.
    pub body: String,
    /// The evaluation method the planner chose (None for composed
    /// queries, which run on the XQuery engine).
    pub method: Option<Method>,
    /// Wall-clock service time in microseconds.
    pub micros: u64,
    /// True when every prepared artifact this request needed came from
    /// cache (no parse, no NFA construction).
    pub cache_hit: bool,
}

/// What [`Server::attach_wal`] recovered before attaching the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecovery {
    /// Intact records replayed onto the server, in log order.
    pub applied: usize,
    /// True when the log ended in a torn or corrupt frame (dropped; a
    /// crash mid-append produces exactly this).
    pub truncated: bool,
}

/// Configures and builds a [`Server`].
pub struct ServerBuilder {
    threads: usize,
    shards: usize,
    cache_capacity: usize,
    result_capacity: usize,
    planner: PlannerConfig,
    tracing: bool,
    patching: bool,
}

impl Default for ServerBuilder {
    fn default() -> ServerBuilder {
        ServerBuilder {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            shards: 8,
            cache_capacity: 256,
            result_capacity: 64,
            planner: PlannerConfig::default(),
            tracing: true,
            patching: true,
        }
    }
}

impl ServerBuilder {
    /// Worker threads for the batched/asynchronous entry points.
    pub fn threads(mut self, n: usize) -> ServerBuilder {
        self.threads = n;
        self
    }

    /// Document-store shards (see [`DocStore`]); default 8.
    pub fn shards(mut self, n: usize) -> ServerBuilder {
        self.shards = n;
        self
    }

    /// Capacity of each prepared cache.
    pub fn cache_capacity(mut self, n: usize) -> ServerBuilder {
        self.cache_capacity = n;
        self
    }

    /// Capacity of the materialized view-result cache (0 disables it);
    /// default 64. Entries survive writes when the delta relevance test
    /// proves them unaffected (see [`ViewResultCache`]).
    pub fn result_cache_capacity(mut self, n: usize) -> ServerBuilder {
        self.result_capacity = n;
        self
    }

    /// Planner knobs.
    pub fn planner(mut self, config: PlannerConfig) -> ServerBuilder {
        self.planner = config;
        self
    }

    /// Per-request tracing and latency histograms (default on). Off,
    /// every recording path degenerates to a branch on a dead option —
    /// the `--no-trace` mode the `obs_overhead` bench row compares
    /// against. Counters in [`ServeStats`] always run.
    pub fn tracing(mut self, on: bool) -> ServerBuilder {
        self.tracing = on;
        self
    }

    /// Provenance-annotated in-place result patching (default on).
    /// Off, cached view results carry no fragment trees and writes fall
    /// back to retain-or-recompute — the mode the `ivm_patch` bench row
    /// compares against.
    pub fn patching(mut self, on: bool) -> ServerBuilder {
        self.patching = on;
        self
    }

    /// Builds the server.
    pub fn build(self) -> Server {
        Server {
            inner: Arc::new(Inner {
                docs: DocStore::new(self.shards),
                registry: ViewRegistry::new(),
                transforms: PreparedCache::new(self.cache_capacity),
                composed: PreparedCache::new(self.cache_capacity),
                results: ViewResultCache::new(self.result_capacity),
                planner: AdaptivePlanner::new(self.planner),
                stats: ServeStats::default(),
                obs: Obs::new(self.tracing),
                pool: ThreadPool::new(self.threads),
                commute: Mutex::new(CommuteState::default()),
                wal: RwLock::new(None),
                patching: self.patching,
            }),
        }
    }
}

struct Inner {
    docs: DocStore,
    registry: ViewRegistry,
    transforms: PreparedCache<CompiledTransform>,
    composed: PreparedCache<ComposedQuery>,
    results: ViewResultCache,
    planner: AdaptivePlanner,
    stats: ServeStats,
    obs: Obs,
    pool: ThreadPool,
    /// Memoized static commutation tables, one per update shape (query
    /// text): `cache_key → cache_generation` for every view the
    /// registration-time analysis proved the shape commutes with. Keyed
    /// additionally by `(doc, registry watermark)` — any registration
    /// invalidates every table (cheap: they rebuild in one pass over
    /// the registry on the next write of each shape).
    commute: Mutex<CommuteState>,
    /// The attached write-ahead log, if any ([`Server::attach_wal`]).
    /// Every applied write appends its record *inside* the owning
    /// shard's write lock, so log order equals install order.
    // lock-order: this RwLock is only ever taken alone (clone the Arc
    // out, then release); the Wal's internal mutex nests inside a
    // DocStore shard write lock, never the reverse.
    wal: RwLock<Option<Arc<Wal>>>,
    /// Whether cached view results carry provenance fragment trees and
    /// single-rule writes may patch them in place (see
    /// [`ServerBuilder::patching`]).
    patching: bool,
}

#[derive(Default)]
struct CommuteState {
    /// Registry watermark the cached tables were built against.
    watermark: u64,
    /// `(doc, update text) → static-clear table`.
    tables: HashMap<(String, String), Arc<HashMap<String, u64>>>,
}

/// Memoized tables kept per server before the map is cleared wholesale
/// — a bound on memory under update-text churn, far above any sane
/// number of distinct prepared shapes.
const COMMUTE_TABLE_CAP: usize = 512;

/// See the module docs.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// A server with default configuration.
    pub fn new() -> Server {
        ServerBuilder::default().build()
    }

    // ---- documents ----

    /// Loads (or replaces) an in-memory document. Copy-on-write into a
    /// fresh shard epoch: in-flight requests holding snapshots keep
    /// reading the old version. A reload is an unbounded delta, so
    /// exactly this document's view-result cache shard is dropped —
    /// entries of every other document are untouched (contrast
    /// [`Server::update_doc`], which maintains them). A reload also
    /// bumps the document's version, so an entry for the dead lineage
    /// that slips in late can never be served. Returns the install's
    /// [`WriteStamp`] — the version reported there is exactly the one
    /// this content was installed at (re-reading it later races other
    /// writers).
    pub fn load_doc(&self, name: impl Into<String>, doc: Document) -> WriteStamp {
        self.try_load_doc(name, doc)
            .expect("WAL append failed — use try_load_doc to handle it")
    }

    /// [`Server::load_doc`], surfacing write-ahead-log append failures:
    /// with a WAL attached, the `Load` record is appended (under the
    /// owning shard's write lock) before the document is installed, and
    /// on append failure nothing is installed at all.
    pub fn try_load_doc(
        &self,
        name: impl Into<String>,
        doc: Document,
    ) -> Result<WriteStamp, ServeError> {
        let name = name.into();
        let doc = Arc::new(doc);
        let hist_src = Arc::clone(&doc);
        let wal = self.wal_handle();
        // Serialize for the log *outside* the shard lock; the log keeps
        // the installed bytes, so replay needs no source file.
        let record = wal.as_ref().map(|_| WalRecord::Load {
            doc: name.clone(),
            xml: doc.serialize(),
        });
        let installed = self.inner.docs.insert_with(
            name.clone(),
            DocSource::Memory(doc),
            // lock-order: shard write lock → Wal mutex.
            |_| match (&wal, &record) {
                (Some(w), Some(r)) => w
                    .append(r)
                    .map_err(|e| ServeError::Io(format!("wal append: {e}"))),
                _ => Ok(()),
            },
        );
        let stamp = match installed {
            Ok(stamp) => stamp,
            Err(e) => {
                self.inner.stats.record_verb(Verb::Load, false);
                return Err(e);
            }
        };
        self.inner.results.purge_doc(&name);
        // Seed the per-doc label histogram from the installed content;
        // the write path shifts it incrementally from here on.
        self.inner
            .stats
            .seed_doc_labels(&name, doc_label_histogram(&hist_src));
        self.inner.stats.record_verb(Verb::Load, true);
        Ok(stamp)
    }

    /// Parses and loads a document from XML text.
    pub fn load_doc_str(
        &self,
        name: impl Into<String>,
        xml: &str,
    ) -> Result<WriteStamp, ServeError> {
        let doc = match Document::parse(xml) {
            Ok(doc) => doc,
            Err(e) => {
                self.inner.stats.record_verb(Verb::Load, false);
                return Err(ServeError::Parse(e.to_string()));
            }
        };
        self.try_load_doc(name, doc)
    }

    /// Registers a file-backed document, served via the streaming path.
    /// The WAL logs the *path* (not the bytes): replay re-registers it,
    /// so a file that changed between crash and restart is served with
    /// its new content — the documented limitation of file-backed docs.
    pub fn load_doc_file(
        &self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> Result<WriteStamp, ServeError> {
        let path = path.into();
        if !path.is_file() {
            self.inner.stats.record_verb(Verb::Load, false);
            return Err(ServeError::Io(format!("{}: not a file", path.display())));
        }
        let name = name.into();
        let wal = self.wal_handle();
        let record = wal.as_ref().map(|_| WalRecord::LoadFile {
            doc: name.clone(),
            path: path.display().to_string(),
        });
        let installed = self.inner.docs.insert_with(
            name.clone(),
            DocSource::File(path),
            // lock-order: shard write lock → Wal mutex.
            |_| match (&wal, &record) {
                (Some(w), Some(r)) => w
                    .append(r)
                    .map_err(|e| ServeError::Io(format!("wal append: {e}"))),
                _ => Ok(()),
            },
        );
        let stamp = match installed {
            Ok(stamp) => stamp,
            Err(e) => {
                self.inner.stats.record_verb(Verb::Load, false);
                return Err(e);
            }
        };
        self.inner.results.purge_doc(&name);
        self.inner.stats.record_verb(Verb::Load, true);
        Ok(stamp)
    }

    /// Unloads a document; true if it existed. Snapshots taken before
    /// the removal keep serving it until they drop. The document's
    /// view-result cache shard is dropped with it, and its version is
    /// retired — a re-created document under the same name draws a
    /// strictly larger version, so entries for the dead lineage can
    /// never hit again.
    pub fn remove_doc(&self, name: &str) -> bool {
        self.try_remove_doc(name)
            .expect("WAL append failed — use try_remove_doc to handle it")
    }

    /// [`Server::remove_doc`], surfacing write-ahead-log append
    /// failures: with a WAL attached, the `Remove` record is appended
    /// (under the owning shard's write lock) before the removal is
    /// installed, and on append failure the document stays.
    pub fn try_remove_doc(&self, name: &str) -> Result<bool, ServeError> {
        let wal = self.wal_handle();
        let removed = self.inner.docs.remove_with(
            name,
            // lock-order: shard write lock → Wal mutex.
            || match &wal {
                Some(w) => w
                    .append(&WalRecord::Remove {
                        doc: name.to_string(),
                    })
                    .map_err(|e| ServeError::Io(format!("wal append: {e}"))),
                None => Ok(()),
            },
        )?;
        if removed {
            self.inner.results.purge_doc(name);
            // The per-doc stats row goes with the document (a server
            // with name churn must not accumulate rows forever).
            self.inner.stats.forget_doc(name);
        }
        self.inner.stats.record_verb(Verb::Remove, removed);
        Ok(removed)
    }

    /// Loaded document names, sorted.
    pub fn doc_names(&self) -> Vec<String> {
        self.inner.docs.snapshot().names()
    }

    /// The backing path of a file-backed document, if `name` is one —
    /// what a protocol front end needs to drive a streaming session
    /// from disk.
    pub fn doc_path(&self, name: &str) -> Option<PathBuf> {
        match self.inner.docs.get(name) {
            Some(DocSource::File(path)) => Some(path),
            _ => None,
        }
    }

    /// The sharded document store (snapshot counters, epochs, shard
    /// layout) — exposed for observability and tests.
    pub fn store(&self) -> &DocStore {
        &self.inner.docs
    }

    // ---- durability ----

    /// The attached WAL, cloned out so no caller ever holds the
    /// registration lock while appending.
    fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.inner.wal.read().expect("wal lock poisoned").clone()
    }

    /// The attached WAL's path, if one is attached.
    pub fn wal_path(&self) -> Option<PathBuf> {
        self.wal_handle().map(|w| w.path().to_path_buf())
    }

    /// Forces everything appended to the attached WAL so far to stable
    /// storage (`fsync`); a no-op without a WAL. Per-record appends
    /// flush to the OS only — see the [`crate::wal`] durability notes.
    pub fn sync_wal(&self) -> Result<(), ServeError> {
        match self.wal_handle() {
            Some(w) => w
                .sync()
                .map_err(|e| ServeError::Io(format!("wal sync: {e}"))),
            None => Ok(()),
        }
    }

    /// Replays the write-ahead log at `path` onto this server, then
    /// opens it for appending and attaches it: every subsequently
    /// *applied* `UPDATE`/`LOAD`/`REMOVE` is logged before its reply.
    /// A missing file is an empty log (fresh start); a torn tail —
    /// what a crash mid-append leaves — is dropped and reported in
    /// [`WalRecovery::truncated`].
    ///
    /// Replay runs through the normal write paths (updates re-run
    /// cache maintenance), with logging detached, so recovered state is
    /// exactly what a live server that applied the same writes holds —
    /// the crash-recovery tests assert byte-identical views. Call this
    /// before loading any other documents: names the log recreates
    /// would otherwise be overwritten by the replay.
    pub fn attach_wal(&self, path: impl AsRef<FsPath>) -> Result<WalRecovery, ServeError> {
        let path = path.as_ref();
        let replay = Wal::replay(path).map_err(|e| ServeError::Io(format!("wal replay: {e}")))?;
        let (records, truncated) = (replay.records, replay.truncated);
        if truncated {
            // Drop the torn tail before reopening for append: records
            // appended after leftover garbage would be unreachable to
            // every later replay (it stops at the first bad frame).
            Wal::truncate_to(path, replay.valid_len)
                .map_err(|e| ServeError::Io(format!("wal truncate: {e}")))?;
        }
        let applied = records.len();
        for record in records {
            match record {
                WalRecord::Load { doc, xml } => {
                    self.load_doc_str(doc, &xml)?;
                }
                WalRecord::LoadFile { doc, path } => {
                    self.load_doc_file(doc, path)?;
                }
                WalRecord::Remove { doc } => {
                    self.try_remove_doc(&doc)?;
                }
                WalRecord::Update { doc, text } => {
                    self.update_doc(&doc, &text)?;
                }
            }
        }
        let wal = Wal::open(path).map_err(|e| ServeError::Io(format!("wal open: {e}")))?;
        *self.inner.wal.write().expect("wal lock poisoned") = Some(Arc::new(wal));
        // Recovery is part of the server's operational record: surface
        // it in STATS/METRICS, not just the attach call's return value.
        self.inner
            .stats
            .wal_recovered
            .fetch_add(applied as u64, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        if truncated {
            self.inner
                .stats
                .wal_truncations
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        }
        Ok(WalRecovery { applied, truncated })
    }

    /// Counts a client lost before the protocol loop could start (e.g.
    /// a failed `try_clone` after accept) under the `conn` pseudo-verb,
    /// so `METRICS` sees dropped clients a failed accept log line alone
    /// would hide.
    pub fn record_conn_failure(&self) {
        self.inner.stats.record_verb(Verb::Conn, false);
    }

    // (document resolution for requests goes through [`DocView`])

    // ---- views ----

    /// Registers a single-transform view. Re-registering a name drops
    /// any cached results computed under its old definition — unless
    /// the static analysis proves the new body equivalent to the old
    /// one (or to another live view), in which case the definition
    /// joins that containment class's cache family and its warm
    /// results keep serving.
    pub fn register_view(&self, name: &str, query: &str) -> Result<(), ServeError> {
        let def = self.inner.registry.register(name, query)?;
        self.after_register(&def);
        Ok(())
    }

    /// Registers a chain view (what-if scenario stacking).
    pub fn register_view_chain(&self, name: &str, queries: &[&str]) -> Result<(), ServeError> {
        let def = self.inner.registry.register_chain(name, queries)?;
        self.after_register(&def);
        Ok(())
    }

    /// Registers a security policy as a view named after its group.
    pub fn register_policy(&self, policy: &Policy) -> Result<(), ServeError> {
        let def = self.inner.registry.register_policy(policy)?;
        self.after_register(&def);
        Ok(())
    }

    /// Post-registration cache hygiene: purge results only for a fresh
    /// cache family. An adopted family means the body is provably
    /// equivalent to the family's representative, so existing results
    /// are still byte-correct for this definition.
    fn after_register(&self, def: &ViewDef) {
        if def.cache_generation == def.generation {
            self.inner.results.purge_view(&def.cache_key);
        }
    }

    /// Unregisters a view; true if it existed. Cached results computed
    /// under the definition are purged with it (across every document's
    /// cache shard) unless another live view still shares its cache
    /// family — a later re-registration starts from a clean slate
    /// *and* a fresh generation, so a straggling insert of the old
    /// definition's result can never be served.
    pub fn remove_view(&self, name: &str) -> bool {
        match self.inner.registry.remove(name) {
            Some(def) => {
                if !self.inner.registry.family_in_use(&def.cache_key) {
                    self.inner.results.purge_view(&def.cache_key);
                }
                true
            }
            None => false,
        }
    }

    /// Registered view names, sorted.
    pub fn view_names(&self) -> Vec<String> {
        self.inner.registry.names()
    }

    // ---- serving ----

    /// Handles one request synchronously. Safe to call from any number
    /// of threads at once. A single request resolves its one document
    /// against the store's current epoch directly (one shard lock —
    /// no cross-shard snapshot on the hot path); consistency across
    /// *several* lookups is what [`Server::execute_batch`] and
    /// streaming sessions use snapshots for.
    pub fn handle(&self, request: &Request) -> Result<Response, ServeError> {
        self.handle_in(request, &DocView::Live(&self.inner.docs))
    }

    /// Handles one request against an explicit document view — the unit
    /// of work the batch executor fans out (one pinned snapshot per
    /// batch, so all items see the same document world).
    fn handle_in(&self, request: &Request, view: &DocView<'_>) -> Result<Response, ServeError> {
        let started = Instant::now();
        self.inner
            .stats
            .requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        let verb = match request {
            Request::View { .. } => Verb::View,
            Request::Query { .. } => Verb::Query,
            Request::Transform { .. } => Verb::Transform,
            Request::Update { .. } => Verb::Update,
        };
        // The target string is built lazily — with tracing off, `begin`
        // never calls the closure (no allocation on the fast path).
        let mut rt = self.inner.obs.begin(verb, || match request {
            Request::View { view, doc } | Request::Query { view, doc, .. } => {
                format!("{view}/{doc}")
            }
            Request::Transform { doc, .. } | Request::Update { doc, .. } => doc.clone(),
        });
        let result = match request {
            Request::View { view: v, doc } => self.handle_view(view, v, doc, &mut rt),
            Request::Query {
                view: v,
                doc,
                query,
            } => self.handle_query(view, v, doc, query, &mut rt),
            Request::Transform { doc, query } => self.handle_transform(view, doc, query, &mut rt),
            // Writes always go to the live store — a pinned batch
            // snapshot is a *read* consistency device.
            Request::Update { doc, update } => self.handle_update(doc, update, &mut rt),
        };
        let micros = started.elapsed().as_micros() as u64;
        self.inner
            .stats
            .busy_micros
            .fetch_add(micros, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        self.inner.stats.record_verb(verb, result.is_ok());
        let view_name = match request {
            Request::View { view, .. } | Request::Query { view, .. } => Some(view.as_str()),
            _ => None,
        };
        match result {
            Ok(mut resp) => {
                if let Some(view) = view_name {
                    // Per-view latency feedback, merged lock-free (CAS)
                    // when several executor workers report for the same
                    // view at once.
                    self.inner.stats.record_view_latency(view, micros as f64);
                }
                if let Some(m) = resp.method {
                    rt.set_method(m);
                }
                self.inner.obs.finish(rt, micros, true, view_name);
                resp.micros = micros;
                Ok(resp)
            }
            Err(e) => {
                self.inner
                    .stats
                    .failures
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
                self.inner.obs.finish(rt, micros, false, view_name);
                Err(e)
            }
        }
    }

    /// Enqueues one request on the worker pool; the receiver yields the
    /// result when it completes.
    pub fn submit(&self, request: Request) -> Receiver<Result<Response, ServeError>> {
        let server = self.clone();
        self.inner.pool.submit(move || server.handle(&request))
    }

    /// The batched multi-document entry point: takes **one** store
    /// snapshot (every item sees the same consistent document world) and
    /// fans the batch across the resident worker pool with work-stealing
    /// ([`ThreadPool::run_batch`]), so one slow request never serializes
    /// the rest while total concurrency stays bounded by the pool size
    /// even under many simultaneous batch callers. Results come back in
    /// request order; per-item method/latency observations are merged
    /// into the planner's EWMA feedback and the per-view latency cells
    /// as each item completes.
    ///
    /// `VIEW` items are additionally **grouped by document**: co-resident
    /// single-link views of the same in-memory document ride one shared
    /// factorised pass ([`multi_view_with_stats`]) instead of one full
    /// tree sweep each — the `shared_passes` / `shared_pass_views`
    /// counters report how often that happened.
    pub fn execute_batch(&self, requests: Vec<Request>) -> Vec<Result<Response, ServeError>> {
        use std::collections::HashMap;
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        self.inner.stats.batches.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        self.inner
            .stats
            .batch_items
            .fetch_add(requests.len() as u64, Relaxed); // relaxed: monotone counter; no data published
        let snap = Arc::new(self.inner.docs.snapshot());
        // Per-request (verb, view, trace target), kept on this side of
        // the pool: when a worker panics mid-job, its items still owe
        // the per-verb error series and the trace ring a record — the
        // panic unwound past `handle_in`'s epilogue, so the accounting
        // happens here instead.
        let descs: Vec<(Verb, Option<String>, String)> = requests
            .iter()
            .map(|req| match req {
                Request::View { view, doc } => {
                    (Verb::View, Some(view.clone()), format!("{view}/{doc}"))
                }
                Request::Query { view, doc, .. } => {
                    (Verb::Query, Some(view.clone()), format!("{view}/{doc}"))
                }
                Request::Transform { doc, .. } => (Verb::Transform, None, doc.clone()),
                Request::Update { doc, .. } => (Verb::Update, None, doc.clone()),
            })
            .collect();
        // Group `VIEW` items by document. Only single-link views of
        // in-memory documents can ride a shared pass (the same shapes
        // the result cache accepts); a group of one gains nothing and
        // stays on the private path.
        let mut by_doc: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, req) in requests.iter().enumerate() {
            if let Request::View { view, doc } = req {
                let groupable = matches!(snap.get(doc), Some(DocSource::Memory(_)))
                    && self
                        .inner
                        .registry
                        .get(view)
                        .is_some_and(|def| def.single().is_some() && !def.analysis.dead);
                if groupable {
                    by_doc.entry(doc.clone()).or_default().push(i);
                }
            }
        }
        let groups: Vec<Vec<usize>> = by_doc
            .into_values()
            .filter(|idxs| idxs.len() >= 2)
            .collect();
        enum Job {
            One(usize, Request),
            Group(String, Vec<(usize, String)>),
        }
        let mut group_of: HashMap<usize, usize> = HashMap::new();
        for (g, idxs) in groups.iter().enumerate() {
            for &i in idxs {
                group_of.insert(i, g);
            }
        }
        let mut group_doc: Vec<String> = vec![String::new(); groups.len()];
        let mut group_items: Vec<Vec<(usize, String)>> = vec![Vec::new(); groups.len()];
        let mut jobs: Vec<Job> = Vec::new();
        for (i, req) in requests.into_iter().enumerate() {
            match group_of.get(&i) {
                Some(&g) => {
                    let Request::View { view, doc } = req else {
                        unreachable!("only VIEW items are grouped");
                    };
                    group_doc[g] = doc;
                    group_items[g].push((i, view));
                }
                None => jobs.push(Job::One(i, req)),
            }
        }
        for (g, items) in group_items.into_iter().enumerate() {
            jobs.push(Job::Group(std::mem::take(&mut group_doc[g]), items));
        }
        // Which request indices each job carries — the panic accounting
        // below needs them after the pool returns.
        let job_indices: Vec<Vec<usize>> = jobs
            .iter()
            .map(|job| match job {
                Job::One(i, _) => vec![*i],
                Job::Group(_, items) => items.iter().map(|(i, _)| *i).collect(),
            })
            .collect();
        let server = self.clone();
        let (raw, steal) = self.inner.pool.run_batch(jobs, move |_, job| match job {
            Job::One(i, req) => vec![(i, server.handle_in(&req, &DocView::Pinned(&snap)))],
            Job::Group(doc, items) => {
                server.handle_view_group(&doc, items, &DocView::Pinned(&snap))
            }
        });
        self.inner
            .stats
            .batch_steals
            .fetch_add(steal.steals, Relaxed); // relaxed: monotone counter; no data published
        let mut out: Vec<Option<Result<Response, ServeError>>> =
            (0..descs.len()).map(|_| None).collect();
        for (slot, job_result) in raw.into_iter().enumerate() {
            match job_result {
                Some(pairs) => {
                    for (i, r) in pairs {
                        out[i] = Some(r);
                    }
                }
                None => {
                    // The worker panicked mid-job: the panic unwound
                    // past `handle_in`'s failure epilogue, so each item
                    // gets it here instead. (An item the job had
                    // already *finished* before the panic is counted
                    // as both a success and this failure; the panic
                    // discarded its result either way.)
                    for &i in &job_indices[slot] {
                        let (verb, view, target) = &descs[i];
                        out[i] = Some(Err(self.account_worker_panic(
                            *verb,
                            view.as_deref(),
                            target,
                        )));
                    }
                }
            }
        }
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| Err(ServeError::Eval("worker panicked".into()))))
            .collect()
    }

    /// The failure epilogue for a batch item whose worker panicked:
    /// the per-verb error series, the failure total, and a trace
    /// bracket — everything a failed `handle_in` would have recorded —
    /// so `METRICS` and `TRACE` reflect panicked items like any other
    /// failure. Returns the error the caller stores in the item's slot.
    fn account_worker_panic(&self, verb: Verb, view: Option<&str>, target: &str) -> ServeError {
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        self.inner.stats.record_verb(verb, false);
        self.inner.stats.failures.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        let rt = self.inner.obs.begin(verb, || target.to_string());
        self.inner.obs.finish(rt, 0, false, view);
        ServeError::Eval("worker panicked".into())
    }

    // ---- the live write path ----

    /// Applies an update — written in transform syntax, single or multi
    /// `modify do (…)` — **destructively** to the stored in-memory
    /// document `doc`, copy-on-write into a fresh shard epoch. This is
    /// the write path the paper's transform machinery earns its keep on:
    ///
    /// 1. the update is parsed (and, for single updates, NFA-compiled
    ///    through the prepared cache — repeat update shapes skip parse
    ///    and automaton construction like repeat reads do);
    /// 2. its embedded updates are applied in order to a clone of the
    ///    current epoch's tree, reusing the arena free-list for every
    ///    deleted or replaced subtree, while the labels the write
    ///    actually touches are collected as the *dynamic delta*;
    /// 3. every cached view result for this document faces the delta
    ///    relevance test ([`ViewResultCache::maintain`]): provably
    ///    unaffected entries are retained — the same delta is applied to
    ///    the cached materialization — and the rest are dropped for lazy
    ///    recomputation, counted per view in STATS;
    /// 4. the new tree is installed as the shard's next epoch. In-flight
    ///    readers and snapshots keep the old epoch until they drop.
    ///
    /// All-or-nothing: a parse error, a doc-name mismatch, an unknown or
    /// file-backed document leave the epoch, the stored tree, and every
    /// cached entry exactly as they were.
    pub fn update_doc(&self, doc: &str, update: &str) -> Result<Response, ServeError> {
        self.handle(&Request::Update {
            doc: doc.into(),
            update: update.into(),
        })
    }

    fn handle_update(
        &self,
        doc: &str,
        update: &str,
        rt: &mut Trace,
    ) -> Result<Response, ServeError> {
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        let stats = &self.inner.stats;
        let t = rt.start();
        let mq = parse_multi_transform(update).map_err(|e| ServeError::Parse(e.to_string()))?;
        rt.phase(Phase::Parse, t);
        if mq.doc_name != doc {
            return Err(ServeError::Parse(format!(
                "update reads doc(\"{}\") but targets loaded document '{doc}'",
                mq.doc_name
            )));
        }
        // Single updates reuse the transform prepared cache (same key
        // space as ad-hoc reads — an UPDATE that mirrors a prepared
        // TRANSFORM shares its compiled NFAs), compiling from the parse
        // already in hand on a miss (this also keeps parenthesized
        // single-update lists, `modify do (u1)`, working — they are
        // valid multi syntax but not valid single syntax to re-parse).
        // Multi updates carry one alphabet per rule, built fresh.
        let t = rt.start();
        let (ops, update_alpha, hit): (Vec<(Path, UpdateOp)>, LabelSet, bool) =
            if mq.updates.len() == 1 {
                let mut mq = mq;
                let (path, op) = mq.updates.pop().expect("checked len == 1");
                let query = xust_core::TransformQuery {
                    var: mq.var,
                    doc_name: mq.doc_name,
                    path,
                    op,
                };
                let (ct, hit) = self.inner.transforms.get_or_try_insert(
                    update,
                    || -> Result<_, ServeError> {
                        stats.compiles.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
                        Ok(CompiledTransform::compile(query))
                    },
                )?;
                self.note_cache(hit);
                rt.note_prepared(hit);
                (
                    vec![(ct.query().path.clone(), ct.query().op.clone())],
                    ct.alphabet().clone(),
                    hit,
                )
            } else {
                let mut alpha = LabelSet::new();
                for (path, op) in &mq.updates {
                    alpha.union_with(&update_alphabet(path, op));
                }
                (mq.updates, alpha, false)
            };
        rt.phase(Phase::Cache, t);
        // The value-sensitive slice of the update's selection: only
        // qualifier-bearing reads — what the relevance test compares
        // against the string values a view materialization perturbed.
        let mut update_vals = LabelSet::new();
        for (path, _) in &ops {
            value_alphabet_into(path, &mut update_vals);
        }
        // Which views this update shape provably commutes with —
        // decided from registration-time analysis alone, memoized per
        // (doc, update text). Resolved before the shard write lock is
        // taken so maintenance answers those entries with a table
        // lookup instead of the dynamic three-way intersection test.
        let static_clear = self.static_clear_for(doc, update, &ops, &update_alpha, &update_vals);
        // The patch fate's view table — single-rule writes only
        // (multi-rule writes interleave arena slot recycling between
        // rules, so node ids captured for one rule can be stale by the
        // next). Resolved before the shard write lock, like the static
        // table: maintenance under the lock only does hash lookups.
        let patching = self.inner.patching && ops.len() == 1;
        let mut patch_views: HashMap<String, PatchView> = HashMap::new();
        if patching {
            for def in self.inner.registry.defs() {
                if def.doc_name != doc || def.analysis.dead {
                    continue;
                }
                let Some(link) = def.single() else { continue };
                let mut anchor = LabelSet::new();
                qualifier_anchor_alphabet_into(&link.query().path, &mut anchor);
                patch_views.insert(
                    def.cache_key.to_string(),
                    PatchView {
                        ct: Arc::clone(link),
                        anchor_alphabet: anchor,
                        generation: def.cache_generation,
                    },
                );
            }
        }
        let results = &self.inner.results;
        let wal = self.wal_handle();
        // The installed tree, smuggled out of the closure: the eager
        // shared recompute below runs on it *after* the shard write
        // lock is released.
        let mut new_tree: Option<Arc<Document>> = None;
        let (stamp, (outcome, targets)) = self
            .inner
            .docs
            .update(doc, |stamp: WriteStamp, source| {
                let DocSource::Memory(old) = source else {
                    return Err(ServeError::Unsupported(format!(
                        "UPDATE needs an in-memory document; '{doc}' is file-backed \
                         (load it in memory to enable live updates)"
                    )));
                };
                // Durability first: the record goes to the log before
                // anything — tree clone, cache maintenance — mutates
                // shared state, so a failed append leaves the write
                // fully un-happened (all-or-nothing), and log order
                // equals install order because both sit under this
                // shard write lock.
                // lock-order: shard write lock → Wal mutex.
                if let Some(w) = &wal {
                    w.append(&WalRecord::Update {
                        doc: doc.to_string(),
                        text: update.to_string(),
                    })
                    .map_err(|e| ServeError::Io(format!("wal append: {e}")))?;
                }
                let mut next = (**old).clone();
                let mut delta = LabelSet::new();
                let mut targets_total = 0usize;
                // Old→new label mappings of the applied renames, in
                // order: retained cache entries get the same renames
                // applied to their trees, so their stored touched-label
                // footprints must be carried into the new vocabulary
                // (`TouchedLabels::apply_renames`) or later relevance
                // tests would compare against pre-rename names.
                let mut renames: Vec<RenameMapping> = Vec::new();
                // Patch-fate inputs, collected against the pre-apply
                // tree: one ancestor-or-self chain per update site
                // (sites are chosen to survive the apply — the parent
                // for structural/sibling ops, the target itself for
                // renames and into-inserts), and the guard alphabet —
                // every site-chain label plus rename target names —
                // at which this write could flip a qualifier verdict.
                let mut sites: Vec<Vec<NodeId>> = Vec::new();
                let mut guard = LabelSet::new();
                // Net element-label counts this write shifts, for the
                // per-doc histogram (exact, from the pre-apply tree).
                let mut label_shift: HashMap<Sym, i64> = HashMap::new();
                let t = rt.start();
                for (path, op) in &ops {
                    let matched = eval_path_root(&next, path);
                    targets_total += matched.len();
                    touched_labels_into(&next, &matched, op, &mut delta);
                    if patching {
                        for &m in &matched {
                            let chain = site_chain(&next, update_site(&next, m, op));
                            for &n in &chain {
                                if let Some(l) = next.name(n) {
                                    guard.insert(intern(l));
                                }
                            }
                            sites.push(chain);
                        }
                    }
                    if let UpdateOp::Rename { name } = op {
                        renames.extend(RenameMapping::capture(&next, &matched, *name));
                        guard.insert(*name);
                    }
                    shift_update_labels(&next, &matched, op, &mut label_shift);
                    apply_update(&mut next, &matched, op);
                }
                rt.phase(Phase::Eval, t);
                // Maintenance runs while the shard write lock is held,
                // so it is ordered exactly like the install it mirrors
                // (two racing updates cannot maintain out of order). It
                // sweeps only this document's cache shard: entries —
                // and result reads — of every other document, same
                // store shard or not, proceed untouched.
                let t = rt.start();
                let ctx = PatchCtx {
                    base: &next,
                    sites: &sites,
                    guard: &guard,
                    views: &patch_views,
                };
                let outcome = results.maintain(
                    doc,
                    stamp.prev_version,
                    stamp.version,
                    &update_alpha,
                    &update_vals,
                    &delta,
                    &renames,
                    &static_clear,
                    patching.then_some(&ctx),
                    &mut |cached| {
                        let mut replay = DeltaReplay::default();
                        for (path, op) in &ops {
                            let matched = eval_path_root(cached, path);
                            if patching {
                                // Result-side chains for provenance
                                // repair, read before the replay
                                // mutates the cached tree.
                                for &m in &matched {
                                    replay
                                        .chains
                                        .push(site_chain(cached, update_site(cached, m, op)));
                                }
                            }
                            apply_update(cached, &matched, op);
                        }
                        replay
                    },
                );
                // Localization and splicing get their own phase when
                // any entry took the patch fate; retention sweeps keep
                // reporting as maintenance.
                if outcome.patched.is_empty() {
                    rt.phase(Phase::Maintain, t);
                } else {
                    rt.phase(Phase::Patch, t);
                }
                // The per-doc row is recorded here, still under the
                // shard write lock, so it is ordered against a racing
                // `remove_doc` (which takes the same lock to remove the
                // doc and only then forgets the row): a write's row can
                // never be re-created *after* the removal's cleanup —
                // once the doc is gone, updates stop at NotFound.
                stats.record_doc_delta(
                    doc,
                    outcome.retained.len() as u64,
                    outcome.patched.len() as u64,
                    outcome.patched_fragments,
                    outcome.recomputed.len() as u64,
                );
                if !label_shift.is_empty() {
                    stats.shift_doc_labels(doc, &label_shift);
                }
                let next = Arc::new(next);
                new_tree = Some(Arc::clone(&next));
                Ok((DocSource::Memory(next), (outcome, targets_total)))
            })
            .map_err(|e| match e {
                StoreUpdateError::NotFound => ServeError::UnknownDoc(doc.to_string()),
                StoreUpdateError::Apply(e) => e,
            })?;
        stats.update_requests.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        stats
            .static_retained
            .fetch_add(outcome.static_retained.len() as u64, Relaxed); // relaxed: monotone counter; no data published
        for v in &outcome.retained {
            stats.record_view_delta(v, true);
        }
        for v in &outcome.patched {
            stats.record_view_patched(v);
        }
        stats
            .patched_fragments
            .fetch_add(outcome.patched_fragments, Relaxed); // relaxed: monotone counter; no data published
        for v in &outcome.recomputed {
            stats.record_view_delta(v, false);
        }
        // Every entry the write just dropped is recomputed eagerly in
        // ONE factorised sweep over the new tree — outside the store
        // shard lock and the cache mutex, so a k-view document's write
        // holds shared state no longer than a 1-view document's (the
        // per-view work above is delta bookkeeping, not evaluation).
        if !outcome.recomputed.is_empty() {
            let tree = new_tree.as_ref().expect("update installed a memory doc");
            let t = rt.start();
            self.shared_recompute(doc, stamp.version, tree, &outcome.recomputed);
            rt.phase(Phase::Maintain, t);
        }
        Ok(Response {
            body: format!(
                "updated {doc} epoch={} version={} targets={targets} retained={} recomputed={} static={} patched={}",
                stamp.epoch,
                stamp.version,
                outcome.retained.len(),
                outcome.recomputed.len(),
                outcome.static_retained.len(),
                outcome.patched.len()
            ),
            method: None,
            micros: 0,
            cache_hit: hit,
        })
    }

    /// The static-clear table for one write: `cache_key →
    /// cache_generation` for every cache family this update shape
    /// *provably* commutes with, decided entirely from
    /// registration-time analysis ([`xust_analyze::statically_commutes`]).
    /// Memoized per `(doc, update text)` and invalidated wholesale by
    /// any registration (the registry watermark moves). The table may
    /// be a registration behind the registry — harmless: maintenance
    /// cross-checks each claimed generation against the resident
    /// entry's, so a stale claim degrades to the dynamic test.
    fn static_clear_for(
        &self,
        doc: &str,
        update: &str,
        ops: &[(Path, UpdateOp)],
        update_alpha: &LabelSet,
        update_vals: &LabelSet,
    ) -> Arc<HashMap<String, u64>> {
        let wm = self.inner.registry.watermark();
        let key = (doc.to_string(), update.to_string());
        {
            let mut state = self.inner.commute.lock().expect("commute lock poisoned");
            if state.watermark < wm {
                state.watermark = wm;
                state.tables.clear();
            } else if state.watermark == wm {
                if let Some(table) = state.tables.get(&key) {
                    return Arc::clone(table);
                }
            }
        }
        // Build outside the mutex: classification is O(update size) and
        // the scan takes the registry read lock, which must not nest
        // inside the commute guard.
        let mut class = classify_update(ops.iter().map(|(p, o)| (p, o)));
        // The commutation test must argue about exactly the alphabets
        // the dynamic relevance test will use for this write, which for
        // prepared single updates come from the compiled transform.
        class.alphabet = update_alpha.clone();
        class.values = update_vals.clone();
        let mut table: HashMap<String, u64> = HashMap::new();
        let mut blocked: Vec<Arc<str>> = Vec::new();
        for def in self.inner.registry.defs() {
            if def.doc_name != doc || def.analysis.dead {
                continue;
            }
            if statically_commutes(&def.alphabet, &def.analysis.footprint, &class) {
                table.insert(def.cache_key.to_string(), def.cache_generation);
            } else {
                // A cache family is cleared only if *every* member
                // commutes — equivalent definitions can still differ
                // syntactically (and so in their static bounds).
                blocked.push(Arc::clone(&def.cache_key));
            }
        }
        for key in blocked {
            table.remove(&*key);
        }
        let table = Arc::new(table);
        let mut state = self.inner.commute.lock().expect("commute lock poisoned");
        if state.watermark == wm {
            if state.tables.len() >= COMMUTE_TABLE_CAP {
                state.tables.clear();
            }
            state.tables.insert(key, Arc::clone(&table));
        }
        table
    }

    /// Recomputes every single-link view a write just invalidated in
    /// **one** factorised sweep over the installed tree, re-inserting
    /// the results at the write's version so subsequent reads hit.
    /// Multi-link chains and fused multi-transform views stay lazy
    /// (their results depend on intermediate trees a shared pass over
    /// the base cannot produce). A view that raced a re-registration
    /// or removal since the maintain sweep simply drops out — the next
    /// read recomputes it privately.
    fn shared_recompute(&self, doc: &str, version: u64, tree: &Arc<Document>, names: &[String]) {
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        let defs: Vec<Arc<ViewDef>> = names
            .iter()
            .filter_map(|n| self.inner.registry.get(n))
            .filter(|def| def.single().is_some() && !def.analysis.dead)
            .collect();
        if defs.is_empty() {
            return;
        }
        let queries: Vec<&TransformQuery> = defs
            .iter()
            .map(|def| def.single().expect("filtered on single()").query())
            .collect();
        let (outs, mv) = multi_view_with_stats(tree, &queries);
        self.inner
            .stats
            .shared_passes
            .fetch_add(mv.passes as u64, Relaxed); // relaxed: monotone counter; no data published
        self.inner
            .stats
            .shared_pass_views
            .fetch_add(mv.shared_views as u64, Relaxed); // relaxed: monotone counter; no data published
                                                         // A second write racing past this one makes the inserts dead
                                                         // weight at best — skip them (its own sweep recomputes at the
                                                         // newer version; `insert` also never downgrades a newer
                                                         // resident entry, so this check is an optimization, not the
                                                         // correctness guard).
        if !DocView::Live(&self.inner.docs).still_at(doc, version) {
            return;
        }
        for (def, out) in defs.iter().zip(outs) {
            let link = def.single().expect("filtered on single()");
            let q = link.query();
            let mut touched = TouchedLabels::new();
            touched.record(tree, &out.targets, &q.op);
            let body = out.doc.serialize();
            let frags = self
                .inner
                .patching
                .then(|| {
                    FragmentTree::build(tree, &out.doc, q, link.selecting(), frag_leaf_limit(tree))
                })
                .flatten();
            self.inner.results.insert(
                &def.cache_key,
                doc,
                version,
                def.cache_generation,
                out.doc,
                body,
                def.alphabet.clone(),
                touched,
                frags,
            );
        }
    }

    /// Serves a batch's grouped `VIEW` items — several single-link
    /// views of the same in-memory document — with at most **one**
    /// shared factorised pass: cache hits peel off first, then every
    /// miss rides the same [`multi_view_with_stats`] sweep. Each item
    /// gets the full per-request accounting `handle_in` would have
    /// given it (request/verb counters, latency EWMA, trace bracket).
    /// Items whose grouping preconditions raced away (view
    /// re-registered, document replaced or removed) fall back to the
    /// private `handle_in` path, which carries its own accounting.
    fn handle_view_group(
        &self,
        doc: &str,
        items: Vec<(usize, String)>,
        docs: &DocView<'_>,
    ) -> Vec<(usize, Result<Response, ServeError>)> {
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        let stats = &self.inner.stats;
        let mut out: Vec<(usize, Result<Response, ServeError>)> = Vec::with_capacity(items.len());
        // Re-check the grouping preconditions (registration and the
        // snapshot can have moved since `execute_batch` scanned).
        let mut shared: Vec<(usize, String, Arc<ViewDef>)> = Vec::new();
        let mut fallback: Vec<(usize, String)> = Vec::new();
        for (idx, view) in items {
            match self.inner.registry.get(&view) {
                Some(def) if def.single().is_some() && !def.analysis.dead => {
                    shared.push((idx, view, def))
                }
                _ => fallback.push((idx, view)),
            }
        }
        let resolved = docs.get_versioned(doc);
        let base = match &resolved {
            Ok((DocSource::Memory(base), _)) => Some(Arc::clone(base)),
            _ => None,
        };
        if base.is_none() {
            // Unknown or file-backed document: nothing to share.
            fallback.extend(shared.drain(..).map(|(idx, view, _)| (idx, view)));
        }
        for (idx, view) in fallback {
            let req = Request::View {
                view,
                doc: doc.to_string(),
            };
            out.push((idx, self.handle_in(&req, docs)));
        }
        let Some(base) = base else {
            return out;
        };
        let version = resolved.expect("base came from resolved").1;
        // Per-item prologue (what `handle_in` does), with the cache
        // probe peeling resident entries off the pass.
        let mut pending: Vec<(usize, String, Arc<ViewDef>, Instant, Trace)> = Vec::new();
        for (idx, view, def) in shared {
            let started = Instant::now();
            stats.requests.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
            stats.view_requests.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
            let mut rt = self.inner.obs.begin(Verb::View, || format!("{view}/{doc}"));
            let t = rt.start();
            let found = self
                .inner
                .results
                .get(&def.cache_key, doc, version, def.cache_generation);
            rt.phase(Phase::Cache, t);
            rt.note_result(found.is_some());
            if let Some(body) = found {
                let micros = started.elapsed().as_micros() as u64;
                stats.busy_micros.fetch_add(micros, Relaxed); // relaxed: monotone counter; no data published
                stats.record_verb(Verb::View, true);
                stats.record_view_latency(&view, micros as f64);
                self.inner.obs.finish(rt, micros, true, Some(&view));
                out.push((
                    idx,
                    Ok(Response {
                        body: body.to_string(),
                        method: None,
                        micros,
                        cache_hit: true,
                    }),
                ));
            } else {
                pending.push((idx, view, def, started, rt));
            }
        }
        if pending.is_empty() {
            return out;
        }
        // ONE sweep for every miss. Each item's Eval phase is charged
        // the whole pass (it *is* the pass the item waited on); the
        // planner's per-method model is deliberately not fed — shared
        // timing would poison the private passes' cost estimates.
        let queries: Vec<&TransformQuery> = pending
            .iter()
            .map(|(_, _, def, _, _)| def.single().expect("re-checked above").query())
            .collect();
        let t = Instant::now();
        let (results, mv) = multi_view_with_stats(&base, &queries);
        let eval_micros = t.elapsed().as_micros() as u64;
        stats.shared_passes.fetch_add(mv.passes as u64, Relaxed); // relaxed: monotone counter; no data published
        stats
            .shared_pass_views
            .fetch_add(mv.shared_views as u64, Relaxed); // relaxed: monotone counter; no data published
        let live = docs.still_at(doc, version);
        for ((idx, view, def, started, mut rt), r) in pending.into_iter().zip(results) {
            rt.phase_micros(Phase::Eval, eval_micros);
            rt.set_method(Method::TopDown);
            let t = rt.start();
            let body = r.doc.serialize();
            if live {
                let link = def.single().expect("re-checked above");
                let q = link.query();
                let mut touched = TouchedLabels::new();
                touched.record(&base, &r.targets, &q.op);
                let frags = self
                    .inner
                    .patching
                    .then(|| {
                        FragmentTree::build(
                            &base,
                            &r.doc,
                            q,
                            link.selecting(),
                            frag_leaf_limit(&base),
                        )
                    })
                    .flatten();
                self.inner.results.insert(
                    &def.cache_key,
                    doc,
                    version,
                    def.cache_generation,
                    r.doc,
                    body.clone(),
                    def.alphabet.clone(),
                    touched,
                    frags,
                );
            }
            rt.phase(Phase::Serialize, t);
            let micros = started.elapsed().as_micros() as u64;
            stats.busy_micros.fetch_add(micros, Relaxed); // relaxed: monotone counter; no data published
            stats.record_verb(Verb::View, true);
            stats.record_view_latency(&view, micros as f64);
            self.inner.obs.finish(rt, micros, true, Some(&view));
            out.push((
                idx,
                Ok(Response {
                    body,
                    method: Some(Method::TopDown),
                    micros,
                    cache_hit: true, // views are pre-compiled at registration
                }),
            ));
        }
        out
    }

    // ---- introspection ----

    /// Current counter snapshot (result-cache hit/miss counts overlaid
    /// from the cache's own counters — the single source of truth).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        snap.result_hits = self.inner.results.hits();
        snap.result_misses = self.inner.results.misses();
        snap
    }

    /// The materialized view-result cache (hit/miss counters, entry
    /// count) — exposed for observability and tests.
    pub fn view_results(&self) -> &ViewResultCache {
        &self.inner.results
    }

    /// Planner model state: `(method, size_class, ns_per_node, samples)`.
    pub fn planner_snapshot(&self) -> Vec<(Method, usize, f64, u64)> {
        self.inner.planner.snapshot()
    }

    /// Compilations performed registering views (once per link, ever).
    pub fn registration_compiles(&self) -> u64 {
        self.inner.registry.compiles()
    }

    /// The observability state (histograms, trace ring, slow log).
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Switches request tracing on or off at runtime (the builder's
    /// [`ServerBuilder::tracing`] sets the initial state). Existing
    /// traces and histograms are kept; only future requests change.
    pub fn set_tracing(&self, on: bool) {
        self.inner.obs.set_enabled(on);
    }

    /// Renders the `METRICS` reply: a Prometheus-style text exposition
    /// of every counter, gauge, and latency histogram. Every line is
    /// `name{labels} value` (labels optional); `# TYPE` comment lines
    /// announce the summary family. The `METRICS` request itself is
    /// counted first, so it appears in its own output.
    pub fn metrics(&self) -> String {
        use std::fmt::Write;
        self.inner.stats.record_verb(Verb::Metrics, true);
        let snap = self.stats();
        let mut out = String::with_capacity(4096);
        let mut line = |name: &str, value: u64| {
            let _ = writeln!(out, "xust_{name} {value}");
        };
        line("requests_total", snap.requests);
        line("failures_total", snap.failures);
        line("prepared_cache_hits_total", snap.cache_hits);
        line("prepared_cache_misses_total", snap.cache_misses);
        line("compiles_total", snap.compiles);
        line("compositions_total", snap.compositions);
        line("view_requests_total", snap.view_requests);
        line("query_requests_total", snap.query_requests);
        line("transform_requests_total", snap.transform_requests);
        line("batches_total", snap.batches);
        line("batch_items_total", snap.batch_items);
        line("batch_steals_total", snap.batch_steals);
        line("stream_sessions_total", snap.stream_sessions);
        line("update_requests_total", snap.update_requests);
        line("delta_retained_total", snap.delta_retained);
        line("static_retained_total", snap.static_retained);
        line("patched_total", snap.delta_patched);
        line("patched_fragments_total", snap.patched_fragments);
        line("delta_recomputed_total", snap.delta_recomputed);
        line("wal_recovered_total", snap.wal_recovered);
        line("wal_truncations_total", snap.wal_truncations);
        line("shared_passes_total", snap.shared_passes);
        line("shared_pass_views_total", snap.shared_pass_views);
        line("result_cache_hits_total", snap.result_hits);
        line("result_cache_misses_total", snap.result_misses);
        line("busy_micros_total", snap.busy_micros);
        line("interned_labels", snap.interned_labels as u64);
        // Every verb gets a series (zeros included) so scrapers see a
        // stable schema from the first scrape.
        for verb in Verb::ALL {
            let (requests, errors) = self.inner.stats.verb_counts(verb);
            let _ = writeln!(
                out,
                "xust_verb_requests_total{{verb=\"{verb}\"}} {requests}"
            );
            let _ = writeln!(out, "xust_verb_errors_total{{verb=\"{verb}\"}} {errors}");
        }
        for (m, n) in &snap.per_method {
            let _ = writeln!(out, "xust_method_executions_total{{method=\"{m}\"}} {n}");
        }
        // Gauges: executor, store, caches, registry.
        let _ = writeln!(
            out,
            "xust_executor_in_flight {}",
            self.inner.pool.in_flight()
        );
        let _ = writeln!(out, "xust_executor_threads {}", self.inner.pool.threads());
        let _ = writeln!(
            out,
            "xust_store_active_snapshots {}",
            self.inner.docs.active_snapshots()
        );
        let _ = writeln!(
            out,
            "xust_store_snapshots_total {}",
            self.inner.docs.snapshots_taken()
        );
        let _ = writeln!(out, "xust_store_shards {}", self.inner.docs.shard_count());
        let _ = writeln!(out, "xust_store_docs {}", self.inner.docs.len());
        let _ = writeln!(
            out,
            "xust_result_cache_entries {}",
            self.inner.results.len()
        );
        let _ = writeln!(
            out,
            "xust_result_cache_docs {}",
            self.inner.results.doc_count()
        );
        {
            let mut cache_lines =
                |name: &str, len: usize, capacity: usize, hits: u64, misses: u64, evict: u64| {
                    let label = format!("{{cache=\"{name}\"}}");
                    let _ = writeln!(out, "xust_prepared_cache_entries{label} {len}");
                    let _ = writeln!(out, "xust_prepared_cache_capacity{label} {capacity}");
                    let _ = writeln!(out, "xust_prepared_cache_hits{label} {hits}");
                    let _ = writeln!(out, "xust_prepared_cache_misses{label} {misses}");
                    let _ = writeln!(out, "xust_prepared_cache_evictions{label} {evict}");
                };
            let t = &self.inner.transforms;
            cache_lines(
                "transforms",
                t.len(),
                t.capacity(),
                t.hits(),
                t.misses(),
                t.evictions(),
            );
            let c = &self.inner.composed;
            cache_lines(
                "composed",
                c.len(),
                c.capacity(),
                c.hits(),
                c.misses(),
                c.evictions(),
            );
        }
        let _ = writeln!(
            out,
            "xust_views_registered {}",
            self.inner.registry.names().len()
        );
        let _ = writeln!(
            out,
            "xust_requests_traced_total {}",
            self.inner.obs.requests_traced()
        );
        self.inner.obs.render_histograms(&mut out);
        out
    }

    /// Renders the `TRACE [n]` reply: the last `n` completed request
    /// traces (newest first) plus the slowest-seen log, one line per
    /// trace with its phase breakdown.
    pub fn traces(&self, n: usize) -> String {
        self.inner.stats.record_verb(Verb::Trace, true);
        self.inner.obs.render_traces(n)
    }

    /// Reports — **without executing anything** — the plan a `VIEW
    /// view doc` request would run right now: the method the planner
    /// would pick per link, the histogram-vs-EWMA latency evidence per
    /// candidate method, and whether the view-result cache holds this
    /// (view, doc) at the current document version.
    pub fn explain(&self, view: &str, doc: &str) -> Result<Explanation, ServeError> {
        let result = self.explain_inner(view, doc);
        self.inner.stats.record_verb(Verb::Explain, result.is_ok());
        result
    }

    /// Reports — **without executing anything** — the registration-time
    /// static analysis of a view: satisfiability (dead views select
    /// nothing, ever), per-automaton dead-state counts, folded
    /// qualifier terms, the static alphabet, the write-footprint
    /// bounds the commutation test argues about, and the containment
    /// (cache-family) class the definition landed in.
    pub fn analyze(&self, view: &str) -> Result<Analysis, ServeError> {
        let result = self.analyze_inner(view);
        self.inner.stats.record_verb(Verb::Analyze, result.is_ok());
        result
    }

    fn analyze_inner(&self, view: &str) -> Result<Analysis, ServeError> {
        let def = self
            .inner
            .registry
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_string()))?;
        let labels = |set: &LabelSet| -> Vec<String> {
            let mut v: Vec<String> = set.iter().map(|s| s.as_str().to_string()).collect();
            v.sort();
            if set.has_wildcard() {
                v.push("*".to_string());
            }
            v
        };
        let a = &def.analysis;
        let family_members = self
            .inner
            .registry
            .defs()
            .iter()
            .filter(|d| d.cache_key == def.cache_key)
            .count();
        Ok(Analysis {
            view: def.name.clone(),
            doc: def.doc_name.clone(),
            dead: a.dead,
            rules: def.rules().len(),
            sel_states: a.sel_states,
            sel_dead: a.sel_dead,
            filt_states: a.filt_states,
            filt_dead: a.filt_dead,
            folded_qualifiers: a.folded_qualifiers,
            alphabet: labels(&def.alphabet),
            structural: a.footprint.structural.as_ref().map(&labels),
            valued: a.footprint.valued.as_ref().map(&labels),
            cache_key: def.cache_key.to_string(),
            cache_generation: def.cache_generation,
            family_members,
            micros: a.micros,
        })
    }

    fn explain_inner(&self, view: &str, doc: &str) -> Result<Explanation, ServeError> {
        let def = self
            .inner
            .registry
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_string()))?;
        let docs = DocView::Live(&self.inner.docs);
        let (source, version) = docs.get_versioned(doc)?;
        let cacheable =
            matches!(&source, DocSource::Memory(_)) && matches!(&def.body, ViewBody::Chain(_));
        // `peek` is the non-perturbing probe: no hit/miss counted, no
        // LRU bump — EXPLAIN must not change what it reports on.
        let result_cached = cacheable.then(|| {
            self.inner
                .results
                .peek(&def.cache_key, doc, version, def.cache_generation)
        });
        let (shape_text, links) = match (&source, &def.body) {
            (DocSource::Memory(d), ViewBody::Chain(chain)) => {
                let nodes = d.arena_len();
                let shape = DocShape::InMemory { nodes };
                let links = chain
                    .iter()
                    .enumerate()
                    .map(|(i, link)| {
                        let plan = self.inner.planner.explain(link.cost(), shape);
                        LinkPlan {
                            index: i,
                            method: plan.method,
                            fixed: false,
                            // Links past the first run on the previous
                            // link's *output*, whose size is unknown
                            // without executing — planned against the
                            // base shape instead.
                            approximate: i > 0,
                            candidates: self.evidence_of(&plan),
                        }
                    })
                    .collect();
                (format!("memory nodes={nodes}"), links)
            }
            (DocSource::File(path), ViewBody::Chain(chain)) => {
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                if chain.len() == 1 {
                    // Single-link file views stream; no choice to make.
                    let plan = self
                        .inner
                        .planner
                        .explain(chain[0].cost(), DocShape::File { bytes });
                    let links = vec![LinkPlan {
                        index: 0,
                        method: Method::TwoPassSax,
                        fixed: true,
                        approximate: false,
                        candidates: self.evidence_of(&plan),
                    }];
                    (format!("file bytes={bytes}"), links)
                } else {
                    // Multi-link file chains parse the file first; the
                    // node count is estimated from its size, so every
                    // link's plan is approximate.
                    let nodes = (bytes / 64).max(1) as usize;
                    let shape = DocShape::InMemory { nodes };
                    let links = chain
                        .iter()
                        .enumerate()
                        .map(|(i, link)| {
                            let plan = self.inner.planner.explain(link.cost(), shape);
                            LinkPlan {
                                index: i,
                                method: plan.method,
                                fixed: false,
                                approximate: true,
                                candidates: self.evidence_of(&plan),
                            }
                        })
                        .collect();
                    (format!("file bytes={bytes} est_nodes={nodes}"), links)
                }
            }
            (source, ViewBody::Multi(_)) => {
                // Multi-transform views always run the fused top-down
                // plan; report its evidence.
                let (shape_text, approximate) = match source {
                    DocSource::Memory(d) => (format!("memory nodes={}", d.arena_len()), false),
                    DocSource::File(path) => {
                        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                        (format!("file bytes={bytes}"), true)
                    }
                };
                let links = vec![LinkPlan {
                    index: 0,
                    method: Method::TopDown,
                    fixed: true,
                    approximate,
                    candidates: vec![self.evidence_for(Method::TopDown, None)],
                }];
                (shape_text, links)
            }
        };
        Ok(Explanation {
            view: view.to_string(),
            doc: doc.to_string(),
            version,
            generation: def.generation,
            shape: shape_text,
            result_cached,
            links,
        })
    }

    /// Evidence rows for every candidate in a planner decision.
    fn evidence_of(&self, plan: &PlanChoice) -> Vec<CandidateEvidence> {
        plan.candidates
            .iter()
            .map(|&(m, ewma)| self.evidence_for(m, ewma))
            .collect()
    }

    fn evidence_for(&self, method: Method, ewma: Option<(f64, u64)>) -> CandidateEvidence {
        let snap = self.inner.obs.method_histogram(method).snapshot();
        CandidateEvidence {
            method,
            ewma,
            histogram: (snap.count > 0).then_some(snap),
        }
    }

    // ---- request handlers ----

    fn handle_transform(
        &self,
        view: &DocView<'_>,
        doc: &str,
        query: &str,
        rt: &mut Trace,
    ) -> Result<Response, ServeError> {
        self.inner
            .stats
            .transform_requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        let t = rt.start();
        let source = view.get(doc)?;
        rt.phase(Phase::Snapshot, t);
        let stats = &self.inner.stats;
        let t = rt.start();
        let (ct, hit) = self.inner.transforms.get_or_try_insert(query, || {
            stats
                .compiles
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
            CompiledTransform::parse(query).map_err(|e| ServeError::Parse(e.to_string()))
        })?;
        rt.phase(Phase::Cache, t);
        self.note_cache(hit);
        rt.note_prepared(hit);
        match source {
            DocSource::Memory(d) => {
                let shape = DocShape::InMemory {
                    nodes: d.arena_len(),
                };
                let tp = rt.start();
                let method = self.inner.planner.choose(ct.cost(), shape);
                rt.phase(Phase::Plan, tp);
                rt.note_plan(|| format!("transform: nodes={} method={method}", d.arena_len()));
                let t = Instant::now();
                let out = ct
                    .evaluate(&d, method)
                    .map_err(|e| ServeError::Eval(e.to_string()))?;
                let elapsed = t.elapsed();
                self.inner.planner.record(method, shape, elapsed);
                stats.count_method(method);
                let eval_micros = elapsed.as_micros() as u64;
                rt.phase_micros(Phase::Eval, eval_micros);
                self.inner.obs.record_method(method, eval_micros);
                let t = rt.start();
                let body = out.serialize();
                rt.phase(Phase::Serialize, t);
                Ok(Response {
                    body,
                    method: Some(method),
                    micros: 0,
                    cache_hit: hit,
                })
            }
            DocSource::File(path) => {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let shape = DocShape::File { bytes };
                rt.note_plan(|| format!("transform: file bytes={bytes} method=twoPassSAX"));
                let t = Instant::now();
                // Streams the file (two buffered passes); only the
                // serialized result is buffered for the response body.
                let body = ct
                    .evaluate_stream_file(&path)
                    .map_err(|e| ServeError::Eval(e.to_string()))?;
                let elapsed = t.elapsed();
                self.inner
                    .planner
                    .record(Method::TwoPassSax, shape, elapsed);
                stats.count_method(Method::TwoPassSax);
                let eval_micros = elapsed.as_micros() as u64;
                rt.phase_micros(Phase::Eval, eval_micros);
                self.inner
                    .obs
                    .record_method(Method::TwoPassSax, eval_micros);
                Ok(Response {
                    body,
                    method: Some(Method::TwoPassSax),
                    micros: 0,
                    cache_hit: hit,
                })
            }
        }
    }

    fn handle_view(
        &self,
        docs: &DocView<'_>,
        view: &str,
        doc: &str,
        rt: &mut Trace,
    ) -> Result<Response, ServeError> {
        self.inner
            .stats
            .view_requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        let def = self
            .inner
            .registry
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_string()))?;
        // Source and version are read atomically; the version is
        // re-checked via `still_at` before the computed result is
        // cached (a write racing in between would otherwise tag
        // post-write content with the pre-write version, which a batch
        // pinned to the old version would wrongly hit).
        let t = rt.start();
        let (source, version) = docs.get_versioned(doc)?;
        rt.phase(Phase::Snapshot, t);

        // A statically dead view selects nothing on any document: the
        // materialization *is* the base document. Serve it directly —
        // no evaluation, and no result-cache entry to maintain (the
        // registration-time analysis already warned about the view).
        if def.analysis.dead {
            if let DocSource::Memory(base) = &source {
                let t = rt.start();
                let body = base.serialize();
                rt.phase(Phase::Serialize, t);
                return Ok(Response {
                    body,
                    method: None, // no evaluation ran at all
                    micros: 0,
                    cache_hit: true,
                });
            }
        }

        // In-memory chain views are answered from the maintained
        // view-result cache when the entry matches this document
        // version (and this view definition's cache family generation)
        // exactly. Entries are keyed by the definition's *cache family*
        // ([`ViewDef::cache_key`]) — provably equivalent views share
        // one entry per document version.
        let cacheable = matches!(&source, DocSource::Memory(_))
            && matches!(&def.body, ViewBody::Chain(_))
            && !def.analysis.dead;
        if cacheable {
            // Hit/miss accounting lives in the cache itself (surfaced
            // through `Server::stats`).
            let t = rt.start();
            let found = self
                .inner
                .results
                .get(&def.cache_key, doc, version, def.cache_generation);
            rt.phase(Phase::Cache, t);
            rt.note_result(found.is_some());
            if let Some(body) = found {
                return Ok(Response {
                    // The owned copy the response needs is made here,
                    // outside the cache mutex — a hit only bumps a
                    // refcount inside it.
                    body: body.to_string(),
                    method: None, // no evaluation ran at all
                    micros: 0,
                    cache_hit: true,
                });
            }
        }

        // File-backed, single-link chains stream end to end: the input
        // is never held in memory, only the response body.
        if let (DocSource::File(path), Some(link)) = (&source, def.single()) {
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            rt.note_plan(|| format!("link0: file bytes={bytes} method=twoPassSAX"));
            let t = Instant::now();
            let body = link
                .evaluate_stream_file(path)
                .map_err(|e| ServeError::Eval(e.to_string()))?;
            let elapsed = t.elapsed();
            self.inner
                .planner
                .record(Method::TwoPassSax, DocShape::File { bytes }, elapsed);
            self.inner.stats.count_method(Method::TwoPassSax);
            let eval_micros = elapsed.as_micros() as u64;
            rt.phase_micros(Phase::Eval, eval_micros);
            self.inner
                .obs
                .record_method(Method::TwoPassSax, eval_micros);
            return Ok(Response {
                body,
                method: Some(Method::TwoPassSax),
                micros: 0,
                cache_hit: true, // compiled at registration; nothing built here
            });
        }

        let t = rt.start();
        let base = self.base_document(&source)?;
        rt.phase(Phase::Parse, t);
        let mut touched = cacheable.then(TouchedLabels::new);
        let (out, method) = self.materialize(&def, &base, touched.as_mut(), rt)?;
        let t = rt.start();
        let body = out.serialize();
        // Cache only if no write landed since the versioned read: the
        // version re-check makes tag and content provably consistent (a
        // write between the check and the insert is fine — its
        // maintenance sweep drops entries not at its pre-write version,
        // and `insert` never downgrades a newer resident entry).
        if let Some(touched) = touched {
            if docs.still_at(doc, version) {
                let frags = def
                    .single()
                    .filter(|_| self.inner.patching)
                    .and_then(|link| {
                        FragmentTree::build(
                            &base,
                            &out,
                            link.query(),
                            link.selecting(),
                            frag_leaf_limit(&base),
                        )
                    });
                self.inner.results.insert(
                    &def.cache_key,
                    doc,
                    version,
                    def.cache_generation,
                    out,
                    body.clone(),
                    def.alphabet.clone(),
                    touched,
                    frags,
                );
            }
        }
        rt.phase(Phase::Serialize, t);
        Ok(Response {
            body,
            method,
            micros: 0,
            cache_hit: true, // views are pre-compiled at registration
        })
    }

    fn handle_query(
        &self,
        docs: &DocView<'_>,
        view: &str,
        doc: &str,
        query: &str,
        rt: &mut Trace,
    ) -> Result<Response, ServeError> {
        self.inner
            .stats
            .query_requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
        let def = self
            .inner
            .registry
            .get(view)
            .ok_or_else(|| ServeError::UnknownView(view.to_string()))?;
        let t = rt.start();
        let source = docs.get(doc)?;
        rt.phase(Phase::Snapshot, t);

        if let Some(link) = def.single() {
            // File-backed: streaming composition over the unparsed
            // file. The composed-query cache is DOM-only, so this path
            // parses the user query per request and bypasses the cache
            // entirely (no phantom cache entries or composition counts).
            if let DocSource::File(path) = &source {
                let uq = UserQuery::parse(query).map_err(|e| ServeError::Parse(e.to_string()))?;
                if uq.doc_name != def.doc_name {
                    return Err(ServeError::Parse(format!(
                        "query reads doc(\"{}\") but view '{}' serves doc(\"{}\")",
                        uq.doc_name, def.name, def.doc_name
                    )));
                }
                let open = || SaxParser::from_file(path).map_err(|e| ServeError::Io(e.to_string()));
                let mut out = Vec::new();
                let t = rt.start();
                compose_two_pass_sax(open()?, open()?, open()?, link.query(), &uq, &mut out)
                    .map_err(|e| ServeError::Eval(e.to_string()))?;
                rt.phase(Phase::Eval, t);
                return Ok(Response {
                    body: String::from_utf8(out).map_err(|e| ServeError::Eval(e.to_string()))?,
                    method: None,
                    micros: 0,
                    cache_hit: false,
                });
            }

            // In-memory: the Compose Method — rewrite the user query
            // against the virtual view, cached per (view, query) so
            // repeats skip parsing and composition entirely.
            let key = format!("{view}\u{1f}{query}");
            let stats = &self.inner.stats;
            let def_doc = &def.doc_name;
            let t = rt.start();
            let (qc, hit) = self.inner.composed.get_or_try_insert(&key, || {
                let uq = UserQuery::parse(query).map_err(|e| ServeError::Parse(e.to_string()))?;
                if uq.doc_name != *def_doc {
                    return Err(ServeError::Parse(format!(
                        "query reads doc(\"{}\") but view '{}' serves doc(\"{}\")",
                        uq.doc_name, def.name, def_doc
                    )));
                }
                stats
                    .compositions
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed: monotone counter; no data published
                compose(link.query(), &uq).map_err(|e| ServeError::Parse(e.to_string()))
            })?;
            rt.phase(Phase::Cache, t);
            self.note_cache(hit);
            rt.note_prepared(hit);
            let t = rt.start();
            let body = match &source {
                DocSource::Memory(d) => qc
                    .execute_to_string(d)
                    .map_err(|e| ServeError::Eval(e.to_string()))?,
                DocSource::File(_) => unreachable!("file sources handled above"),
            };
            rt.phase(Phase::Eval, t);
            return Ok(Response {
                body,
                method: None,
                micros: 0,
                cache_hit: hit,
            });
        }

        // Multi-link chains / snapshot policies: materialize the view,
        // then run the user query on the XQuery engine.
        let uq = UserQuery::parse(query).map_err(|e| ServeError::Parse(e.to_string()))?;
        if uq.doc_name != def.doc_name {
            return Err(ServeError::Parse(format!(
                "query reads doc(\"{}\") but view '{}' serves doc(\"{}\")",
                uq.doc_name, def.name, def.doc_name
            )));
        }
        let t = rt.start();
        let base = self.base_document(&source)?;
        rt.phase(Phase::Parse, t);
        let (viewed, method) = self.materialize(&def, &base, None, rt)?;
        let mut engine = xust_xquery::Engine::new();
        engine.load_doc(def.doc_name.clone(), viewed);
        let t = rt.start();
        let v = engine
            .eval_expr(&uq.to_expr(), &[])
            .map_err(|e| ServeError::Eval(e.to_string()))?;
        rt.phase(Phase::Eval, t);
        Ok(Response {
            body: engine.serialize_value(&v),
            method,
            micros: 0,
            cache_hit: true,
        })
    }

    // ---- helpers ----

    fn note_cache(&self, hit: bool) {
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        if hit {
            self.inner.stats.cache_hits.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        } else {
            self.inner.stats.cache_misses.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        }
    }

    fn base_document(&self, source: &DocSource) -> Result<Arc<Document>, ServeError> {
        match source {
            DocSource::Memory(d) => Ok(Arc::clone(d)),
            DocSource::File(path) => {
                let doc =
                    Document::parse_file(path).map_err(|e| ServeError::Parse(e.to_string()))?;
                Ok(Arc::new(doc))
            }
        }
    }

    /// Applies a view body to a base document with planner-chosen
    /// methods; returns the result and the (last) method used. When
    /// `touched` is given (chain bodies only), the labels each link's
    /// update touches — evaluated against that link's *input* — are
    /// folded in, so the result can be cached with its touched set.
    fn materialize(
        &self,
        def: &ViewDef,
        base: &Arc<Document>,
        mut touched: Option<&mut TouchedLabels>,
        rt: &mut Trace,
    ) -> Result<(Document, Option<Method>), ServeError> {
        match &def.body {
            ViewBody::Chain(links) => {
                let mut current: Option<Document> = None;
                let mut last_method = None;
                for (i, link) in links.iter().enumerate() {
                    let doc_ref: &Document = match &current {
                        Some(d) => d,
                        None => base,
                    };
                    if let Some(touched) = touched.as_deref_mut() {
                        // One extra selection pass per link, paid only on
                        // result-cache *misses* (hits skip materialize
                        // entirely, and writes maintain entries without
                        // re-materializing) — the price of recording the
                        // touched set without threading target lists
                        // through every evaluation method. Traced under
                        // Cache: it exists to make the result cacheable.
                        let t = rt.start();
                        let q = link.query();
                        let targets = eval_path_root(doc_ref, &q.path);
                        touched.record(doc_ref, &targets, &q.op);
                        rt.phase(Phase::Cache, t);
                    }
                    let shape = DocShape::InMemory {
                        nodes: doc_ref.arena_len(),
                    };
                    let tp = rt.start();
                    let method = self.inner.planner.choose(link.cost(), shape);
                    rt.phase(Phase::Plan, tp);
                    rt.note_plan(|| {
                        format!("link{i}: nodes={} method={method}", doc_ref.arena_len())
                    });
                    let t = Instant::now();
                    let next = link
                        .evaluate(doc_ref, method)
                        .map_err(|e| ServeError::Eval(e.to_string()))?;
                    let elapsed = t.elapsed();
                    self.inner.planner.record(method, shape, elapsed);
                    self.inner.stats.count_method(method);
                    let eval_micros = elapsed.as_micros() as u64;
                    rt.phase_micros(Phase::Eval, eval_micros);
                    self.inner.obs.record_method(method, eval_micros);
                    last_method = Some(method);
                    current = Some(next);
                }
                Ok((current.expect("registry rejects empty chains"), last_method))
            }
            ViewBody::Multi(mq) => {
                // Fused multi-automaton plan (snapshot semantics).
                rt.note_plan(|| {
                    format!(
                        "multi: nodes={} method={}",
                        base.arena_len(),
                        Method::TopDown
                    )
                });
                let t = Instant::now();
                let out = multi_top_down(base, mq);
                let elapsed = t.elapsed();
                self.inner.planner.record(
                    Method::TopDown,
                    DocShape::InMemory {
                        nodes: base.arena_len(),
                    },
                    elapsed,
                );
                self.inner.stats.count_method(Method::TopDown);
                let eval_micros = elapsed.as_micros() as u64;
                rt.phase_micros(Phase::Eval, eval_micros);
                self.inner.obs.record_method(Method::TopDown, eval_micros);
                Ok((out, Some(Method::TopDown)))
            }
        }
    }
}

impl Default for Server {
    fn default() -> Server {
        Server::new()
    }
}

/// The update site whose ancestor-or-self chain localizes one target's
/// effect: the node that both *survives* the apply and *covers* every
/// node the op touches. Renames and into-inserts edit under the target,
/// so the target itself qualifies; deletes, replaces, and sibling
/// inserts change the target's parent's child list, so the parent is
/// the deepest surviving cover (a replaced root falls back to itself —
/// its chain then hits the root fragment and patching degrades to
/// recompute, which is correct).
fn update_site(doc: &Document, target: NodeId, op: &UpdateOp) -> NodeId {
    match op {
        UpdateOp::Rename { .. } => target,
        UpdateOp::Insert { pos, .. } if !pos.is_sibling() => target,
        _ => doc.parent(target).unwrap_or(target),
    }
}

/// Adds `sign` (±1) times every element label under `node` to `out`.
fn shift_subtree_labels(doc: &Document, node: NodeId, sign: i64, out: &mut HashMap<Sym, i64>) {
    for n in doc.descendants_or_self(node) {
        if let NodeKind::Element { name, .. } = doc.kind(n) {
            *out.entry(*name).or_insert(0) += sign;
        }
    }
}

/// The full element-label histogram of `doc` — the load-time seed the
/// write path then shifts incrementally ([`ServeStats::seed_doc_labels`]).
fn doc_label_histogram(doc: &Document) -> HashMap<Sym, i64> {
    let mut hist = HashMap::new();
    if let Some(r) = doc.root() {
        shift_subtree_labels(doc, r, 1, &mut hist);
    }
    hist
}

/// Folds one rule's exact label-count delta into `out`, read off the
/// pre-apply tree: subtrees an op removes count negative, subtrees it
/// grafts count positive once per target, and a rename moves one count
/// per matched element from the old name to the new.
fn shift_update_labels(
    doc: &Document,
    targets: &[NodeId],
    op: &UpdateOp,
    out: &mut HashMap<Sym, i64>,
) {
    match op {
        UpdateOp::Delete => {
            for &t in targets {
                shift_subtree_labels(doc, t, -1, out);
            }
        }
        UpdateOp::Rename { name } => {
            for &t in targets {
                if let NodeKind::Element { name: old, .. } = doc.kind(t) {
                    *out.entry(*old).or_insert(0) -= 1;
                    *out.entry(*name).or_insert(0) += 1;
                }
            }
        }
        UpdateOp::Insert { elem, .. } => {
            if let Some(r) = elem.root() {
                for _ in targets {
                    shift_subtree_labels(elem, r, 1, out);
                }
            }
        }
        UpdateOp::Replace { elem } => {
            for &t in targets {
                shift_subtree_labels(doc, t, -1, out);
            }
            if let Some(r) = elem.root() {
                for _ in targets {
                    shift_subtree_labels(elem, r, 1, out);
                }
            }
        }
    }
}

/// Provenance granularity for one materialization: aim for fragments
/// of ~1/64th of the base document, clamped so tiny documents still
/// split (exercising the patch path) and huge ones don't track tens of
/// thousands of fragments.
fn frag_leaf_limit(base: &Document) -> usize {
    (base.node_count() / 64).clamp(8, 512)
}

/// What [`Server::explain`] reports: the plan a `VIEW view doc`
/// request would run right now, with the evidence behind each choice.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The view being explained.
    pub view: String,
    /// The target document.
    pub doc: String,
    /// The document's current version (what cache residency is keyed
    /// on).
    pub version: u64,
    /// The view definition's generation.
    pub generation: u64,
    /// Human-readable document shape (`memory nodes=…` / `file
    /// bytes=…`).
    pub shape: String,
    /// View-result-cache residency at (version, generation): `None`
    /// when the (source, body) combination is not cacheable at all.
    pub result_cached: Option<bool>,
    /// Per-link plans, in evaluation order.
    pub links: Vec<LinkPlan>,
}

/// One link's plan inside an [`Explanation`].
#[derive(Debug, Clone)]
pub struct LinkPlan {
    /// Position in the view's chain.
    pub index: usize,
    /// The method the planner would pick.
    pub method: Method,
    /// True when the method is forced by the shape (file → streaming,
    /// multi-transform → fused top-down), not chosen adaptively.
    pub fixed: bool,
    /// True when the plan was made against an estimated shape (later
    /// chain links, unparsed files) rather than the exact input.
    pub approximate: bool,
    /// Evidence per candidate method, in prior order.
    pub candidates: Vec<CandidateEvidence>,
}

/// The latency evidence [`Server::explain`] holds for one candidate
/// method: the planner's EWMA feedback cell and the observability
/// layer's evaluation-latency histogram, either absent when unsampled.
#[derive(Debug, Clone)]
pub struct CandidateEvidence {
    /// The candidate method.
    pub method: Method,
    /// Planner feedback: `(ns_per_node, samples)` in the consulted size
    /// class, if sampled.
    pub ewma: Option<(f64, u64)>,
    /// Evaluation-latency digest for this method across all requests,
    /// if any were recorded (absent with tracing off).
    pub histogram: Option<HistogramSnapshot>,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "explain view={} doc={} version={} generation={} shape[{}] result_cache={}",
            self.view,
            self.doc,
            self.version,
            self.generation,
            self.shape,
            match self.result_cached {
                Some(true) => "hit",
                Some(false) => "miss",
                None => "n/a",
            }
        )?;
        for link in &self.links {
            write!(
                f,
                "\nlink {}: method={}{}{}",
                link.index,
                link.method,
                if link.fixed { " (fixed)" } else { "" },
                if link.approximate {
                    " (approximate)"
                } else {
                    ""
                }
            )?;
            for c in &link.candidates {
                write!(f, "\n  {}:", c.method)?;
                match c.ewma {
                    Some((ns, samples)) => write!(f, " ewma={ns:.1}ns/node samples={samples}")?,
                    None => write!(f, " ewma=unsampled")?,
                }
                match &c.histogram {
                    Some(h) => write!(
                        f,
                        " hist n={} p50={}µs p90={}µs p99={}µs max={}µs",
                        h.count, h.p50, h.p90, h.p99, h.max
                    )?,
                    None => write!(f, " hist=empty")?,
                }
            }
        }
        Ok(())
    }
}

/// What [`Server::analyze`] reports: the registration-time static
/// analysis of one view, exactly as the hot paths consume it. Nothing
/// here is recomputed — the report *is* the stored
/// [`xust_analyze::ViewAnalysis`] plus the containment-class
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The view analyzed.
    pub view: String,
    /// The document the view reads.
    pub doc: String,
    /// True when no rule can ever select a node (the view is the
    /// identity transform; it is excluded from caching and grouping).
    pub dead: bool,
    /// Transform rules in the definition (chain links or fused rules).
    pub rules: usize,
    /// Selecting-NFA states, summed over rules.
    pub sel_states: usize,
    /// Dead selecting-NFA states (unreachable or non-co-reachable).
    pub sel_dead: usize,
    /// Filtering-NFA states, summed over rules.
    pub filt_states: usize,
    /// Dead filtering-NFA states.
    pub filt_dead: usize,
    /// Qualifier (sub-)terms eliminated by constant folding.
    pub folded_qualifiers: usize,
    /// The view's static alphabet, sorted (`*` marks a wildcard).
    pub alphabet: Vec<String>,
    /// Structural write-footprint bound, sorted; `None` = unbounded.
    pub structural: Option<Vec<String>>,
    /// Valued write-footprint bound, sorted; `None` = unbounded.
    pub valued: Option<Vec<String>>,
    /// The cache family (containment class) the definition landed in.
    pub cache_key: String,
    /// The family's cache generation.
    pub cache_generation: u64,
    /// Live views sharing this cache family (including this one).
    pub family_members: usize,
    /// Wall-clock cost of the registration-time analysis.
    pub micros: u64,
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bound = |b: &Option<Vec<String>>| match b {
            Some(labels) => format!("{{{}}}", labels.join(",")),
            None => "unbounded".to_string(),
        };
        write!(
            f,
            "analyze view={} doc={} dead={} rules={} analysis_micros={}",
            self.view, self.doc, self.dead, self.rules, self.micros
        )?;
        write!(
            f,
            "\nnfa: selecting states={} dead={} filtering states={} dead={} folded_qualifiers={}",
            self.sel_states,
            self.sel_dead,
            self.filt_states,
            self.filt_dead,
            self.folded_qualifiers
        )?;
        write!(f, "\nalphabet: {{{}}}", self.alphabet.join(","))?;
        write!(
            f,
            "\nfootprint: structural={} valued={}",
            bound(&self.structural),
            bound(&self.valued)
        )?;
        write!(
            f,
            "\nfamily: key={} generation={} members={}",
            self.cache_key, self.cache_generation, self.family_members
        )
    }
}

// ---- streaming sessions ----

impl Server {
    /// Opens a [`StreamingSession`]: the client streams a document as
    /// SAX events — twice, mirroring the two-pass discipline — and
    /// receives the transformed output incrementally. The input tree is
    /// **never materialized**; session memory is O(depth · |p|) + |Ld|
    /// regardless of document size.
    ///
    /// The transform is resolved through the prepared cache (repeat
    /// sessions skip parse + NFA construction), and the session pins a
    /// store snapshot for its lifetime so the server's epoch bookkeeping
    /// can prove abandoned sessions release their resources.
    pub fn begin_stream(&self, query: &str) -> Result<StreamingSession, ServeError> {
        use std::sync::atomic::Ordering::Relaxed; // lint: atomic-ok (stats counters only)
        self.inner.stats.requests.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        self.inner.stats.stream_sessions.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
        let stats = &self.inner.stats;
        let compiled = self.inner.transforms.get_or_try_insert(query, || {
            stats.compiles.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
            CompiledTransform::parse(query).map_err(|e| ServeError::Parse(e.to_string()))
        });
        let (ct, hit) = match compiled {
            Ok(v) => v,
            Err(e) => {
                stats.failures.fetch_add(1, Relaxed); // relaxed: monotone counter; no data published
                stats.record_verb(Verb::Stream, false);
                return Err(e);
            }
        };
        stats.record_verb(Verb::Stream, true);
        self.note_cache(hit);
        let stream = ct.stream(LdStorage::Memory);
        Ok(StreamingSession {
            server: self.clone(),
            stream,
            writer: SaxWriter::new(Vec::new()),
            started: Instant::now(),
            cache_hit: hit,
            _snapshot: self.inner.docs.snapshot(),
        })
    }
}

/// One client's streaming transform session (see
/// [`Server::begin_stream`]). Protocol:
///
/// 1. [`feed`](StreamingSession::feed) every event of the document
///    (pass 1 — qualifier evaluation);
/// 2. [`begin_replay`](StreamingSession::begin_replay) once;
/// 3. [`replay`](StreamingSession::replay) the same events again; each
///    call returns the transformed output bytes produced *so far* —
///    ship them to the client immediately (backpressure lives in the
///    caller's writer);
/// 4. [`finish`](StreamingSession::finish) to flush the tail and
///    collect statistics.
///
/// Dropping a session at any point — client disconnect, malformed
/// input, truncation — releases its store snapshot and leaves the
/// server untouched; the error paths are exercised by
/// `tests/failure_injection.rs`.
pub struct StreamingSession {
    server: Server,
    stream: TransformStream,
    writer: SaxWriter<Vec<u8>>,
    started: Instant,
    cache_hit: bool,
    /// Pins the store epoch for the session's lifetime; released on drop.
    _snapshot: StoreSnapshot,
}

/// Adapter: a [`xust_core::EventSink`] writing into the session's
/// drainable buffer.
struct SessionSink<'a> {
    w: &'a mut SaxWriter<Vec<u8>>,
}

impl xust_core::EventSink for SessionSink<'_> {
    fn event(&mut self, ev: SaxEvent) -> Result<(), xust_core::SaxTransformError> {
        self.w
            .write_event(&ev)
            .map_err(xust_core::SaxTransformError::Sax)
    }
}

impl StreamingSession {
    /// True when the transform came from the prepared cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Feeds one pass-1 event.
    pub fn feed(&mut self, ev: SaxEvent) -> Result<(), ServeError> {
        self.stream
            .feed(ev)
            .map_err(|e| ServeError::Eval(e.to_string()))
    }

    /// Seals pass 1 and arms the replay. Errors on truncated input.
    pub fn begin_replay(&mut self) -> Result<(), ServeError> {
        self.stream
            .begin_replay()
            .map_err(|e| ServeError::Eval(e.to_string()))
    }

    /// Feeds one pass-2 event and drains whatever transformed output it
    /// produced (possibly empty — e.g. inside a deleted subtree).
    pub fn replay(&mut self, ev: SaxEvent) -> Result<Vec<u8>, ServeError> {
        let mut sink = SessionSink {
            w: &mut self.writer,
        };
        self.stream
            .replay(ev, &mut sink)
            .map_err(|e| ServeError::Eval(e.to_string()))?;
        Ok(std::mem::take(self.writer.get_mut()))
    }

    /// Transformed output bytes emitted so far.
    pub fn bytes_emitted(&self) -> u64 {
        self.writer.bytes_written()
    }

    /// Wall-clock time since the session was opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Ends the session: validates the output is balanced, counts the
    /// execution, and returns `(tail output, streaming statistics)`.
    ///
    /// The session's wall-clock is *client-paced* (the caller feeds
    /// events at whatever rate the network delivers them), so it is
    /// deliberately NOT fed into the adaptive planner's latency model —
    /// one slow client must not make `TwoPassSax` look slow to the
    /// planner for everyone else.
    pub fn finish(mut self) -> Result<(Vec<u8>, SaxStats), ServeError> {
        let mut sink = SessionSink {
            w: &mut self.writer,
        };
        let stats = self
            .stream
            .finish(&mut sink)
            .map_err(|e| ServeError::Eval(e.to_string()))?;
        let tail = std::mem::take(self.writer.get_mut());
        // An unbalanced *output* (truncated pass 2) is caught by
        // TransformStream::finish above; the writer depth double-checks.
        debug_assert_eq!(self.writer.depth(), 0);
        self.server.inner.stats.count_method(Method::TwoPassSax);
        Ok((tail, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A worker panic in `execute_batch` must land in the same
    /// accounting a failed request gets — the per-verb error series,
    /// the failure total, and a trace bracket — not just map to an
    /// error after the pool returns. (The panic itself can't be
    /// provoked through the public surface — evaluation is panic-free
    /// by design — so the epilogue is pinned down directly.)
    #[test]
    fn worker_panic_accounting_matches_failed_requests() {
        let server = Server::builder().threads(1).build();
        let traced_before = server.inner.obs.requests_traced();
        let e = server.account_worker_panic(Verb::View, Some("v"), "v/db");
        assert!(matches!(e, ServeError::Eval(_)));
        assert_eq!(
            server.inner.stats.verb_counts(Verb::View),
            (1, 1),
            "the panicked item must appear in the verb's request and error series"
        );
        assert_eq!(server.stats().failures, 1);
        assert_eq!(
            server.inner.obs.requests_traced(),
            traced_before + 1,
            "the panicked item must get a trace bracket"
        );
        assert!(server.traces(4).contains("v/db"), "{}", server.traces(4));
    }
}
