//! Lock-free service counters.
//!
//! Every counter is a relaxed atomic: the numbers are observability
//! data, not synchronization. The concurrency tests use them to prove
//! that cache hits really skip parse + NFA construction (the `compiles`
//! counter stays at the number of *distinct* queries while `cache_hits`
//! grows with request volume).

use std::sync::atomic::{AtomicU64, Ordering};

use xust_core::Method;

const N_METHODS: usize = Method::ALL.len();

fn method_index(m: Method) -> usize {
    Method::ALL
        .iter()
        .position(|&x| x == m)
        .expect("Method::ALL is exhaustive")
}

/// Counters for one [`crate::Server`].
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests accepted (all kinds).
    pub requests: AtomicU64,
    /// Requests that returned an error.
    pub failures: AtomicU64,
    /// Prepared-cache hits (transform or composed query reused).
    pub cache_hits: AtomicU64,
    /// Prepared-cache misses (entry had to be built).
    pub cache_misses: AtomicU64,
    /// Transform parse + NFA compilations actually performed.
    pub compiles: AtomicU64,
    /// User-query compositions actually performed.
    pub compositions: AtomicU64,
    /// View materializations served.
    pub view_requests: AtomicU64,
    /// User queries answered against a virtual view.
    pub query_requests: AtomicU64,
    /// Ad-hoc transform executions.
    pub transform_requests: AtomicU64,
    /// Batched entry-point invocations.
    pub batches: AtomicU64,
    per_method: [AtomicU64; N_METHODS],
    /// Total busy time across requests, in microseconds.
    pub busy_micros: AtomicU64,
}

impl ServeStats {
    /// Records one execution with `method`.
    pub fn count_method(&self, m: Method) {
        self.per_method[method_index(m)].fetch_add(1, Ordering::Relaxed);
    }

    /// Executions recorded for `method`.
    pub fn method_count(&self, m: Method) -> u64 {
        self.per_method[method_index(m)].load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            compositions: self.compositions.load(Ordering::Relaxed),
            view_requests: self.view_requests.load(Ordering::Relaxed),
            query_requests: self.query_requests.load(Ordering::Relaxed),
            transform_requests: self.transform_requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_micros: self.busy_micros.load(Ordering::Relaxed),
            per_method: Method::ALL.map(|m| (m, self.method_count(m))),
        }
    }
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Requests that errored.
    pub failures: u64,
    /// Prepared-cache hits.
    pub cache_hits: u64,
    /// Prepared-cache misses.
    pub cache_misses: u64,
    /// Parse + NFA compilations performed.
    pub compiles: u64,
    /// Compositions performed.
    pub compositions: u64,
    /// View materializations.
    pub view_requests: u64,
    /// Virtual-view queries.
    pub query_requests: u64,
    /// Ad-hoc transforms.
    pub transform_requests: u64,
    /// Batch invocations.
    pub batches: u64,
    /// Total busy time (µs).
    pub busy_micros: u64,
    /// Executions per evaluation method.
    pub per_method: [(Method, u64); N_METHODS],
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} failures={} views={} queries={} transforms={} batches={}",
            self.requests,
            self.failures,
            self.view_requests,
            self.query_requests,
            self.transform_requests,
            self.batches
        )?;
        writeln!(
            f,
            "cache: hits={} misses={} compiles={} compositions={}",
            self.cache_hits, self.cache_misses, self.compiles, self.compositions
        )?;
        write!(f, "methods:")?;
        for (m, n) in &self.per_method {
            if *n > 0 {
                write!(f, " {m}={n}")?;
            }
        }
        write!(f, " busy={}µs", self.busy_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roundtrip() {
        let s = ServeStats::default();
        s.requests.fetch_add(3, Ordering::Relaxed);
        s.count_method(Method::TwoPass);
        s.count_method(Method::TwoPass);
        s.count_method(Method::Naive);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(s.method_count(Method::TwoPass), 2);
        assert_eq!(s.method_count(Method::Naive), 1);
        assert_eq!(s.method_count(Method::TopDown), 0);
        let text = snap.to_string();
        assert!(text.contains("requests=3"));
        assert!(text.contains("TD-BU=2"));
    }
}
