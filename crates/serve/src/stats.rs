//! Lock-free service counters.
//!
//! Every counter is a relaxed atomic: the numbers are observability
//! data, not synchronization. The concurrency tests use them to prove
//! that cache hits really skip parse + NFA construction (the `compiles`
//! counter stays at the number of *distinct* queries while `cache_hits`
//! grows with request volume).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use xust_core::{Method, Sym};

/// A latency EWMA whose whole state — sample count and smoothed value —
/// lives in **one** atomic word, merged with a single CAS loop.
///
/// Multiple executor workers finishing requests for the same view report
/// concurrently. A read-modify-write over two separate fields (count +
/// value) loses updates under that race: two workers read the same old
/// state, both fold their sample in, and one fold vanishes — the sample
/// count drifts below the number of reports and the EWMA over- or
/// under-weights history. Packing `(count: u32, value: f32)` into one
/// `u64` and installing updates with `compare_exchange_weak` makes the
/// merge atomic: every report is folded exactly once, in *some* total
/// order (EWMA folds don't commute, but any interleaving is a valid
/// sample order — what matters is that none is lost).
#[derive(Debug, Default)]
pub struct EwmaCell {
    /// `(count as u64) << 32 | f32::to_bits(value)`.
    state: AtomicU64,
}

impl EwmaCell {
    const fn pack(count: u32, value: f32) -> u64 {
        ((count as u64) << 32) | value.to_bits() as u64
    }

    const fn unpack(state: u64) -> (u32, f32) {
        ((state >> 32) as u32, f32::from_bits(state as u32))
    }

    /// Folds one sample in atomically. `weight` is the new-sample weight
    /// in (0, 1]; the first sample installs itself directly. Returns the
    /// post-fold `(count, value)`.
    pub fn record(&self, sample: f32, weight: f32) -> (u32, f32) {
        let mut cur = ld(&self.state);
        loop {
            let (count, value) = Self::unpack(cur);
            let next_value = if count == 0 {
                sample
            } else {
                weight * sample + (1.0 - weight) * value
            };
            let next = Self::pack(count.saturating_add(1), next_value);
            match self
                .state
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) // relaxed: failure ordering; the retry reloads
            {
                Ok(_) => return Self::unpack(next),
                Err(seen) => cur = seen,
            }
        }
    }

    /// `(count, value)` as of now; `None` before the first sample.
    pub fn get(&self) -> Option<(u32, f32)> {
        let (count, value) = Self::unpack(self.state.load(Ordering::Acquire));
        (count > 0).then_some((count, value))
    }
}

const N_METHODS: usize = Method::ALL.len();

fn method_index(m: Method) -> usize {
    Method::ALL
        .iter()
        .position(|&x| x == m)
        .expect("Method::ALL is exhaustive")
}

/// The protocol verb a request arrived under. One counter pair per
/// verb means a failed `UPDATE` and a failed `QUERY` are
/// distinguishable in `STATS`/`METRICS` (before this, both were just
/// `failures`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// `VIEW` — materialize a view.
    View,
    /// `QUERY` — answer a user query over a virtual view.
    Query,
    /// `TRANSFORM` — run an ad-hoc transform.
    Transform,
    /// `UPDATE` — live write through the update path.
    Update,
    /// `STREAM` — open a streaming transform session.
    Stream,
    /// `LOAD` — load or reload a document.
    Load,
    /// `REMOVE` — remove a document.
    Remove,
    /// `METRICS` — metrics exposition.
    Metrics,
    /// `TRACE` — recent/slowest request traces.
    Trace,
    /// `EXPLAIN` — plan report without execution.
    Explain,
    /// `ANALYZE` — registration-time static-analysis report.
    Analyze,
    /// Connection setup — not a wire verb; its error counter records
    /// clients dropped before the protocol loop started (e.g. a failed
    /// `try_clone` after accept), so `METRICS` sees every lost client.
    Conn,
}

impl Verb {
    /// Every verb, in fixed (index) order.
    pub const ALL: [Verb; 12] = [
        Verb::View,
        Verb::Query,
        Verb::Transform,
        Verb::Update,
        Verb::Stream,
        Verb::Load,
        Verb::Remove,
        Verb::Metrics,
        Verb::Trace,
        Verb::Explain,
        Verb::Analyze,
        Verb::Conn,
    ];

    /// Lower-case verb name, as rendered in `STATS` and `METRICS`.
    pub fn name(self) -> &'static str {
        match self {
            Verb::View => "view",
            Verb::Query => "query",
            Verb::Transform => "transform",
            Verb::Update => "update",
            Verb::Stream => "stream",
            Verb::Load => "load",
            Verb::Remove => "remove",
            Verb::Metrics => "metrics",
            Verb::Trace => "trace",
            Verb::Explain => "explain",
            Verb::Analyze => "analyze",
            Verb::Conn => "conn",
        }
    }

    /// This verb's position in [`Verb::ALL`] (for per-verb arrays).
    pub fn index(self) -> usize {
        Verb::ALL
            .iter()
            .position(|&v| v == self)
            .expect("Verb::ALL is exhaustive")
    }
}

impl std::fmt::Display for Verb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Request/error counters for one [`Verb`].
#[derive(Debug, Default)]
pub struct VerbCounters {
    /// Requests that arrived under this verb.
    pub requests: AtomicU64,
    /// Of those, how many returned an error.
    pub errors: AtomicU64,
}

/// Point-in-time read of one stats counter.
// relaxed: counters are independent monotone values; readers either
// tolerate staleness (snapshots, reports) or re-validate with a CAS.
fn ld(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
}

/// Counters for one [`crate::Server`].
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests accepted (all kinds).
    pub requests: AtomicU64,
    /// Requests that returned an error.
    pub failures: AtomicU64,
    /// Prepared-cache hits (transform or composed query reused).
    pub cache_hits: AtomicU64,
    /// Prepared-cache misses (entry had to be built).
    pub cache_misses: AtomicU64,
    /// Transform parse + NFA compilations actually performed.
    pub compiles: AtomicU64,
    /// User-query compositions actually performed.
    pub compositions: AtomicU64,
    /// View materializations served.
    pub view_requests: AtomicU64,
    /// User queries answered against a virtual view.
    pub query_requests: AtomicU64,
    /// Ad-hoc transform executions.
    pub transform_requests: AtomicU64,
    /// Batched entry-point invocations.
    pub batches: AtomicU64,
    /// Items executed through batched entry points.
    pub batch_items: AtomicU64,
    /// Work-stealing events across batch executions.
    pub batch_steals: AtomicU64,
    /// Streaming sessions opened.
    pub stream_sessions: AtomicU64,
    /// Live `UPDATE` writes accepted (applied and installed).
    pub update_requests: AtomicU64,
    /// View-result cache entries retained across a write (delta applied
    /// in place, no recomputation).
    pub delta_retained: AtomicU64,
    /// Of the retained entries, how many were answered by the static
    /// commutation table alone (no dynamic three-way intersection test
    /// ran). Always `<= delta_retained`.
    pub static_retained: AtomicU64,
    /// View-result cache entries that failed the relevance test but
    /// were **patched in place** through their provenance maps instead
    /// of dropped (the third maintenance fate).
    pub delta_patched: AtomicU64,
    /// Result fragments spliced across all patch fates.
    pub patched_fragments: AtomicU64,
    /// View-result cache entries invalidated by a write (recomputed
    /// lazily on next request).
    pub delta_recomputed: AtomicU64,
    /// Intact write-ahead-log records replayed at attach time.
    pub wal_recovered: AtomicU64,
    /// WAL recoveries that found — and dropped — a torn tail frame
    /// (what a crash mid-append leaves behind).
    pub wal_truncations: AtomicU64,
    /// One-pass shared evaluations run: each counts a single document
    /// sweep that produced results for every view riding it (write-path
    /// recompute sweeps and grouped batch evaluations alike).
    pub shared_passes: AtomicU64,
    /// Views whose results were produced by a shared pass instead of a
    /// private per-view evaluation. `shared_pass_views /
    /// shared_passes` is the average factorisation width.
    pub shared_pass_views: AtomicU64,
    per_method: [AtomicU64; N_METHODS],
    per_verb: [VerbCounters; Verb::ALL.len()],
    /// Total busy time across requests, in microseconds.
    pub busy_micros: AtomicU64,
    /// Per-view latency EWMAs (µs), merged lock-free by [`EwmaCell`].
    /// The map itself is read-mostly: a view's cell is created once and
    /// then only its atomic word changes.
    view_latency: RwLock<HashMap<String, Arc<EwmaCell>>>,
    /// Per-view delta-maintenance outcomes: `(retained, recomputed)`.
    view_delta: RwLock<HashMap<String, Arc<DeltaCell>>>,
    /// Per-document delta-maintenance outcomes: `(retained,
    /// recomputed)` for writes *to that document*. With the result
    /// cache keyed by per-document versions, a document's counters move
    /// only when it is written — a hot writer shows up here alone, and
    /// its shard neighbours' rows staying at zero is the observable
    /// proof that neighbour invalidation is gone (there is no `stale`
    /// counter any more because there is no stale path).
    doc_delta: RwLock<HashMap<String, Arc<DeltaCell>>>,
    /// Per-document element-label histograms (`label → live count`),
    /// seeded when an in-memory document is (re)loaded and shifted
    /// incrementally by every applied write — the selectivity raw
    /// material `STATS` surfaces per document.
    // lock-order: leaf mutex — nothing else is ever taken while held.
    doc_labels: Mutex<HashMap<String, HashMap<Sym, i64>>>,
}

/// Per-view delta-maintenance counters.
#[derive(Debug, Default)]
pub struct DeltaCell {
    /// Writes this view's cached result survived (maintained in place).
    pub retained: AtomicU64,
    /// Writes this view's cached result absorbed through an in-place
    /// provenance patch (failed the relevance test, was not dropped).
    pub patched: AtomicU64,
    /// Result fragments spliced into this row's cached results (only
    /// per-document rows track this; per-view rows leave it at zero).
    pub patched_fragments: AtomicU64,
    /// Writes that invalidated this view's cached result.
    pub recomputed: AtomicU64,
}

/// New-sample weight for the per-view latency EWMA.
const VIEW_EWMA_WEIGHT: f32 = 0.25;

/// The shared get-or-create for the keyed counter maps: a read-lock
/// lookup on the hot path, falling back to a write-lock insert the
/// first time a key reports. Every keyed map in [`ServeStats`] goes
/// through here so the locking discipline lives in one place.
fn cell_of<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, key: &str) -> Arc<T> {
    if let Some(cell) = map.read().expect("stats lock poisoned").get(key) {
        return Arc::clone(cell);
    }
    let mut map = map.write().expect("stats lock poisoned");
    Arc::clone(map.entry(key.to_string()).or_default())
}

/// One histogram row in reporting order: count descending, then label
/// ascending (stable output for tests and operators alike).
fn sorted_labels(hist: &HashMap<Sym, i64>) -> Vec<(String, i64)> {
    let mut v: Vec<(String, i64)> = hist
        .iter()
        .map(|(l, &n)| (l.as_str().to_string(), n))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

impl ServeStats {
    /// Folds one observed service latency for `view` into its EWMA.
    /// Safe (and lossless) to call from any number of executor workers
    /// at once — the merge is a single CAS loop per sample.
    pub fn record_view_latency(&self, view: &str, micros: f64) {
        cell_of(&self.view_latency, view).record(micros as f32, VIEW_EWMA_WEIGHT);
    }

    /// The latency EWMA for `view`: `(samples, micros)`, if sampled.
    pub fn view_latency(&self, view: &str) -> Option<(u32, f32)> {
        self.view_latency
            .read()
            .expect("stats lock poisoned")
            .get(view)
            .and_then(|c| c.get())
    }

    /// Records one delta-maintenance outcome for `view` (and the global
    /// totals): `retained == true` means the cached result survived the
    /// write, `false` that it was dropped for lazy recomputation.
    pub fn record_view_delta(&self, view: &str, retained: bool) {
        if retained {
            self.delta_retained.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        } else {
            self.delta_recomputed.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        }
        let cell = cell_of(&self.view_delta, view);
        if retained {
            cell.retained.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        } else {
            cell.recomputed.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        }
    }

    /// Records one patch-fate outcome for `view` (and the global
    /// total): the view's cached result failed the relevance test but
    /// was spliced in place through its provenance map.
    pub fn record_view_patched(&self, view: &str) {
        self.delta_patched.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        cell_of(&self.view_delta, view)
            .patched
            .fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
    }

    /// The delta counters for `view`: `(retained, patched, recomputed)`,
    /// if any write ever examined a cached result of this view.
    pub fn view_delta(&self, view: &str) -> Option<(u64, u64, u64)> {
        self.view_delta
            .read()
            .expect("stats lock poisoned")
            .get(view)
            .map(|c| (ld(&c.retained), ld(&c.patched), ld(&c.recomputed)))
    }

    /// Records one write's maintenance outcome for the *written*
    /// document: how many of its cached entries were retained, patched
    /// in place (and with how many spliced fragments), and dropped for
    /// recomputation. Called once per write (even when every count is
    /// zero — the row proves the write was examined).
    pub fn record_doc_delta(
        &self,
        doc: &str,
        retained: u64,
        patched: u64,
        patched_fragments: u64,
        recomputed: u64,
    ) {
        let cell = cell_of(&self.doc_delta, doc);
        cell.retained.fetch_add(retained, Ordering::Relaxed); // relaxed: monotone counter; no data published
        cell.patched.fetch_add(patched, Ordering::Relaxed); // relaxed: monotone counter; no data published
        cell.patched_fragments
            .fetch_add(patched_fragments, Ordering::Relaxed); // relaxed: monotone counter; no data published
        cell.recomputed.fetch_add(recomputed, Ordering::Relaxed); // relaxed: monotone counter; no data published
    }

    /// Drops `doc`'s per-document delta row and label histogram. Called
    /// when the document is removed from the store: without this, a
    /// server with document-name churn (load → write → remove cycles)
    /// accumulates one permanent row per ever-written name — unbounded
    /// memory and an ever-growing `STATS` reply. A re-created name
    /// starts a fresh row (its versions are a new lineage; so are its
    /// counters).
    pub fn forget_doc(&self, doc: &str) {
        self.doc_delta
            .write()
            .expect("stats lock poisoned")
            .remove(doc);
        self.doc_labels
            .lock()
            .expect("stats lock poisoned")
            .remove(doc);
    }

    /// The delta counters for writes to `doc`: `(retained, patched,
    /// patched_fragments, recomputed)`, if `doc` was ever written
    /// through the update path.
    pub fn doc_delta(&self, doc: &str) -> Option<(u64, u64, u64, u64)> {
        self.doc_delta
            .read()
            .expect("stats lock poisoned")
            .get(doc)
            .map(|c| {
                (
                    ld(&c.retained),
                    ld(&c.patched),
                    ld(&c.patched_fragments),
                    ld(&c.recomputed),
                )
            })
    }

    /// Installs `doc`'s label histogram wholesale — called when an
    /// in-memory document is loaded or reloaded (a reload is an
    /// unbounded delta; the seed is the new ground truth).
    pub fn seed_doc_labels(&self, doc: &str, hist: HashMap<Sym, i64>) {
        self.doc_labels
            .lock()
            .expect("stats lock poisoned")
            .insert(doc.to_string(), hist);
    }

    /// Folds one write's label-count shift into `doc`'s histogram;
    /// labels whose count returns to zero are dropped from the row. A
    /// shift for a document that was never seeded (file-backed, or
    /// racing a removal) is discarded — there is no ground truth to
    /// shift.
    pub fn shift_doc_labels(&self, doc: &str, delta: &HashMap<Sym, i64>) {
        let mut map = self.doc_labels.lock().expect("stats lock poisoned");
        let Some(hist) = map.get_mut(doc) else {
            return;
        };
        for (&label, &d) in delta {
            if d == 0 {
                continue;
            }
            let slot = hist.entry(label).or_insert(0);
            *slot += d;
            if *slot == 0 {
                hist.remove(&label);
            }
        }
    }

    /// `doc`'s element-label histogram, sorted by count descending then
    /// label ascending — `None` when the document was never seeded.
    pub fn doc_labels(&self, doc: &str) -> Option<Vec<(String, i64)>> {
        let map = self.doc_labels.lock().expect("stats lock poisoned");
        map.get(doc).map(sorted_labels)
    }

    /// Records one request under `verb`; `ok == false` also bumps the
    /// verb's error counter.
    pub fn record_verb(&self, verb: Verb, ok: bool) {
        let cell = &self.per_verb[verb.index()];
        cell.requests.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        if !ok {
            cell.errors.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        }
    }

    /// `(requests, errors)` recorded for `verb`.
    pub fn verb_counts(&self, verb: Verb) -> (u64, u64) {
        let cell = &self.per_verb[verb.index()];
        (ld(&cell.requests), ld(&cell.errors))
    }

    /// Records one execution with `method`.
    pub fn count_method(&self, m: Method) {
        self.per_method[method_index(m)].fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
    }

    /// Executions recorded for `method`.
    pub fn method_count(&self, m: Method) -> u64 {
        ld(&self.per_method[method_index(m)])
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: ld(&self.requests),
            failures: ld(&self.failures),
            cache_hits: ld(&self.cache_hits),
            cache_misses: ld(&self.cache_misses),
            compiles: ld(&self.compiles),
            compositions: ld(&self.compositions),
            view_requests: ld(&self.view_requests),
            query_requests: ld(&self.query_requests),
            transform_requests: ld(&self.transform_requests),
            batches: ld(&self.batches),
            batch_items: ld(&self.batch_items),
            batch_steals: ld(&self.batch_steals),
            interned_labels: xust_intern::Interner::global().len(),
            stream_sessions: ld(&self.stream_sessions),
            update_requests: ld(&self.update_requests),
            delta_retained: ld(&self.delta_retained),
            static_retained: ld(&self.static_retained),
            delta_patched: ld(&self.delta_patched),
            patched_fragments: ld(&self.patched_fragments),
            delta_recomputed: ld(&self.delta_recomputed),
            wal_recovered: ld(&self.wal_recovered),
            wal_truncations: ld(&self.wal_truncations),
            shared_passes: ld(&self.shared_passes),
            shared_pass_views: ld(&self.shared_pass_views),
            // The result cache is its own source of truth for hit/miss
            // counts; `Server::stats` overlays them (a bare `ServeStats`
            // has no cache attached).
            result_hits: 0,
            result_misses: 0,
            busy_micros: ld(&self.busy_micros),
            per_method: Method::ALL.map(|m| (m, self.method_count(m))),
            verbs: {
                let mut v: Vec<(Verb, u64, u64)> = Verb::ALL
                    .iter()
                    .map(|&verb| {
                        let (r, e) = self.verb_counts(verb);
                        (verb, r, e)
                    })
                    .filter(|&(_, r, e)| r > 0 || e > 0)
                    .collect();
                v.sort_by(|a, b| a.0.name().cmp(b.0.name()));
                v
            },
            view_delta: {
                let map = self.view_delta.read().expect("stats lock poisoned");
                let mut v: Vec<(String, u64, u64, u64)> = map
                    .iter()
                    .map(|(k, c)| {
                        (
                            k.clone(),
                            ld(&c.retained),
                            ld(&c.patched),
                            ld(&c.recomputed),
                        )
                    })
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
            doc_delta: {
                let map = self.doc_delta.read().expect("stats lock poisoned");
                let mut v: Vec<(String, u64, u64, u64, u64)> = map
                    .iter()
                    .map(|(k, c)| {
                        (
                            k.clone(),
                            ld(&c.retained),
                            ld(&c.patched),
                            ld(&c.patched_fragments),
                            ld(&c.recomputed),
                        )
                    })
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
            doc_labels: {
                let map = self.doc_labels.lock().expect("stats lock poisoned");
                let mut v: Vec<(String, Vec<(String, i64)>)> = map
                    .iter()
                    .map(|(doc, hist)| (doc.clone(), sorted_labels(hist)))
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
            view_latency: {
                let map = self.view_latency.read().expect("stats lock poisoned");
                let mut v: Vec<(String, u32, f32)> = map
                    .iter()
                    .filter_map(|(k, c)| c.get().map(|(n, e)| (k.clone(), n, e)))
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            },
        }
    }
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Requests that errored.
    pub failures: u64,
    /// Prepared-cache hits.
    pub cache_hits: u64,
    /// Prepared-cache misses.
    pub cache_misses: u64,
    /// Parse + NFA compilations performed.
    pub compiles: u64,
    /// Compositions performed.
    pub compositions: u64,
    /// View materializations.
    pub view_requests: u64,
    /// Virtual-view queries.
    pub query_requests: u64,
    /// Ad-hoc transforms.
    pub transform_requests: u64,
    /// Batch invocations.
    pub batches: u64,
    /// Items executed through batched entry points.
    pub batch_items: u64,
    /// Work-stealing events across batch executions.
    pub batch_steals: u64,
    /// Distinct labels in the shared interner at snapshot time — the
    /// vocabulary-growth gauge an operator watches when untrusted
    /// documents can mint fresh element/attribute names (the interner
    /// never shrinks; see DESIGN.md "Interning").
    pub interned_labels: usize,
    /// Streaming sessions opened.
    pub stream_sessions: u64,
    /// Live `UPDATE` writes accepted.
    pub update_requests: u64,
    /// View-result cache entries retained across writes (maintained in
    /// place — the delta-aware win).
    pub delta_retained: u64,
    /// Of those, entries retained on the static commutation table's
    /// verdict alone (registration-time analysis; no dynamic test ran).
    pub static_retained: u64,
    /// Entries that failed the relevance test but were patched in place
    /// through their provenance maps (the third maintenance fate).
    pub delta_patched: u64,
    /// Result fragments spliced across all patch fates.
    pub patched_fragments: u64,
    /// View-result cache entries invalidated by writes.
    pub delta_recomputed: u64,
    /// Intact WAL records replayed at attach time.
    pub wal_recovered: u64,
    /// WAL recoveries that dropped a torn tail.
    pub wal_truncations: u64,
    /// One-pass shared evaluations run (factorised sweeps).
    pub shared_passes: u64,
    /// Views whose results rode a shared pass.
    pub shared_pass_views: u64,
    /// View-result cache hits (sourced from
    /// [`ViewResultCache`](crate::ViewResultCache) by `Server::stats`).
    pub result_hits: u64,
    /// View-result cache misses (sourced likewise).
    pub result_misses: u64,
    /// Total busy time (µs).
    pub busy_micros: u64,
    /// Executions per evaluation method.
    pub per_method: [(Method, u64); N_METHODS],
    /// Per-verb request/error counts: `(verb, requests, errors)`,
    /// sorted by verb name, verbs with no traffic omitted.
    pub verbs: Vec<(Verb, u64, u64)>,
    /// Per-view latency EWMAs: `(view, samples, micros)`, sorted by view.
    pub view_latency: Vec<(String, u32, f32)>,
    /// Per-view delta outcomes: `(view, retained, patched,
    /// recomputed)`, sorted.
    pub view_delta: Vec<(String, u64, u64, u64)>,
    /// Per-document delta outcomes for writes to that document: `(doc,
    /// retained, patched, patched_fragments, recomputed)`, sorted. A
    /// document appears here iff it was written — neighbour rows never
    /// move.
    pub doc_delta: Vec<(String, u64, u64, u64, u64)>,
    /// Per-document element-label histograms: `(doc, [(label, count)])`
    /// sorted by document, rows sorted by count descending then label.
    /// Only seeded (in-memory) documents appear.
    pub doc_labels: Vec<(String, Vec<(String, i64)>)>,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests={} failures={} views={} queries={} transforms={} batches={}",
            self.requests,
            self.failures,
            self.view_requests,
            self.query_requests,
            self.transform_requests,
            self.batches
        )?;
        writeln!(
            f,
            "cache: hits={} misses={} compiles={} compositions={} interned_labels={}",
            self.cache_hits,
            self.cache_misses,
            self.compiles,
            self.compositions,
            self.interned_labels
        )?;
        writeln!(
            f,
            "batches: runs={} items={} steals={} stream_sessions={}",
            self.batches, self.batch_items, self.batch_steals, self.stream_sessions
        )?;
        writeln!(
            f,
            "updates: accepted={} delta_retained={} static_retained={} delta_patched={} patched_fragments={} delta_recomputed={} result_hits={} result_misses={}",
            self.update_requests,
            self.delta_retained,
            self.static_retained,
            self.delta_patched,
            self.patched_fragments,
            self.delta_recomputed,
            self.result_hits,
            self.result_misses
        )?;
        writeln!(
            f,
            "wal: recovered={} truncations={}",
            self.wal_recovered, self.wal_truncations
        )?;
        writeln!(
            f,
            "shared: passes={} shared_pass_views={}",
            self.shared_passes, self.shared_pass_views
        )?;
        write!(f, "methods:")?;
        for (m, n) in &self.per_method {
            if *n > 0 {
                write!(f, " {m}={n}")?;
            }
        }
        write!(f, " busy={}µs", self.busy_micros)?;
        for (view, n, ewma) in &self.view_latency {
            write!(f, "\nview {view}: ewma={ewma:.0}µs samples={n}")?;
        }
        for (view, retained, patched, recomputed) in &self.view_delta {
            write!(
                f,
                "\nview {view}: delta_retained={retained} delta_patched={patched} delta_recomputed={recomputed}"
            )?;
        }
        for (doc, retained, patched, fragments, recomputed) in &self.doc_delta {
            write!(
                f,
                "\ndoc {doc}: delta_retained={retained} delta_patched={patched} patched_fragments={fragments} delta_recomputed={recomputed}"
            )?;
        }
        for (doc, labels) in &self.doc_labels {
            write!(f, "\ndoc {doc} labels:")?;
            // The busiest labels carry the selectivity signal; a long
            // tail of one-offs would drown the reply.
            for (label, count) in labels.iter().take(12) {
                write!(f, " {label}={count}")?;
            }
            if labels.len() > 12 {
                write!(f, " (+{} more)", labels.len() - 12)?;
            }
        }
        for (verb, requests, errors) in &self.verbs {
            write!(f, "\nverb {verb}: requests={requests} errors={errors}")?;
        }
        Ok(())
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl StatsSnapshot {
    /// Renders the snapshot as one JSON object (stable key order, no
    /// trailing newline). The workspace deliberately has no serde; the
    /// shape is flat enough that hand-rolling stays honest.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(
            s,
            "\"requests\":{},\"failures\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"compiles\":{},\"compositions\":{},\"view_requests\":{},\"query_requests\":{},\
             \"transform_requests\":{},\"batches\":{},\"batch_items\":{},\"batch_steals\":{},\
             \"interned_labels\":{},\"stream_sessions\":{},\"update_requests\":{},\
             \"delta_retained\":{},\"static_retained\":{},\"delta_patched\":{},\
             \"patched_fragments\":{},\"delta_recomputed\":{},\"wal_recovered\":{},\
             \"wal_truncations\":{},\"shared_passes\":{},\
             \"shared_pass_views\":{},\"result_hits\":{},\
             \"result_misses\":{},\"busy_micros\":{}",
            self.requests,
            self.failures,
            self.cache_hits,
            self.cache_misses,
            self.compiles,
            self.compositions,
            self.view_requests,
            self.query_requests,
            self.transform_requests,
            self.batches,
            self.batch_items,
            self.batch_steals,
            self.interned_labels,
            self.stream_sessions,
            self.update_requests,
            self.delta_retained,
            self.static_retained,
            self.delta_patched,
            self.patched_fragments,
            self.delta_recomputed,
            self.wal_recovered,
            self.wal_truncations,
            self.shared_passes,
            self.shared_pass_views,
            self.result_hits,
            self.result_misses,
            self.busy_micros
        );
        s.push_str(",\"per_method\":[");
        let mut first = true;
        for (m, n) in &self.per_method {
            if *n == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "{{\"method\":\"{}\",\"count\":{n}}}",
                json_escape(&m.to_string())
            );
        }
        s.push_str("],\"verbs\":[");
        for (i, (verb, requests, errors)) in self.verbs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"verb\":\"{verb}\",\"requests\":{requests},\"errors\":{errors}}}"
            );
        }
        s.push_str("],\"view_latency\":[");
        for (i, (view, n, ewma)) in self.view_latency.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"view\":\"{}\",\"samples\":{n},\"ewma_micros\":{:.1}}}",
                json_escape(view),
                ewma
            );
        }
        s.push_str("],\"view_delta\":[");
        for (i, (view, retained, patched, recomputed)) in self.view_delta.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"view\":\"{}\",\"retained\":{retained},\"patched\":{patched},\
                 \"recomputed\":{recomputed}}}",
                json_escape(view)
            );
        }
        s.push_str("],\"doc_delta\":[");
        for (i, (doc, retained, patched, fragments, recomputed)) in
            self.doc_delta.iter().enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"doc\":\"{}\",\"retained\":{retained},\"patched\":{patched},\
                 \"patched_fragments\":{fragments},\"recomputed\":{recomputed}}}",
                json_escape(doc)
            );
        }
        s.push_str("],\"doc_labels\":[");
        for (i, (doc, labels)) in self.doc_labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"doc\":\"{}\",\"labels\":[", json_escape(doc));
            for (j, (label, count)) in labels.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"label\":\"{}\",\"count\":{count}}}",
                    json_escape(label)
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_core::intern;

    #[test]
    fn counters_roundtrip() {
        let s = ServeStats::default();
        s.requests.fetch_add(3, Ordering::Relaxed); // relaxed: monotone counter; no data published
        s.count_method(Method::TwoPass);
        s.count_method(Method::TwoPass);
        s.count_method(Method::Naive);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(s.method_count(Method::TwoPass), 2);
        assert_eq!(s.method_count(Method::Naive), 1);
        assert_eq!(s.method_count(Method::TopDown), 0);
        let text = snap.to_string();
        assert!(text.contains("requests=3"));
        assert!(text.contains("TD-BU=2"));
    }

    #[test]
    fn ewma_single_thread_matches_reference_fold() {
        let cell = EwmaCell::default();
        let samples = [100.0f32, 50.0, 200.0, 10.0, 400.0];
        let mut reference = None;
        for &s in &samples {
            cell.record(s, 0.25);
            reference = Some(match reference {
                None => s,
                Some(prev) => 0.25 * s + 0.75 * prev,
            });
        }
        let (n, v) = cell.get().unwrap();
        assert_eq!(n, samples.len() as u32);
        assert!((v - reference.unwrap()).abs() < 1e-3, "{v}");
    }

    /// Regression test for the atomic merge: with the packed-word CAS
    /// loop, concurrent reporters can never lose a fold — the sample
    /// count equals the number of reports exactly. (A two-field
    /// read-modify-write drops folds under this hammering.)
    #[test]
    fn ewma_concurrent_merge_loses_nothing() {
        use std::sync::Barrier;
        const THREADS: usize = 16;
        const PER_THREAD: u32 = 2_000;
        let cell = Arc::new(EwmaCell::default());
        let barrier = Arc::new(Barrier::new(THREADS));
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let cell = Arc::clone(&cell);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        // Samples confined to [100, 300]: the EWMA must
                        // stay inside the sample hull whatever the
                        // interleaving.
                        let sample = 100.0 + ((t as u32 * 7 + i) % 3) as f32 * 100.0;
                        cell.record(sample, 0.25);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let (count, value) = cell.get().unwrap();
        assert_eq!(
            count,
            THREADS as u32 * PER_THREAD,
            "every concurrent fold must land exactly once"
        );
        assert!(
            (100.0..=300.0).contains(&value),
            "ewma escaped hull: {value}"
        );
    }

    #[test]
    fn per_view_delta_counters_roll_up() {
        let s = ServeStats::default();
        assert!(s.view_delta("public").is_none());
        s.record_view_delta("public", true);
        s.record_view_delta("public", true);
        s.record_view_delta("public", false);
        s.record_view_delta("audit", false);
        s.record_view_patched("public");
        assert_eq!(s.view_delta("public"), Some((2, 1, 1)));
        assert_eq!(s.view_delta("audit"), Some((0, 0, 1)));
        let snap = s.snapshot();
        assert_eq!(snap.delta_retained, 2);
        assert_eq!(snap.delta_patched, 1);
        assert_eq!(snap.delta_recomputed, 2);
        assert_eq!(
            snap.view_delta,
            vec![("audit".into(), 0, 0, 1), ("public".into(), 2, 1, 1)]
        );
        let text = snap.to_string();
        assert!(text.contains("delta_retained=2"));
        assert!(
            text.contains("view public: delta_retained=2 delta_patched=1 delta_recomputed=1"),
            "{text}"
        );
    }

    #[test]
    fn per_doc_delta_counters_roll_up() {
        let s = ServeStats::default();
        assert!(s.doc_delta("hot").is_none());
        s.record_doc_delta("hot", 3, 1, 4, 1);
        s.record_doc_delta("hot", 2, 0, 0, 0);
        s.record_doc_delta("cold", 0, 0, 0, 0);
        assert_eq!(s.doc_delta("hot"), Some((5, 1, 4, 1)));
        assert_eq!(s.doc_delta("cold"), Some((0, 0, 0, 0)));
        assert!(
            s.doc_delta("neighbour").is_none(),
            "never-written docs have no row"
        );
        let snap = s.snapshot();
        assert_eq!(
            snap.doc_delta,
            vec![("cold".into(), 0, 0, 0, 0), ("hot".into(), 5, 1, 4, 1)]
        );
        assert!(snap.to_string().contains(
            "doc hot: delta_retained=5 delta_patched=1 patched_fragments=4 delta_recomputed=1"
        ));
        // Removing a document drops its row; a re-created name starts
        // a fresh lineage of counters.
        s.forget_doc("hot");
        assert!(s.doc_delta("hot").is_none());
        s.record_doc_delta("hot", 1, 0, 0, 0);
        assert_eq!(s.doc_delta("hot"), Some((1, 0, 0, 0)));
    }

    #[test]
    fn per_verb_counters_roll_up_sorted() {
        let s = ServeStats::default();
        assert_eq!(s.verb_counts(Verb::View), (0, 0));
        s.record_verb(Verb::View, true);
        s.record_verb(Verb::View, false);
        s.record_verb(Verb::Update, true);
        assert_eq!(s.verb_counts(Verb::View), (2, 1));
        assert_eq!(s.verb_counts(Verb::Update), (1, 0));
        let snap = s.snapshot();
        // Sorted by verb name; untouched verbs omitted.
        assert_eq!(snap.verbs, vec![(Verb::Update, 1, 0), (Verb::View, 2, 1)]);
        let text = snap.to_string();
        assert!(text.contains("verb view: requests=2 errors=1"), "{text}");
        assert!(text.contains("verb update: requests=1 errors=0"), "{text}");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let s = ServeStats::default();
        s.requests.fetch_add(2, Ordering::Relaxed); // relaxed: monotone counter; no data published
        s.count_method(Method::TopDown);
        s.record_verb(Verb::Query, true);
        s.record_view_latency("pub\"lic", 120.0);
        s.record_view_delta("public", true);
        s.record_doc_delta("db", 1, 1, 2, 0);
        s.seed_doc_labels("db", HashMap::from([(intern("person"), 3)]));
        let json = s.snapshot().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"requests\":2"), "{json}");
        assert!(
            json.contains("{\"verb\":\"query\",\"requests\":1,\"errors\":0}"),
            "{json}"
        );
        assert!(json.contains("\"view\":\"pub\\\"lic\""), "escaped: {json}");
        assert!(
            json.contains(
                "{\"doc\":\"db\",\"retained\":1,\"patched\":1,\
                 \"patched_fragments\":2,\"recomputed\":0}"
            ),
            "{json}"
        );
        assert!(
            json.contains("{\"doc\":\"db\",\"labels\":[{\"label\":\"person\",\"count\":3}]}"),
            "{json}"
        );
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn doc_label_histogram_shifts_and_clamps() {
        let s = ServeStats::default();
        assert!(s.doc_labels("db").is_none());
        // Shifts against an unseeded doc are discarded: without a seed
        // baseline the counts would be deltas, not a histogram.
        s.shift_doc_labels("db", &HashMap::from([(intern("person"), 1)]));
        assert!(s.doc_labels("db").is_none());
        s.seed_doc_labels(
            "db",
            HashMap::from([(intern("person"), 2), (intern("item"), 5)]),
        );
        s.shift_doc_labels(
            "db",
            &HashMap::from([(intern("person"), -2), (intern("open_auction"), 1)]),
        );
        // Zero-count keys are dropped; new keys appear; sort is count
        // desc, then label asc.
        assert_eq!(
            s.doc_labels("db").unwrap(),
            vec![("item".into(), 5), ("open_auction".into(), 1)]
        );
        let snap = s.snapshot();
        assert_eq!(snap.doc_labels.len(), 1);
        let text = snap.to_string();
        assert!(text.contains("doc db labels:"), "{text}");
        assert!(text.contains("item=5"), "{text}");
        s.forget_doc("db");
        assert!(s.doc_labels("db").is_none());
    }

    #[test]
    fn per_view_latency_rolls_up_into_snapshots() {
        let s = ServeStats::default();
        assert!(s.view_latency("public").is_none());
        s.record_view_latency("public", 100.0);
        s.record_view_latency("public", 100.0);
        s.record_view_latency("audit", 900.0);
        let (n, v) = s.view_latency("public").unwrap();
        assert_eq!(n, 2);
        assert!((v - 100.0).abs() < 1e-3);
        let snap = s.snapshot();
        assert_eq!(snap.view_latency.len(), 2);
        assert_eq!(snap.view_latency[0].0, "audit");
        assert!(snap.to_string().contains("view public: ewma=100µs"));
    }
}
