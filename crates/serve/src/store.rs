//! The sharded document store with epoch-based copy-on-write snapshots
//! and per-document versions.
//!
//! Scaling the serve layer to many concurrent clients means the document
//! map can no longer be one `RwLock<HashMap>`: a single writer loading a
//! large document would stall every reader, and every reader bounces the
//! same cache line. [`DocStore`] shards documents over N independent
//! slots (by name hash) and gives each shard an immutable *epoch*:
//!
//! * **Readers** take a [`StoreSnapshot`] — one `Arc` clone per shard
//!   under a briefly-held read lock — and then resolve documents with no
//!   locking at all. A snapshot is a consistent view: it never observes
//!   a later write, however long the request runs.
//! * **Writers** never mutate an installed epoch. They clone the shard's
//!   map (cheap: values are `Arc`s or paths), apply the change, bump the
//!   epoch counter, and swap the new `Arc` in under a briefly-held write
//!   lock. In-flight readers keep their old epoch alive through their
//!   snapshot `Arc`s; memory is reclaimed when the last snapshot drops.
//!
//! ## The epoch invariant
//!
//! For every shard: epochs strictly increase with each write; an epoch's
//! contents never change after installation; and a snapshot holding
//! epoch *e* of a shard sees exactly the writes ordered before *e* and
//! none after. Outstanding snapshots are counted
//! ([`DocStore::active_snapshots`]) so tests can prove that failed or
//! abandoned requests — including dropped streaming sessions — release
//! their snapshots and never poison the store.
//!
//! ## Per-document versions
//!
//! The shard epoch is the *consistency* token (snapshots, install
//! ordering) but a poor *identity* token for one document's content: it
//! advances on any write to the shard, so "epoch changed" does not mean
//! "this document changed". Every document therefore carries its own
//! **version** — the epoch installed by the write that last wrote *it*
//! ([`VersionedDoc`]). A write to a neighbour bumps the shard epoch but
//! leaves the version alone, so consumers keyed by version (the
//! view-result cache) are provably unaffected by neighbour writes.
//!
//! Version invariant: within a shard, a document's version changes iff
//! that document is written, versions strictly increase across writes to
//! the same name, and — because versions are drawn from the
//! never-restarting epoch counter — a name that is removed and later
//! re-inserted gets a version strictly greater than any it ever had.
//! A dead version can never be minted again, so a cache entry keyed to
//! one can never be wrongly served for a re-created document.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering}; // lint: atomic-ok (snapshot counter only)
use std::sync::{Arc, RwLock};

use xust_intern::Interner;

use crate::server::DocSource;

/// A stored document plus the version of its content: the shard epoch
/// installed by the write that last wrote this document.
#[derive(Debug, Clone)]
pub struct VersionedDoc {
    /// Where the document lives.
    pub source: DocSource,
    /// Content version — bumped only by writes to *this* document.
    pub version: u64,
}

/// One shard's immutable epoch: a version counter plus the name →
/// versioned-source map as of that version.
struct ShardEpoch {
    epoch: u64,
    docs: HashMap<String, VersionedDoc>,
}

struct Shard {
    current: RwLock<Arc<ShardEpoch>>,
}

/// What one write installed: the shard epoch it created, the written
/// document's new version, and the version it replaced (0 when the name
/// was not present before — real versions are never 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteStamp {
    /// The shard epoch this write installed.
    pub epoch: u64,
    /// The written document's new version (== `epoch` by construction;
    /// kept separate because readers of the *document* must compare
    /// versions, never epochs).
    pub version: u64,
    /// The version this write replaced; 0 for a fresh insert.
    pub prev_version: u64,
}

/// The sharded, snapshot-consistent document store. See the module docs.
pub struct DocStore {
    shards: Box<[Shard]>,
    active: Arc<AtomicUsize>,
    snapshots_taken: AtomicU64,
}

impl DocStore {
    /// Creates a store with `shards` independent shards (minimum 1).
    pub fn new(shards: usize) -> DocStore {
        let n = shards.max(1);
        DocStore {
            shards: (0..n)
                .map(|_| Shard {
                    current: RwLock::new(Arc::new(ShardEpoch {
                        epoch: 0,
                        docs: HashMap::new(),
                    })),
                })
                .collect(),
            active: Arc::new(AtomicUsize::new(0)),
            snapshots_taken: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The label interner shared by every shard and every snapshot: the
    /// process-global [`Interner`]. Documents loaded into any shard, and
    /// queries compiled against any snapshot, resolve labels through
    /// this one table, so a `Sym` carried across shards, epochs, or
    /// worker threads always means the same label — batch and streaming
    /// execution never re-intern.
    pub fn interner(&self) -> &'static Interner {
        Interner::global()
    }

    /// Which shard owns `name` (FNV-1a over the name bytes).
    pub fn shard_of(&self, name: &str) -> usize {
        shard_index(name, self.shards.len())
    }

    /// Installs (or replaces) a document: copy-on-write into a fresh
    /// epoch of its shard. Readers holding snapshots are unaffected.
    pub fn insert(&self, name: impl Into<String>, source: DocSource) -> WriteStamp {
        match self.insert_with(name, source, |_| Ok::<(), std::convert::Infallible>(())) {
            Ok(stamp) => stamp,
            Err(never) => match never {},
        }
    }

    /// Like [`DocStore::insert`], but runs `before_install` under the
    /// shard write lock after the stamp is decided and *before* the new
    /// epoch is installed. On `Err` nothing is installed — the shard
    /// keeps its epoch and contents. This is the hook the write-ahead
    /// log uses: log order equals install order because both happen
    /// under the same lock, and a failed append installs nothing.
    pub fn insert_with<E>(
        &self,
        name: impl Into<String>,
        source: DocSource,
        before_install: impl FnOnce(WriteStamp) -> Result<(), E>,
    ) -> Result<WriteStamp, E> {
        let name = name.into();
        let shard = &self.shards[self.shard_of(&name)];
        // lock-order: shard write lock first; `before_install` may take
        // the Wal mutex (innermost) — never the reverse.
        let mut current = shard.current.write().expect("doc store lock poisoned");
        let prev_version = current.docs.get(&name).map_or(0, |d| d.version);
        let epoch = current.epoch + 1;
        let stamp = WriteStamp {
            epoch,
            version: epoch,
            prev_version,
        };
        before_install(stamp)?;
        let mut docs = current.docs.clone();
        docs.insert(
            name,
            VersionedDoc {
                source,
                version: epoch,
            },
        );
        *current = Arc::new(ShardEpoch { epoch, docs });
        Ok(stamp)
    }

    /// Atomically transforms one document in place: read-modify-write
    /// under the owning shard's write lock, so two concurrent updates to
    /// the same shard can never lose each other's work. `apply` receives
    /// the [`WriteStamp`] the write *will* install — the new epoch, the
    /// document's new version, and the version being replaced — plus the
    /// current source, and returns the replacement source (plus any
    /// caller payload, e.g. cache-maintenance bookkeeping that must be
    /// ordered with the install). On `Err` nothing is installed: the
    /// shard keeps its epoch and contents — the write path's
    /// all-or-nothing guarantee.
    ///
    /// The shard's readers block for the duration of `apply`; snapshots
    /// and other shards are unaffected. Keep `apply` proportional to the
    /// delta being written, not to unrelated work.
    pub fn update<T, E>(
        &self,
        name: &str,
        apply: impl FnOnce(WriteStamp, &DocSource) -> Result<(DocSource, T), E>,
    ) -> Result<(WriteStamp, T), StoreUpdateError<E>> {
        let shard = &self.shards[self.shard_of(name)];
        let mut current = shard.current.write().expect("doc store lock poisoned");
        let existing = current
            .docs
            .get(name)
            .ok_or(StoreUpdateError::NotFound)?
            .clone();
        let epoch = current.epoch + 1;
        let stamp = WriteStamp {
            epoch,
            version: epoch,
            prev_version: existing.version,
        };
        let (replacement, payload) =
            apply(stamp, &existing.source).map_err(StoreUpdateError::Apply)?;
        let mut docs = current.docs.clone();
        docs.insert(
            name.to_string(),
            VersionedDoc {
                source: replacement,
                version: epoch,
            },
        );
        *current = Arc::new(ShardEpoch { epoch, docs });
        Ok((stamp, payload))
    }

    /// Current epoch of the shard owning `name` (whether or not the
    /// document exists — epochs are per shard).
    pub fn epoch_of(&self, name: &str) -> u64 {
        self.shards[self.shard_of(name)]
            .current
            .read()
            .expect("doc store lock poisoned")
            .epoch
    }

    /// Current version of `name`, if loaded. Unlike [`DocStore::
    /// epoch_of`], this changes only when `name` itself is written.
    pub fn version_of(&self, name: &str) -> Option<u64> {
        self.shards[self.shard_of(name)]
            .current
            .read()
            .expect("doc store lock poisoned")
            .docs
            .get(name)
            .map(|d| d.version)
    }

    /// Removes a document (copy-on-write); true if it existed. The
    /// removed name's version is *retired*, never reused: a later
    /// re-insert draws a strictly larger version from the epoch counter.
    pub fn remove(&self, name: &str) -> bool {
        match self.remove_with(name, || Ok::<(), std::convert::Infallible>(())) {
            Ok(removed) => removed,
            Err(never) => match never {},
        }
    }

    /// Like [`DocStore::remove`], but runs `before_remove` under the
    /// shard write lock once the document is known to exist and *before*
    /// the removal is installed. On `Err` the document stays — the
    /// write-ahead-log hook, mirroring [`DocStore::insert_with`]. The
    /// callback is not invoked for a name that is not loaded.
    pub fn remove_with<E>(
        &self,
        name: &str,
        before_remove: impl FnOnce() -> Result<(), E>,
    ) -> Result<bool, E> {
        let shard = &self.shards[self.shard_of(name)];
        // lock-order: shard write lock first; `before_remove` may take
        // the Wal mutex (innermost) — never the reverse.
        let mut current = shard.current.write().expect("doc store lock poisoned");
        if !current.docs.contains_key(name) {
            return Ok(false);
        }
        before_remove()?;
        let mut docs = current.docs.clone();
        docs.remove(name);
        let epoch = current.epoch + 1;
        *current = Arc::new(ShardEpoch { epoch, docs });
        Ok(true)
    }

    /// Resolves one document against the *current* epoch of its owning
    /// shard — one read lock on one shard, no cross-shard pinning, no
    /// snapshot bookkeeping. This is the hot path for single-document
    /// requests; use [`DocStore::snapshot`] when several lookups must
    /// observe the same world (batches, streaming sessions).
    pub fn get(&self, name: &str) -> Option<DocSource> {
        self.get_versioned(name).map(|d| d.source)
    }

    /// Like [`DocStore::get`], but returns the source *with* the version
    /// of its content, read atomically under one shard read lock — the
    /// pair a cache-filling reader needs (content and tag provably
    /// belong together).
    pub fn get_versioned(&self, name: &str) -> Option<VersionedDoc> {
        self.shards[self.shard_of(name)]
            .current
            .read()
            .expect("doc store lock poisoned")
            .docs
            .get(name)
            .cloned()
    }

    /// Takes a consistent snapshot across all shards. The snapshot pins
    /// each shard's current epoch until it is dropped.
    pub fn snapshot(&self) -> StoreSnapshot {
        let epochs = self
            .shards
            .iter()
            .map(|s| Arc::clone(&s.current.read().expect("doc store lock poisoned")))
            .collect();
        self.active.fetch_add(1, Ordering::SeqCst);
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        StoreSnapshot {
            epochs,
            active: Arc::clone(&self.active),
        }
    }

    /// Snapshots currently outstanding (not yet dropped). Failure tests
    /// assert this returns to zero after aborted requests and sessions.
    pub fn active_snapshots(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Cumulative snapshots ever taken (a monotone counter, unlike the
    /// [`active_snapshots`](Self::active_snapshots) gauge) — `METRICS`
    /// exports both so snapshot churn is visible even when the gauge
    /// idles at zero.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Current epoch number of every shard, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.current.read().expect("doc store lock poisoned").epoch)
            .collect()
    }

    /// Total documents across shards (as of now).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.current
                    .read()
                    .expect("doc store lock poisoned")
                    .docs
                    .len()
            })
            .sum()
    }

    /// True when no shard holds any document.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why [`DocStore::update`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreUpdateError<E> {
    /// The named document is not in the store.
    NotFound,
    /// The caller's `apply` closure failed; the shard was left untouched.
    Apply(E),
}

/// A consistent, immutable view of the whole store: one pinned epoch per
/// shard. Resolving documents through a snapshot takes no locks.
pub struct StoreSnapshot {
    epochs: Vec<Arc<ShardEpoch>>,
    active: Arc<AtomicUsize>,
}

impl StoreSnapshot {
    /// The same shared interner as [`DocStore::interner`] — snapshots
    /// never carry a private label table, so `Sym`s resolved against an
    /// old epoch stay valid forever.
    pub fn interner(&self) -> &'static Interner {
        Interner::global()
    }

    /// Resolves `name` in this snapshot (lock-free).
    pub fn get(&self, name: &str) -> Option<&DocSource> {
        self.get_versioned(name).map(|d| &d.source)
    }

    /// Resolves `name` with the version of its content, as pinned by
    /// this snapshot (lock-free).
    pub fn get_versioned(&self, name: &str) -> Option<&VersionedDoc> {
        self.epochs[shard_index(name, self.epochs.len())]
            .docs
            .get(name)
    }

    /// The pinned version of `name`, if it exists in this snapshot.
    pub fn version_of(&self, name: &str) -> Option<u64> {
        self.get_versioned(name).map(|d| d.version)
    }

    /// The pinned epoch of every shard, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.epoch).collect()
    }

    /// The pinned epoch of the shard owning `name`.
    pub fn epoch_of(&self, name: &str) -> u64 {
        self.epochs[shard_index(name, self.epochs.len())].epoch
    }

    /// Document names visible in this snapshot, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .epochs
            .iter()
            .flat_map(|e| e.docs.keys().cloned())
            .collect();
        v.sort();
        v
    }

    /// Documents visible in this snapshot.
    pub fn doc_count(&self) -> usize {
        self.epochs.iter().map(|e| e.docs.len()).sum()
    }
}

impl Drop for StoreSnapshot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn shard_index(name: &str, shards: usize) -> usize {
    // FNV-1a: tiny, deterministic, good enough spread for names.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_tree::Document;

    fn mem(xml: &str) -> DocSource {
        DocSource::Memory(Arc::new(Document::parse(xml).unwrap()))
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let store = DocStore::new(4);
        store.insert("a", mem("<a/>"));
        let snap = store.snapshot();
        store.insert("a", mem("<a2/>"));
        store.insert("b", mem("<b/>"));
        // The snapshot still sees the old world…
        assert!(snap.get("b").is_none());
        match snap.get("a") {
            Some(DocSource::Memory(d)) => assert_eq!(d.serialize(), "<a/>"),
            other => panic!("unexpected {other:?}"),
        }
        // …while a fresh snapshot sees the new one.
        let now = store.snapshot();
        match now.get("a") {
            Some(DocSource::Memory(d)) => assert_eq!(d.serialize(), "<a2/>"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(now.get("b").is_some());
    }

    #[test]
    fn epochs_strictly_increase_per_shard() {
        let store = DocStore::new(2);
        let before = store.epochs();
        let e1 = store.insert("x", mem("<x/>"));
        let e2 = store.insert("x", mem("<x/>"));
        assert!(e2.epoch > e1.epoch);
        let after = store.epochs();
        // Exactly one shard advanced, by exactly two.
        let advanced: Vec<_> = before.iter().zip(&after).filter(|(b, a)| a > b).collect();
        assert_eq!(advanced.len(), 1);
        assert_eq!(*advanced[0].1, advanced[0].0 + 2);
    }

    #[test]
    fn versions_bump_only_for_the_written_document() {
        let store = DocStore::new(1); // one shard: everyone is a neighbour
        let a = store.insert("a", mem("<a/>"));
        assert_eq!((a.version, a.prev_version), (1, 0));
        let b = store.insert("b", mem("<b/>"));
        assert_eq!((b.version, b.prev_version), (2, 0));
        // Writing b bumped the shard epoch but not a's version.
        assert_eq!(store.version_of("a"), Some(1));
        assert_eq!(store.version_of("b"), Some(2));
        assert_eq!(store.epoch_of("a"), 2);
        // A hammered neighbour never moves a's version.
        for _ in 0..5 {
            store.insert("b", mem("<b/>"));
        }
        assert_eq!(store.version_of("a"), Some(1));
        assert_eq!(store.epoch_of("a"), 7);
        // Re-writing a reports the version it replaced.
        let a2 = store.insert("a", mem("<a2/>"));
        assert_eq!((a2.version, a2.prev_version), (8, 1));
        assert!(store.version_of("missing").is_none());
    }

    #[test]
    fn removed_names_never_reuse_a_version() {
        let store = DocStore::new(1);
        store.insert("a", mem("<a/>"));
        store.insert("a", mem("<a2/>"));
        let dead = store.version_of("a").unwrap();
        assert!(store.remove("a"));
        assert!(store.version_of("a").is_none());
        // Re-creating the name draws a strictly larger version: any
        // cache entry keyed to the dead version can never hit again.
        let reborn = store.insert("a", mem("<a3/>"));
        assert!(
            reborn.version > dead,
            "reborn version {} must exceed dead version {dead}",
            reborn.version
        );
        assert_eq!(reborn.prev_version, 0, "the old lineage is gone");
    }

    #[test]
    fn versioned_reads_are_atomic_with_content() {
        let store = DocStore::new(2);
        store.insert("a", mem("<a/>"));
        let vd = store.get_versioned("a").unwrap();
        assert_eq!(vd.version, store.version_of("a").unwrap());
        match vd.source {
            DocSource::Memory(d) => assert_eq!(d.serialize(), "<a/>"),
            other => panic!("unexpected {other:?}"),
        }
        // Snapshots pin versions like they pin content.
        let snap = store.snapshot();
        store.insert("a", mem("<a2/>"));
        assert_eq!(snap.version_of("a"), Some(vd.version));
        assert_ne!(store.version_of("a"), Some(vd.version));
    }

    #[test]
    fn snapshot_guards_are_counted_and_released() {
        let store = DocStore::new(8);
        store.insert("a", mem("<a/>"));
        assert_eq!(store.active_snapshots(), 0);
        let s1 = store.snapshot();
        let s2 = store.snapshot();
        assert_eq!(store.active_snapshots(), 2);
        drop(s1);
        assert_eq!(store.active_snapshots(), 1);
        drop(s2);
        assert_eq!(store.active_snapshots(), 0);
    }

    #[test]
    fn remove_is_cow_too() {
        let store = DocStore::new(1);
        store.insert("a", mem("<a/>"));
        let snap = store.snapshot();
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(snap.get("a").is_some(), "snapshot keeps the removed doc");
        assert!(store.snapshot().get("a").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn update_is_atomic_read_modify_write() {
        let store = Arc::new(DocStore::new(2));
        store.insert("ctr", mem("<v/>"));
        // N racing updaters each append one child; with the shard lock
        // held across the whole read-modify-write, none can be lost.
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        store
                            .update("ctr", |_, source| {
                                let DocSource::Memory(d) = source else {
                                    unreachable!()
                                };
                                let mut next = (**d).clone();
                                let root = next.root().unwrap();
                                let child = next.create_element("tick");
                                next.append_child(root, child);
                                Ok::<_, ()>((DocSource::Memory(Arc::new(next)), ()))
                            })
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        match store.get("ctr").unwrap() {
            DocSource::Memory(d) => {
                assert_eq!(d.serialize().matches("<tick/>").count(), 200);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(store.epochs().iter().sum::<u64>(), 201);
        assert_eq!(store.version_of("ctr"), Some(201));
    }

    #[test]
    fn failed_update_leaves_epoch_version_and_contents_alone() {
        let store = DocStore::new(4);
        store.insert("a", mem("<a/>"));
        let before = store.epochs();
        let version_before = store.version_of("a");
        let err = store.update("a", |_, _| Err::<(DocSource, ()), _>("boom"));
        assert_eq!(err.unwrap_err(), StoreUpdateError::Apply("boom"));
        let missing = store.update("nope", |_, _| Ok::<_, ()>((mem("<x/>"), ())));
        assert!(matches!(missing.unwrap_err(), StoreUpdateError::NotFound));
        assert_eq!(store.epochs(), before, "failed writes must not bump epochs");
        assert_eq!(store.version_of("a"), version_before);
        match store.get("a").unwrap() {
            DocSource::Memory(d) => assert_eq!(d.serialize(), "<a/>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_reports_the_installed_stamp() {
        let store = DocStore::new(1);
        store.insert("a", mem("<a/>"));
        let snap_before = store.snapshot();
        let (stamp, payload) = store
            .update("a", |stamp, _| {
                Ok::<_, ()>((mem("<a2/>"), format!("installing {}", stamp.version)))
            })
            .unwrap();
        assert_eq!(
            stamp,
            WriteStamp {
                epoch: 2,
                version: 2,
                prev_version: 1
            }
        );
        assert_eq!(payload, "installing 2");
        assert_eq!(store.epoch_of("a"), 2);
        assert_eq!(store.version_of("a"), Some(2));
        assert_eq!(snap_before.epoch_of("a"), 1);
        assert_eq!(snap_before.version_of("a"), Some(1));
        // The pre-update snapshot still reads the old content.
        match snap_before.get("a") {
            Some(DocSource::Memory(d)) => assert_eq!(d.serialize(), "<a/>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_with_and_remove_with_are_all_or_nothing() {
        let store = DocStore::new(2);
        // A failing pre-install hook installs nothing at all.
        let err = store.insert_with("a", mem("<a/>"), |_| Err("append failed"));
        assert_eq!(err.unwrap_err(), "append failed");
        assert!(store.get("a").is_none());
        assert_eq!(store.epochs(), vec![0, 0]);
        // The hook sees the stamp the write will install.
        let stamp = store
            .insert_with("a", mem("<a/>"), |stamp| {
                assert_eq!((stamp.version, stamp.prev_version), (1, 0));
                Ok::<(), ()>(())
            })
            .unwrap();
        assert_eq!(stamp.version, 1);
        assert_eq!(store.version_of("a"), Some(1));
        // A failing pre-remove hook keeps the document.
        let err = store.remove_with("a", || Err("append failed"));
        assert_eq!(err.unwrap_err(), "append failed");
        assert_eq!(store.version_of("a"), Some(1));
        // Missing names never invoke the hook.
        let ok = store.remove_with("missing", || -> Result<(), ()> {
            panic!("hook must not run for a missing doc")
        });
        assert_eq!(ok, Ok(false));
        assert_eq!(store.remove_with("a", || Ok::<(), ()>(())), Ok(true));
        assert!(store.get("a").is_none());
    }

    #[test]
    fn names_span_all_shards() {
        let store = DocStore::new(8);
        for i in 0..32 {
            store.insert(format!("doc{i}"), mem("<d/>"));
        }
        assert_eq!(store.len(), 32);
        let names = store.snapshot().names();
        assert_eq!(names.len(), 32);
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted");
        // The hash actually spreads names over multiple shards.
        let used = store.epochs().iter().filter(|&&e| e > 0).count();
        assert!(used > 1, "expected >1 shard used, got {used}");
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let store = Arc::new(DocStore::new(4));
        store.insert("hot", mem("<v>0</v>"));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        store.insert("hot", mem(&format!("<v>{w}-{i}</v>")));
                        store.insert(format!("w{w}-{i}"), mem("<x/>"));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let snap = store.snapshot();
                        // "hot" is never missing, and the snapshot's view
                        // doesn't change while we hold it.
                        let a = snap.get("hot").cloned();
                        std::thread::yield_now();
                        let b = snap.get("hot").cloned();
                        match (a, b) {
                            (Some(DocSource::Memory(x)), Some(DocSource::Memory(y))) => {
                                assert!(Arc::ptr_eq(&x, &y));
                            }
                            other => panic!("hot doc missing or changed: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        assert_eq!(store.active_snapshots(), 0);
        assert_eq!(store.len(), 1 + 2 * 50);
    }
}
