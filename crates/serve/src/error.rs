//! Service error type.

use std::fmt;

/// Anything that can go wrong handling a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The named document is not loaded.
    UnknownDoc(String),
    /// The named view is not registered.
    UnknownView(String),
    /// A query or view definition failed to parse/compile.
    Parse(String),
    /// A view definition is structurally invalid.
    InvalidView(String),
    /// Evaluation failed.
    Eval(String),
    /// I/O on a file-backed document failed.
    Io(String),
    /// The request is not supported for this document/view combination.
    Unsupported(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDoc(d) => write!(f, "unknown document '{d}'"),
            ServeError::UnknownView(v) => write!(f, "unknown view '{v}'"),
            ServeError::Parse(m) => write!(f, "parse error: {m}"),
            ServeError::InvalidView(m) => write!(f, "invalid view: {m}"),
            ServeError::Eval(m) => write!(f, "evaluation error: {m}"),
            ServeError::Io(m) => write!(f, "i/o error: {m}"),
            ServeError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}
