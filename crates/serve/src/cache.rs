//! The prepared-query cache.
//!
//! Maps a request key (query text, or `view\x1fuser-query`) to an
//! `Arc`-shared prepared artifact — a [`xust_core::CompiledTransform`]
//! or a [`xust_compose::ComposedQuery`] — so repeat requests skip
//! parsing and automaton construction entirely. Hits, misses, and
//! evictions are counted for observability and for the tests that
//! assert the skip actually happens.
//!
//! Concurrency model: *per-key single-flight*. A miss marks its key as
//! building, releases the map lock, and compiles outside it; racing
//! requests for the **same** key wait on a condvar and then hit, while
//! requests for **other** keys are never blocked by the build. When
//! eight clients race one cold key, exactly one compiles and seven
//! wait briefly — the behaviour a prepared-statement cache wants (the
//! alternative does N identical compiles and throws N−1 away). Hits
//! touch the lock only long enough for a map lookup and an `Arc`
//! clone.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering}; // lint: atomic-ok (hit/miss/eviction counters only)
use std::sync::{Arc, Condvar, Mutex};

/// A bounded, LRU-evicting map from query keys to shared prepared
/// values, with per-key single-flight builds.
pub struct PreparedCache<V> {
    capacity: usize,
    state: Mutex<Inner<V>>,
    /// Signalled whenever a build completes (or fails), waking waiters
    /// of that key.
    built: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Inner<V> {
    map: HashMap<String, Slot<V>>,
    tick: u64,
}

enum Slot<V> {
    Ready { value: Arc<V>, last_use: u64 },
    Building,
}

impl<V> PreparedCache<V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> PreparedCache<V> {
        PreparedCache {
            capacity: capacity.max(1),
            state: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            built: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns `(value, was_hit)` for `key`, building and inserting the
    /// value on miss. Concurrent callers with the same key wait for the
    /// one build instead of duplicating it; callers with other keys
    /// proceed unhindered. The build error (if any) is passed through
    /// and nothing is inserted (waiters then race to rebuild).
    pub fn get_or_try_insert<E>(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, bool), E> {
        let mut inner = self.state.lock().expect("cache lock poisoned");
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(key) {
                Some(Slot::Ready { value, last_use }) => {
                    *last_use = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                    return Ok((Arc::clone(value), true));
                }
                Some(Slot::Building) => {
                    // Same-key single-flight: wait for the builder.
                    inner = self.built.wait(inner).expect("cache lock poisoned");
                }
                None => break,
            }
        }
        // Become the builder for this key; compile outside the lock.
        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        inner.map.insert(key.to_string(), Slot::Building);
        drop(inner);
        let built = build();
        let mut inner = self.state.lock().expect("cache lock poisoned"); // lock-order: re-acquire after the explicit drop(inner) above; the builder holds no lock during build()
        match built {
            Err(e) => {
                inner.map.remove(key);
                self.built.notify_all();
                Err(e)
            }
            Ok(v) => {
                let value = Arc::new(v);
                if Self::ready_len(&inner) >= self.capacity {
                    // Evict the least-recently-used ready entry (O(n),
                    // n = capacity). In-flight builds are never evicted.
                    if let Some(lru) = inner
                        .map
                        .iter()
                        .filter_map(|(k, s)| match s {
                            Slot::Ready { last_use, .. } => Some((k, *last_use)),
                            Slot::Building => None,
                        })
                        .min_by_key(|&(_, last_use)| last_use)
                        .map(|(k, _)| k.clone())
                    {
                        inner.map.remove(&lru);
                        self.evictions.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                    }
                }
                let tick = inner.tick;
                inner.map.insert(
                    key.to_string(),
                    Slot::Ready {
                        value: Arc::clone(&value),
                        last_use: tick,
                    },
                );
                self.built.notify_all();
                Ok((value, false))
            }
        }
    }

    fn ready_len(inner: &Inner<V>) -> usize {
        inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Maximum number of ready entries this cache retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached (ready) entries.
    pub fn len(&self) -> usize {
        Self::ready_len(&self.state.lock().expect("cache lock poisoned"))
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Drops every ready entry (counters and in-flight builds are
    /// preserved).
    pub fn clear(&self) {
        self.state
            .lock()
            .expect("cache lock poisoned")
            .map
            .retain(|_, s| matches!(s, Slot::Building));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn ok(v: u32) -> impl FnOnce() -> Result<u32, Infallible> {
        move || Ok(v)
    }

    #[test]
    fn hit_returns_same_arc_without_rebuilding() {
        let c: PreparedCache<u32> = PreparedCache::new(4);
        let (a, hit_a) = c.get_or_try_insert("k", ok(1)).unwrap();
        let (b, hit_b) = c
            .get_or_try_insert("k", || -> Result<u32, Infallible> {
                panic!("must not rebuild on hit")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn build_errors_pass_through_and_do_not_insert() {
        let c: PreparedCache<u32> = PreparedCache::new(4);
        let r = c.get_or_try_insert("bad", || Err::<u32, _>("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(c.is_empty());
        // A later successful build still works.
        assert_eq!(*c.get_or_try_insert("bad", ok(7)).unwrap().0, 7);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c: PreparedCache<u32> = PreparedCache::new(2);
        c.get_or_try_insert("a", ok(1)).unwrap();
        c.get_or_try_insert("b", ok(2)).unwrap();
        c.get_or_try_insert("a", ok(1)).unwrap(); // refresh a
        c.get_or_try_insert("c", ok(3)).unwrap(); // evicts b
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
        // b is gone and rebuilds (evicting a, now the oldest); the
        // freshly-used c survives and hits.
        let mut rebuilt = false;
        c.get_or_try_insert("b", || -> Result<u32, Infallible> {
            rebuilt = true;
            Ok(2)
        })
        .unwrap();
        assert!(rebuilt);
        let before = c.hits();
        c.get_or_try_insert("c", ok(3)).unwrap();
        assert_eq!(c.hits(), before + 1);
    }

    #[test]
    fn concurrent_single_flight() {
        use std::sync::atomic::AtomicU32; // lint: atomic-ok (test-only counter)
        let c: Arc<PreparedCache<u32>> = Arc::new(PreparedCache::new(8));
        let builds = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let (v, _) = c
                            .get_or_try_insert("shared", || -> Result<u32, Infallible> {
                                builds.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                                                                        // Widen the race window.
                                std::thread::sleep(std::time::Duration::from_millis(5));
                                Ok(42)
                            })
                            .unwrap();
                        assert_eq!(*v, 42);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1, "single-flight build"); // relaxed: threads joined; writes visible
        assert_eq!(c.hits() + c.misses(), 400);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn builds_do_not_block_other_keys() {
        // A slow build on key "slow" must not delay a hit on key "fast".
        use std::time::{Duration, Instant};
        let c: Arc<PreparedCache<u32>> = Arc::new(PreparedCache::new(8));
        c.get_or_try_insert("fast", ok(1)).unwrap();
        let slow = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                c.get_or_try_insert("slow", || -> Result<u32, Infallible> {
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(2)
                })
                .unwrap();
            })
        };
        // Give the slow builder time to take the Building slot.
        std::thread::sleep(Duration::from_millis(50));
        let t = Instant::now();
        let (v, hit) = c.get_or_try_insert("fast", ok(1)).unwrap();
        let elapsed = t.elapsed();
        assert_eq!(*v, 1);
        assert!(hit);
        assert!(
            elapsed < Duration::from_millis(200),
            "hit stalled behind an unrelated build: {elapsed:?}"
        );
        slow.join().unwrap();
        assert_eq!(*c.get_or_try_insert("slow", ok(0)).unwrap().0, 2);
    }

    #[test]
    fn waiters_rebuild_after_a_failed_build() {
        use std::sync::atomic::AtomicU32; // lint: atomic-ok (test-only counter)
        let c: Arc<PreparedCache<u32>> = Arc::new(PreparedCache::new(8));
        let attempts = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let attempts = Arc::clone(&attempts);
                std::thread::spawn(move || {
                    let r = c.get_or_try_insert("flaky", || {
                        // First attempt fails; retries succeed.
                        if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Err("first build fails")
                        } else {
                            Ok(9)
                        }
                    });
                    r.map(|(v, _)| *v)
                })
            })
            .collect();
        let results: Vec<Result<u32, &str>> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        // Exactly one caller saw the injected failure; everyone else got 9.
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        assert!(results.iter().flatten().all(|&v| v == 9));
        assert_eq!(*c.get_or_try_insert("flaky", ok(0)).unwrap().0, 9);
    }
}
