//! A small fixed-size thread pool (std-only).
//!
//! Jobs are boxed closures pushed down one mpsc channel guarded by a
//! mutex on the receiving side — the classic "channel of jobs" pool.
//! Workers shut down when the pool is dropped (the channel closes and
//! each worker's `recv` errors out). Results travel back on per-job
//! channels owned by the callers, so the pool itself is fire-and-forget.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed worker pool executing boxed jobs in submission order.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (minimum 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("xust-serve-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = receiver.lock().expect("pool receiver poisoned");
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is alive while not dropped")
            .send(Box::new(job))
            .expect("workers alive while sender exists");
    }

    /// Enqueues a job returning a value; the receiver yields it when the
    /// job finishes. If the job panics the receiver's `recv` errors.
    pub fn submit<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Receiver<T> {
        let (tx, rx) = channel();
        self.execute(move || {
            let _ = tx.send(job());
        });
        rx
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_on_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let receivers: Vec<_> = (0..64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i * 2
                })
            })
            .collect();
        let results: Vec<usize> = receivers.into_iter().map(|r| r.recv().unwrap()).collect();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(results[5], 10);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        let rx = pool.submit(|| 7);
        drop(pool); // must not hang
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.submit(|| 1).recv().unwrap(), 1);
    }
}
