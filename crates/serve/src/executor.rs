//! A small fixed-size thread pool (std-only).
//!
//! Jobs are boxed closures pushed down one mpsc channel guarded by a
//! mutex on the receiving side — the classic "channel of jobs" pool.
//! Workers shut down when the pool is dropped (the channel closes and
//! each worker's `recv` errors out). Results travel back on per-job
//! channels owned by the callers, so the pool itself is fire-and-forget.
//!
//! [`ThreadPool::run_batch`] layers the work-stealing batch discipline
//! of [`xust_core::parallel_map_stats`] on top of the *resident*
//! workers: per-drainer deques with back-stealing, but bounded by the
//! pool size across **all** concurrent callers — K clients issuing
//! batches at once still run at most `threads()` items in flight.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use xust_core::StealStats;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed worker pool executing boxed jobs in submission order.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    in_flight: Arc<AtomicU64>,
}

/// Decrements the in-flight gauge when a job ends — by return *or*
/// panic; a Drop guard is the only way the gauge can't leak when a
/// worker unwinds mid-job.
struct InFlight(Arc<AtomicU64>);

impl Drop for InFlight {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed); // relaxed: counter decrement; no data published
    }
}

impl ThreadPool {
    /// Spawns `threads` workers (minimum 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("xust-serve-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = receiver.lock().expect("pool receiver poisoned");
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            in_flight: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs enqueued or executing right now — the queue-depth gauge
    /// `METRICS` exports. Counted from enqueue to completion, so it
    /// covers both waiting and running work.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Enqueues a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.in_flight.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        let guard = InFlight(Arc::clone(&self.in_flight));
        self.sender
            .as_ref()
            .expect("pool is alive while not dropped")
            .send(Box::new(move || {
                let _guard = guard;
                job();
            }))
            .expect("workers alive while sender exists");
    }

    /// Enqueues a job returning a value; the receiver yields it when the
    /// job finishes. If the job panics the receiver's `recv` errors.
    pub fn submit<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Receiver<T> {
        let (tx, rx) = channel();
        self.execute(move || {
            let _ = tx.send(job());
        });
        rx
    }

    /// Runs a whole batch on the resident workers with work-stealing:
    /// up to `threads()` drainer jobs share per-drainer index deques
    /// (seeded round-robin) and steal from the back of a sibling's
    /// queue when their own runs dry. Results come back in item order;
    /// a slot is `None` only if the job processing it panicked.
    ///
    /// Because the drainers are ordinary pool jobs, total in-flight
    /// work across every concurrent `run_batch` caller stays bounded by
    /// the pool size — no per-batch thread spawning.
    pub fn run_batch<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<Option<R>>, StealStats)
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return (
                Vec::new(),
                StealStats {
                    items: 0,
                    workers: 0,
                    steals: 0,
                },
            );
        }
        let workers = self.threads().min(n);
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new(items.into_iter().map(|t| Mutex::new(Some(t))).collect());
        let queues: Arc<Vec<Mutex<VecDeque<usize>>>> = Arc::new(
            (0..workers)
                .map(|w| Mutex::new((w..n).step_by(workers).collect()))
                .collect(),
        );
        let steals = Arc::new(AtomicU64::new(0));
        let f = Arc::new(f);
        let receivers: Vec<Receiver<Vec<(usize, R)>>> = (0..workers)
            .map(|w| {
                let slots = Arc::clone(&slots);
                let queues = Arc::clone(&queues);
                let steals = Arc::clone(&steals);
                let f = Arc::clone(&f);
                self.submit(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let mut next = queues[w].lock().expect("batch queue poisoned").pop_front();
                        if next.is_none() {
                            for v in 1..queues.len() {
                                let victim = (w + v) % queues.len();
                                if let Some(i) = queues[victim]
                                    .lock() // lock-order: line 158's guard is a statement temporary, already dropped
                                    .expect("batch queue poisoned")
                                    .pop_back()
                                {
                                    steals.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                                    next = Some(i);
                                    break;
                                }
                            }
                        }
                        let Some(i) = next else { break };
                        // lock-order: queue guard above is a statement temporary, already dropped
                        if let Some(item) = slots[i].lock().expect("batch slot poisoned").take() {
                            done.push((i, f(i, item)));
                        }
                    }
                    done
                })
            })
            .collect();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for rx in receivers {
            // A drainer that panicked loses its in-flight item (and any
            // queue remainder no live sibling stole) — those slots stay
            // `None` rather than poisoning the whole batch.
            if let Ok(pairs) = rx.recv() {
                for (i, r) in pairs {
                    out[i] = Some(r);
                }
            }
        }
        (
            out,
            StealStats {
                items: n,
                workers,
                steals: steals.load(Ordering::Relaxed), // relaxed: point-in-time read; staleness is fine
            },
        )
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_on_workers() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let receivers: Vec<_> = (0..64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                    i * 2
                })
            })
            .collect();
        let results: Vec<usize> = receivers.into_iter().map(|r| r.recv().unwrap()).collect();
        assert_eq!(counter.load(Ordering::Relaxed), 64); // relaxed: threads joined; writes visible
        assert_eq!(results[5], 10);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        let rx = pool.submit(|| 7);
        drop(pool); // must not hang
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn run_batch_orders_results_and_steals_under_skew() {
        let pool = ThreadPool::new(4);
        // Indices 0, 4, 8, … (drainer 0's seed queue) are slow; the
        // other drainers drain instantly and must steal.
        let items: Vec<usize> = (0..64).collect();
        let (out, stats) = pool.run_batch(items, |i, v| {
            assert_eq!(i, v);
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            v * 2
        });
        assert_eq!(out.len(), 64);
        assert!(out.iter().enumerate().all(|(i, r)| *r == Some(i * 2)));
        assert_eq!(stats.items, 64);
        assert_eq!(stats.workers, 4);
        assert!(stats.steals > 0, "expected stealing: {stats:?}");
        // The pool is still healthy for ordinary jobs afterwards.
        assert_eq!(pool.submit(|| 5).recv().unwrap(), 5);
    }

    #[test]
    fn run_batch_bounds_concurrency_to_pool_size() {
        let pool = ThreadPool::new(2);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (out, _) = pool.run_batch((0..32).collect::<Vec<usize>>(), {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            move |_, v| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                live.fetch_sub(1, Ordering::SeqCst);
                v
            }
        });
        assert_eq!(out.len(), 32);
        assert!(out.iter().all(|r| r.is_some()));
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "batch exceeded pool bound: {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn run_batch_empty_and_single() {
        let pool = ThreadPool::new(3);
        let (out, stats) = pool.run_batch(Vec::<u8>::new(), |_, v| v);
        assert!(out.is_empty());
        assert_eq!(stats.workers, 0);
        let (out, stats) = pool.run_batch(vec![9], |_, v| v + 1);
        assert_eq!(out, vec![Some(10)]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn in_flight_gauge_tracks_queue_depth() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.in_flight(), 0);
        let (hold_tx, hold_rx) = channel::<()>();
        let blocker = pool.submit(move || {
            hold_rx.recv().ok();
        });
        let queued = pool.submit(|| 1);
        // One running + one queued (counted from enqueue either way).
        assert_eq!(pool.in_flight(), 2);
        hold_tx.send(()).unwrap();
        blocker.recv().unwrap();
        assert_eq!(queued.recv().unwrap(), 1);
        assert_eq!(pool.in_flight(), 0, "gauge returns to zero");
    }

    #[test]
    fn in_flight_gauge_survives_job_panics() {
        let pool = ThreadPool::new(2);
        // A panicking job must still decrement (Drop guard runs during
        // the worker's unwind).
        let rx = pool.submit(|| panic!("boom"));
        assert!(rx.recv().is_err(), "panicked job drops its channel");
        assert_eq!(pool.submit(|| 2).recv().unwrap(), 2);
        // The result channel drops mid-unwind, slightly before the
        // guard; give the unwinding worker a beat to finish retiring.
        for _ in 0..1000 {
            if pool.in_flight() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.in_flight(), 0, "panic did not leak the gauge");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.submit(|| 1).recv().unwrap(), 1);
    }
}
