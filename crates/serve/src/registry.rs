//! The view registry: named, pre-compiled transform views.
//!
//! A *view* is what the paper calls a transformed document `Qt(T)` that
//! is never materialized at rest: a security view (Example 1.1), a
//! policy view over a user group, or a what-if scenario ("the database
//! as it would look after these updates"). Registering a view parses
//! and NFA-compiles its transforms exactly once; every subsequent
//! request — from any thread — reuses the compiled artifacts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use xust_core::{CompiledTransform, LabelSet, MultiTransformQuery, QueryCost};
use xust_secview::Policy;

use crate::error::ServeError;

/// How a view transforms its base document.
pub enum ViewBody {
    /// A chain `Qtₖ(…Qt₁(T)…)` applied left to right — each link reads
    /// the previous link's output (what-if scenario stacking).
    Chain(Vec<Arc<CompiledTransform>>),
    /// A multi-update with snapshot semantics — every rule's path reads
    /// the *original* document (access-control policies).
    Multi(Box<MultiTransformQuery>),
}

/// A registered view.
pub struct ViewDef {
    /// Registry name (unique).
    pub name: String,
    /// The `doc("…")` name the view's transforms read.
    pub doc_name: String,
    /// The transformation body.
    pub body: ViewBody,
    /// Concrete syntax the view was registered from (for introspection).
    pub sources: Vec<String>,
    /// Static label footprint of the whole body (union over links/rules)
    /// — the view side of the write-path relevance test.
    pub alphabet: LabelSet,
    /// Registration generation (strictly increasing across the
    /// registry). Cached results are stamped with it so a result
    /// materialized under an old definition can never be served after a
    /// re-registration, even if it lands in the cache after the purge.
    pub generation: u64,
}

impl std::fmt::Debug for ViewDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewDef")
            .field("name", &self.name)
            .field("doc_name", &self.doc_name)
            .field(
                "links",
                &match &self.body {
                    ViewBody::Chain(c) => c.len(),
                    ViewBody::Multi(m) => m.updates.len(),
                },
            )
            .field("sources", &self.sources)
            .finish()
    }
}

impl ViewDef {
    /// The single compiled transform of a one-link chain, if this view
    /// is one — the form the Compose Method accepts.
    pub fn single(&self) -> Option<&Arc<CompiledTransform>> {
        match &self.body {
            ViewBody::Chain(links) if links.len() == 1 => links.first(),
            _ => None,
        }
    }

    /// Aggregate cost hints across the body, for the planner: feature
    /// maxima over the links (the dominant link dominates the plan).
    pub fn cost(&self) -> QueryCost {
        let mut agg = QueryCost {
            steps: 0,
            path_size: 0,
            descendant_steps: 0,
            wildcard_steps: 0,
            qualifier_count: 0,
            max_qualifier_size: 0,
        };
        let mut fold = |c: &QueryCost| {
            agg.steps = agg.steps.max(c.steps);
            agg.path_size = agg.path_size.max(c.path_size);
            agg.descendant_steps = agg.descendant_steps.max(c.descendant_steps);
            agg.wildcard_steps = agg.wildcard_steps.max(c.wildcard_steps);
            agg.qualifier_count = agg.qualifier_count.max(c.qualifier_count);
            agg.max_qualifier_size = agg.max_qualifier_size.max(c.max_qualifier_size);
        };
        match &self.body {
            ViewBody::Chain(links) => {
                for l in links {
                    fold(l.cost());
                }
            }
            ViewBody::Multi(mq) => {
                for (path, _) in &mq.updates {
                    fold(&QueryCost::of_path(path));
                }
            }
        }
        agg
    }
}

/// Thread-safe name → [`ViewDef`] map.
#[derive(Default)]
pub struct ViewRegistry {
    views: RwLock<HashMap<String, Arc<ViewDef>>>,
    /// Transform compilations performed at registration time.
    compiles: AtomicU64,
    /// Registration events so far (source of [`ViewDef::generation`]).
    generations: AtomicU64,
}

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> ViewRegistry {
        ViewRegistry::default()
    }

    /// Registers (or replaces) a chain view from concrete transform
    /// syntax, one query per element. All links must read the same
    /// document name, which becomes the view's `doc_name`.
    pub fn register_chain(
        &self,
        name: impl Into<String>,
        queries: &[&str],
    ) -> Result<Arc<ViewDef>, ServeError> {
        let name = name.into();
        if queries.is_empty() {
            return Err(ServeError::InvalidView(format!(
                "view '{name}': a chain needs at least one transform"
            )));
        }
        let mut links = Vec::with_capacity(queries.len());
        let mut doc_name: Option<String> = None;
        for q in queries {
            let ct = CompiledTransform::parse(q)
                .map_err(|e| ServeError::Parse(format!("view '{name}': {e}")))?;
            self.compiles.fetch_add(1, Ordering::Relaxed);
            match &doc_name {
                None => doc_name = Some(ct.query().doc_name.clone()),
                Some(d) if *d != ct.query().doc_name => {
                    return Err(ServeError::InvalidView(format!(
                        "view '{name}': chain links read doc(\"{d}\") and doc(\"{}\")",
                        ct.query().doc_name
                    )));
                }
                Some(_) => {}
            }
            links.push(Arc::new(ct));
        }
        let mut alphabet = LabelSet::new();
        for link in &links {
            alphabet.union_with(link.alphabet());
        }
        // Generation is allocated and the definition installed under
        // one write-lock hold: drawn outside it, two racing
        // registrations of the same name could install the lower
        // generation last, breaking the strictly-increasing invariant
        // the result cache's generation guard depends on.
        let mut views = self.views.write().expect("registry lock poisoned");
        let def = Arc::new(ViewDef {
            name: name.clone(),
            doc_name: doc_name.expect("at least one link"),
            body: ViewBody::Chain(links),
            sources: queries.iter().map(|s| s.to_string()).collect(),
            alphabet,
            generation: self.generations.fetch_add(1, Ordering::Relaxed) + 1,
        });
        views.insert(name, Arc::clone(&def));
        Ok(def)
    }

    /// Registers a single-transform view.
    pub fn register(
        &self,
        name: impl Into<String>,
        query: &str,
    ) -> Result<Arc<ViewDef>, ServeError> {
        self.register_chain(name, &[query])
    }

    /// Registers a [`Policy`] as a served view named after its user
    /// group. Single-rule policies become composable chain views;
    /// multi-rule policies keep their snapshot semantics.
    pub fn register_policy(&self, policy: &Policy) -> Result<Arc<ViewDef>, ServeError> {
        let name = policy.group.clone();
        let sources: Vec<String> = policy
            .rules()
            .iter()
            .map(|r| format!("{}: {}", r.name, r.path))
            .collect();
        let mut alphabet = LabelSet::new();
        let body = match policy.compile_single() {
            Some(q) => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                let ct = CompiledTransform::compile(q);
                alphabet.union_with(ct.alphabet());
                ViewBody::Chain(vec![Arc::new(ct)])
            }
            None => {
                let mq = policy.compile();
                if mq.updates.is_empty() {
                    return Err(ServeError::InvalidView(format!(
                        "policy '{name}' has no rules"
                    )));
                }
                for (path, op) in &mq.updates {
                    alphabet.union_with(&xust_core::update_alphabet(path, op));
                }
                ViewBody::Multi(Box::new(mq))
            }
        };
        // Same lock discipline as `register_chain`: generation and
        // install are atomic together.
        let mut views = self.views.write().expect("registry lock poisoned");
        let def = Arc::new(ViewDef {
            name: name.clone(),
            doc_name: policy.doc_name.clone(),
            body,
            sources,
            alphabet,
            generation: self.generations.fetch_add(1, Ordering::Relaxed) + 1,
        });
        views.insert(name, Arc::clone(&def));
        Ok(def)
    }

    /// Looks a view up.
    pub fn get(&self, name: &str) -> Option<Arc<ViewDef>> {
        self.views
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Registered view names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .views
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Removes a view; true if it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.views
            .write()
            .expect("registry lock poisoned")
            .remove(name)
            .is_some()
    }

    /// Registration-time compilations performed so far.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEL: &str = r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;
    const REN: &str =
        r#"transform copy $a := doc("db") modify do rename $a//part as component return $a"#;

    #[test]
    fn chain_registration_compiles_once_per_link() {
        let r = ViewRegistry::new();
        let def = r.register_chain("scenario", &[DEL, REN]).unwrap();
        assert_eq!(r.compiles(), 2);
        assert_eq!(def.doc_name, "db");
        assert!(def.single().is_none());
        assert!(matches!(&def.body, ViewBody::Chain(c) if c.len() == 2));
        assert_eq!(r.names(), vec!["scenario".to_string()]);
        // Re-lookup shares the same Arc (no recompilation path at all).
        let again = r.get("scenario").unwrap();
        assert!(Arc::ptr_eq(&def, &again));
    }

    #[test]
    fn single_view_is_composable() {
        let r = ViewRegistry::new();
        let def = r.register("sec", DEL).unwrap();
        assert!(def.single().is_some());
        assert!(def.cost().has_descendant());
    }

    #[test]
    fn mixed_doc_names_rejected() {
        let r = ViewRegistry::new();
        let other = r#"transform copy $a := doc("other") modify do delete $a//x return $a"#;
        let err = r.register_chain("bad", &[DEL, other]).unwrap_err();
        assert!(err.to_string().contains("doc"));
        assert!(r.get("bad").is_none());
    }

    #[test]
    fn parse_errors_name_the_view() {
        let r = ViewRegistry::new();
        let err = r.register("broken", "garbage").unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn policies_register_under_their_group() {
        let single = Policy::new("analysts", "db")
            .hide("prices", "//price")
            .unwrap();
        let multi = Policy::new("interns", "db")
            .hide("prices", "//price")
            .unwrap()
            .relabel("parts", "//part", "item")
            .unwrap();
        let r = ViewRegistry::new();
        let s = r.register_policy(&single).unwrap();
        let m = r.register_policy(&multi).unwrap();
        assert!(s.single().is_some());
        assert!(matches!(&m.body, ViewBody::Multi(_)));
        assert_eq!(
            r.names(),
            vec!["analysts".to_string(), "interns".to_string()]
        );
    }

    #[test]
    fn remove_works() {
        let r = ViewRegistry::new();
        r.register("v", DEL).unwrap();
        assert!(r.remove("v"));
        assert!(!r.remove("v"));
        assert!(r.get("v").is_none());
    }
}
